"""Fault-injection overhead: the no-fault fast path must stay free.

Backs the fault-tolerance acceptance bound and writes the
``BENCH_faults.json`` trajectory the CI perf-smoke job uploads: fault
sites (``faults.fire`` / ``faults.enabled`` / ``faults.crash_point``)
sit on the worker, session, store, and serve hot paths, so with **no
plan installed** their combined per-query price must stay under **3%**
of even the cheapest real query — the warm cached replay.  Measured as
a microbenchmark (per-call cost × a generous per-query site count vs
the measured warm per-query time) so the bound is stable on noisy CI
boxes.  The installed-but-inert plan cost is reported alongside: a
chaos run whose rules never match pays only rule matching, not solving.
"""

import time

from conftest import PERF_SMOKE, update_json_result

from repro import faults
from repro.automata import clear_caches
from repro.constraints.printer import canonical_regex
from repro.service import BatchRunner, RunnerConfig, SolveJob

PATTERNS = [
    r"(?:[a-z0-9]+[-._])*[a-z0-9]+@[a-z]+\.[a-z]{2,3}",
    r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}",
    r"v?[0-9]+\.[0-9]+(?:\.[0-9]+)?(?:-[a-z0-9]+)?",
    r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*",
    r"(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?",
]
if PERF_SMOKE:
    PATTERNS = PATTERNS[:3]

#: Generous count of fault-site consultations per solved query: the
#: worker crash point, a couple of session round trips, the query- and
#: dfa-store reads, breaker feeds, and a serve frame or two.
_FAULT_CALLS_PER_QUERY = 16


def _solve_jobs(tag):
    return [
        SolveJob(job_id=f"{tag}-{i}", pattern=p, solver_timeout=5.0)
        for i, p in enumerate(PATTERNS)
    ]


def _fresh_process_state():
    clear_caches()
    canonical_regex.cache_clear()


def test_fault_sites_overhead(benchmark, record_table, tmp_path):
    """Acceptance: dormant fault injection is invisible on the warm path."""
    store = str(tmp_path / "fault-queries")

    def run_batch(tag):
        _fresh_process_state()
        started = time.perf_counter()
        report = BatchRunner(
            RunnerConfig(workers=0, query_cache=store)
        ).run(_solve_jobs(tag))
        elapsed = time.perf_counter() - started
        assert all(r.status == "ok" for r in report.results)
        return elapsed

    calls = 50_000 if PERF_SMOKE else 200_000

    def measure():
        run_batch("seed")  # populate the store: later runs replay warm
        rounds = 2 if PERF_SMOKE else 3
        warm_s = min(run_batch(f"warm{i}") for i in range(rounds))

        # Disabled-site microbenchmark: the per-call price every
        # fault-free run pays at each faults.fire site.
        faults.reset()
        assert not faults.enabled()
        started = time.perf_counter()
        for _ in range(calls):
            faults.fire("bench:noop", job_id="bench")
        disabled_call_s = (time.perf_counter() - started) / calls

        # Installed-but-inert plan: rules exist but match nothing on
        # this path — the chaos tier's cost when its faults lie in wait.
        faults.install(
            {
                "rules": [
                    {
                        "site": "bench:other-site",
                        "action": "error",
                        "match": "never-matches",
                    }
                ]
            }
        )
        started = time.perf_counter()
        for _ in range(calls):
            faults.fire("bench:noop", job_id="bench")
        inert_call_s = (time.perf_counter() - started) / calls
        faults.reset()
        return warm_s, disabled_call_s, inert_call_s

    warm_s, disabled_call_s, inert_call_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    jobs = len(PATTERNS)
    warm_query_s = warm_s / jobs
    disabled_overhead = (
        disabled_call_s * _FAULT_CALLS_PER_QUERY / warm_query_s
        if warm_query_s
        else 0.0
    )
    inert_overhead = (
        inert_call_s * _FAULT_CALLS_PER_QUERY / warm_query_s
        if warm_query_s
        else 0.0
    )
    data = {
        "jobs": jobs,
        "disabled_fire_ns": disabled_call_s * 1e9,
        "inert_plan_fire_ns": inert_call_s * 1e9,
        "fault_calls_per_query": _FAULT_CALLS_PER_QUERY,
        "warm_query_us": warm_query_s * 1e6,
        "disabled_overhead_fraction": disabled_overhead,
        "disabled_overhead_bound": 0.03,
        "inert_plan_overhead_fraction": inert_overhead,
        "warm_batch_s": warm_s,
    }
    update_json_result("BENCH_faults.json", "fault_overhead", data)
    record_table(
        "faults_overhead.txt",
        f"Fault-site overhead (warm cached batch, {jobs} solve jobs)\n"
        f"disabled fire:   {disabled_call_s * 1e9:8.1f} ns/call "
        f"(x{_FAULT_CALLS_PER_QUERY} calls = "
        f"{100 * disabled_overhead:.3f}% of a "
        f"{warm_query_s * 1e6:.0f}us warm query; bound 3%)\n"
        f"inert-plan fire: {inert_call_s * 1e9:8.1f} ns/call "
        f"({100 * inert_overhead:.3f}%)",
    )
    # Acceptance: no plan installed means no measurable tax per query.
    assert disabled_overhead < 0.03
