"""Table 7 — component breakdown over a package population (§7.3).

Runs a generated population of regex-using mini-JS packages at the four
support levels (concrete → +model → +captures → +refinement) and reports
the per-level improvements.  Reproduction targets: each added component
improves some packages; the biggest jump comes from basic regex
modelling; captures and refinement add further coverage on the packages
that need them; the test execution rate declines as support deepens.
"""

from repro.eval import (
    format_table7,
    full_vs_concrete,
    generate_population,
    run_breakdown,
)


def _run(n_packages: int):
    population = generate_population(n_packages=n_packages, seed=1909)
    return run_breakdown(population, max_tests=8, time_budget=4.0)


def test_table7_breakdown(benchmark, record_table):
    rows, runs = benchmark.pedantic(
        _run, args=(20,), rounds=1, iterations=1
    )
    total = full_vs_concrete(runs)
    table = format_table7(rows, total)
    record_table(
        "table7.txt",
        "Table 7 — Contribution of each support level\n" + table,
    )

    by_label = {row.label: row for row in rows}
    model = by_label["+ Modeling RegEx"]
    captures = by_label["+ Captures & Backreferences"]
    refinement = by_label["+ Refinement"]
    # Basic modelling helps the most packages (the paper's 46.7%).
    assert model.improved >= captures.improved
    assert model.improved > 0
    # Captures help a further subset; refinement a smaller one still
    # (the paper: 17.2% and 5.6%).
    assert captures.improved >= refinement.improved
    # Overall: more than a third of packages improve vs the baseline
    # (the paper: 54.6% of regex-exercising packages).
    assert total.improved_percent > 33.0, table
