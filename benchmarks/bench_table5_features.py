"""Table 5 — feature usage by unique regex (§7.1).

Regenerates the per-feature breakdown (19 feature rows, total vs unique)
over every regex extracted from the synthetic corpus.  Reproduction
targets: captures among the most common features; lazy quantifiers,
lookaheads and backreferences in the low percents; quantified
backreferences, sticky and unicode flags rare.
"""

from repro.corpus import (
    CorpusConfig,
    format_table5,
    generate_corpus,
    survey_packages,
)


def _run_survey(n_packages: int):
    corpus = generate_corpus(CorpusConfig(n_packages=n_packages, seed=1909))
    return survey_packages(corpus)


def test_table5_features(benchmark, record_table):
    result = benchmark.pedantic(
        _run_survey, args=(4000,), rounds=1, iterations=1
    )
    table = format_table5(result)
    record_table(
        "table5.txt", "Table 5 — Feature usage by unique regex\n" + table
    )

    totals, uniques = result.feature_totals, result.feature_uniques
    # Captures are a top feature in both columns.
    assert totals["capture_groups"] > 0.15 * result.total_regexes
    assert uniques["capture_groups"] > 0.25 * result.unique_regexes
    # Non-classical rarities stay rare (the §4.3 design assumption).
    assert totals["quantified_backrefs"] < 0.01 * result.total_regexes
    assert totals["sticky_flag"] < 0.02 * result.total_regexes
    assert totals["unicode_flag"] < 0.02 * result.total_regexes
    # Heavy duplication: unique regexes are a small fraction of totals.
    assert result.unique_regexes < result.total_regexes / 5
