"""Micro-benchmarks for the substrate layers (supporting data).

Not a paper table: keeps the substrate honest by timing the hot paths
the tables depend on — concrete matching, automata compilation, simple
and capture-group queries — so performance regressions are visible.
"""

from repro.automata import clear_caches, dfa_for_pattern
from repro.constraints import StrVar
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.regex import RegExp
from repro.solver import Solver


def test_concrete_matcher_throughput(benchmark):
    regexp = RegExp(r"<(\w+)>([0-9]*)<\/\1>")

    def match_batch():
        hits = 0
        for subject in (
            "<timeout>500</timeout>",
            "<a>1</a> trailing",
            "no match here",
            "<x></y>",
        ) * 25:
            if regexp.exec(subject) is not None:
                hits += 1
        return hits

    assert benchmark(match_batch) == 50


def test_automata_compilation(benchmark):
    def compile_fresh():
        clear_caches()
        dfa = dfa_for_pattern(r"(?:[a-z0-9]+[-._])*[a-z0-9]+@[a-z]+\.[a-z]{2,3}")
        return dfa.n_states

    assert benchmark(compile_fresh) > 0


def test_simple_membership_query(benchmark):
    def solve_one():
        regexp = SymbolicRegExp(r"^[a-z]+=[0-9]+$")
        model = regexp.exec_model(StrVar("s"))
        result = Solver().solve(model.match_formula)
        return result.status

    assert benchmark(solve_one) == "sat"


def test_capture_query_with_refinement(benchmark):
    def solve_one():
        regexp = SymbolicRegExp(r"^a*(a)?$")
        model = regexp.exec_model(StrVar("s"))
        result = CegarSolver().solve(model.match_formula, [model.constraint])
        return result.status

    assert benchmark(solve_one) == "sat"
