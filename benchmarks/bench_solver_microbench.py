"""Micro-benchmarks for the substrate layers (supporting data).

Not a paper table: keeps the substrate honest by timing the hot paths
the tables depend on — concrete matching, automata compilation (cold,
and warm through the persistent compilation cache), simple and
capture-group queries — so performance regressions are visible.
"""

import time

from repro.automata import (
    clear_caches,
    configure_automata_cache,
    dfa_for_pattern,
)
from repro.constraints import StrVar
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.regex import RegExp
from repro.solver import Solver


def test_concrete_matcher_throughput(benchmark):
    regexp = RegExp(r"<(\w+)>([0-9]*)<\/\1>")

    def match_batch():
        hits = 0
        for subject in (
            "<timeout>500</timeout>",
            "<a>1</a> trailing",
            "no match here",
            "<x></y>",
        ) * 25:
            if regexp.exec(subject) is not None:
                hits += 1
        return hits

    assert benchmark(match_batch) == 50


def test_automata_compilation(benchmark, clean_automata):
    def compile_fresh():
        # The in-loop clear is the measurement itself (cold compile per
        # round); the fixture guarantees pristine state around the test.
        clear_caches()
        dfa = dfa_for_pattern(r"(?:[a-z0-9]+[-._])*[a-z0-9]+@[a-z]+\.[a-z]{2,3}")
        return dfa.n_states

    assert benchmark(compile_fresh) > 0


def test_automata_warm_path_vs_cold(benchmark, clean_automata, tmp_path):
    """Second-invocation path: a populated on-disk automata cache must
    beat cold compilation by well over the 1.5x target."""
    pattern = r"(?:[a-z0-9]+[-._])*[a-z0-9]+@[a-z]+\.[a-z]{2,3}"
    store = str(tmp_path / "automata")

    def measure():
        def cold():
            clear_caches()
            dfa_for_pattern(pattern)

        cold_s = min(_timed(cold) for _ in range(3))

        clear_caches()
        configure_automata_cache(store)
        dfa_for_pattern(pattern)  # populate

        def warm():
            clear_caches()
            configure_automata_cache(store)
            dfa_for_pattern(pattern)

        warm_s = min(_timed(warm) for _ in range(3))
        return cold_s, warm_s

    cold_s, warm_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cold_s >= 1.5 * warm_s


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_simple_membership_query(benchmark):
    def solve_one():
        regexp = SymbolicRegExp(r"^[a-z]+=[0-9]+$")
        model = regexp.exec_model(StrVar("s"))
        result = Solver().solve(model.match_formula)
        return result.status

    assert benchmark(solve_one) == "sat"


def test_capture_query_with_refinement(benchmark):
    def solve_one():
        regexp = SymbolicRegExp(r"^a*(a)?$")
        model = regexp.exec_model(StrVar("s"))
        result = CegarSolver().solve(model.match_formula, [model.constraint])
        return result.status

    assert benchmark(solve_one) == "sat"
