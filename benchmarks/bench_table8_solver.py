"""Table 8 — solver times per query class, plus §7.4 refinement stats.

Aggregates the solver statistics collected during a Table 7-style run:
query counts and times for all queries, queries with capture groups,
queries needing refinement, and queries hitting the refinement limit.
Reproduction targets: capture queries are slower than average, refined
queries slower still; refinement succeeds for the overwhelming majority
of queries that need it, with a small mean number of refinements
(the paper: 97.2% solved, mean 2.9 refinements).
"""

from repro.eval import (
    format_table8,
    generate_population,
    run_breakdown,
    summarize_solver_stats,
)


def _run(n_packages: int):
    population = generate_population(n_packages=n_packages, seed=1909)
    rows, runs = run_breakdown(population, max_tests=8, time_budget=4.0)
    stats = [run.stats["+ Refinement"] for run in runs]
    return summarize_solver_stats(stats)


def test_table8_solver_times(benchmark, record_table):
    summary = benchmark.pedantic(_run, args=(20,), rounds=1, iterations=1)
    table = format_table8(summary)
    record_table(
        "table8.txt", "Table 8 — Solver time per query class\n" + table
    )

    per_query = summary.per_query
    assert per_query["all"]["count"] > 0
    # Queries modelling captures exist and are no faster than the mean.
    assert per_query["with_captures"]["count"] > 0
    assert (
        per_query["with_captures"]["mean"]
        >= 0.5 * per_query["all"]["mean"]
    )
    refinement = summary.refinement
    # Refinement is rare relative to all queries but succeeds when used
    # (the paper: 1.1% of queries model captures, 0.1% need refinement).
    assert refinement["refined_queries"] <= refinement["capture_queries"]
    assert refinement["refined_queries"] > 0
    assert refinement["mean_refinements"] < 10.0
