"""Automata hot-path benchmarks: compilation cache tiers + lazy algebra.

Two measurements back the cache hierarchy's claims and write the
``BENCH_automata.json`` trajectory the CI perf-smoke job uploads:

- **Cold vs warm compilation** — the same pattern corpus compiled from
  scratch, replayed from the in-memory interner, and reloaded from a
  populated on-disk store in a fresh interner (the "second batch
  invocation" path).  Both warm tiers must beat cold by ≥1.5×.
- **Lazy vs eager products** — emptiness/shortest-witness queries over
  component pairs, lazily vs via the eager product, with the counter
  assertion that the lazy traversal never materializes more states than
  the eager product holds.
"""

import time

from conftest import PERF_SMOKE, update_json_result

from repro.automata import (
    LazyProduct,
    automata_cache_counters,
    clear_caches,
    configure_automata_cache,
    dfa_for_pattern,
)

#: A corpus-flavoured pattern set (emails, versions, paths, tokens) —
#: non-trivial NFAs so compilation is the dominant cost being cached.
PATTERNS = [
    r"(?:[a-z0-9]+[-._])*[a-z0-9]+@[a-z]+\.[a-z]{2,3}",
    r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}",
    r"v?[0-9]+\.[0-9]+(?:\.[0-9]+)?(?:-[a-z0-9]+)?",
    r"(?:/[a-zA-Z0-9_.-]+)+/?",
    r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*",
    r"#?[0-9a-fA-F]{6}|#?[0-9a-fA-F]{3}",
    r"[a-z]+(?:-[a-z]+)*\.(?:js|json|min\.js)",
    r"(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?",
]

PRODUCT_PAIRS = [
    (r"[a-z0-9._-]{4,12}", r".*[0-9].*"),
    (r"(?:ab|ba)*", r"[ab]{0,10}"),
    (r"[a-z]+=[0-9]+", r".{3,9}"),
    (r"(?:aa)*", r"a(?:aa)*"),  # empty intersection
    (r"[0-9]{1,3}(?:\.[0-9]{1,3}){3}", r"1.*"),
]

ROUNDS = 2 if PERF_SMOKE else 5


def _compile_all():
    for pattern in PATTERNS:
        dfa_for_pattern(pattern)


def _best(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def test_cold_vs_warm_compile(
    benchmark, record_table, clean_automata, tmp_path
):
    store = str(tmp_path / "automata")

    def measure():
        def cold():
            clear_caches()
            _compile_all()

        cold_s = _best(cold)

        # In-memory warm: everything interned, nothing recompiled.
        clear_caches()
        _compile_all()
        warm_memory_s = _best(_compile_all)

        # Disk warm: populate the store, then simulate fresh processes
        # (cleared interner, same path) — the second-batch-invocation path.
        clear_caches()
        configure_automata_cache(store)
        _compile_all()

        def disk_warm():
            clear_caches()
            configure_automata_cache(store)
            _compile_all()

        warm_disk_s = _best(disk_warm)
        counters = automata_cache_counters()
        return cold_s, warm_memory_s, warm_disk_s, counters

    cold_s, warm_memory_s, warm_disk_s, counters = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    memory_speedup = cold_s / warm_memory_s if warm_memory_s else 0.0
    disk_speedup = cold_s / warm_disk_s if warm_disk_s else 0.0

    data = {
        "patterns": len(PATTERNS),
        "cold_s": cold_s,
        "warm_memory_s": warm_memory_s,
        "warm_disk_s": warm_disk_s,
        "memory_speedup": memory_speedup,
        "disk_speedup": disk_speedup,
        "disk_hits_last_round": counters["disk_hits"],
    }
    update_json_result("BENCH_automata.json", "compile_cache", data)
    record_table(
        "automata_cache.txt",
        "Automata compilation: cold vs warm (best of "
        f"{ROUNDS}, {len(PATTERNS)} patterns)\n"
        f"cold:        {1000 * cold_s:8.2f} ms\n"
        f"warm memory: {1000 * warm_memory_s:8.2f} ms "
        f"({memory_speedup:.1f}x)\n"
        f"warm disk:   {1000 * warm_disk_s:8.2f} ms "
        f"({disk_speedup:.1f}x)",
    )

    assert counters["disk_hits"] == len(PATTERNS)  # last round was all-disk
    assert memory_speedup >= 1.5
    assert disk_speedup >= 1.5


def test_lazy_vs_eager_product(benchmark, record_table, clean_automata):
    def measure():
        rows = []
        for left_src, right_src in PRODUCT_PAIRS:
            left = dfa_for_pattern(left_src)
            right = dfa_for_pattern(right_src)

            def eager_query():
                product = left.intersect(right)
                return product.shortest_word(), product.n_states

            def lazy_query():
                product = LazyProduct([left, right])
                return product.shortest_word(), product

            eager_s = _best(eager_query)
            lazy_s = _best(lazy_query)
            (eager_witness, eager_states) = eager_query()
            (lazy_witness, product) = lazy_query()
            rows.append(
                {
                    "pair": f"{left_src} & {right_src}",
                    "eager_s": eager_s,
                    "lazy_s": lazy_s,
                    "eager_states": eager_states,
                    "lazy_states_visited": product.states_visited,
                    "witness_len": (
                        None if lazy_witness is None else len(lazy_witness)
                    ),
                }
            )
            # Equivalent answers, never more states than the eager build.
            assert (lazy_witness is None) == (eager_witness is None)
            assert product.states_visited <= eager_states
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_json_result(
        "BENCH_automata.json", "lazy_vs_eager", {"pairs": rows}
    )
    lines = [
        "Pair                                      Eager(ms)  Lazy(ms)"
        "  EagerSt  Visited",
    ]
    for row in rows:
        shown = row["pair"]
        if len(shown) > 40:
            shown = shown[:37] + "..."
        lines.append(
            f"{shown:<41} {1000 * row['eager_s']:>8.3f} "
            f"{1000 * row['lazy_s']:>9.3f} {row['eager_states']:>8} "
            f"{row['lazy_states_visited']:>8}"
        )
    record_table(
        "automata_lazy.txt",
        "Lazy vs eager product (shortest-witness query)\n"
        + "\n".join(lines),
    )
