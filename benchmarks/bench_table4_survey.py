"""Table 4 — regex usage by NPM package (§7.1).

Regenerates the package-level survey over the synthetic corpus: how many
packages have source files, regexes, capture groups, backreferences and
quantified backreferences.  The reproduction target is the *shape*:
roughly a third of packages use regexes, captures are common, quantified
backreferences are vanishingly rare.
"""

from repro.corpus import (
    CorpusConfig,
    format_table4,
    generate_corpus,
    survey_packages,
)


def _run_survey(n_packages: int):
    corpus = generate_corpus(CorpusConfig(n_packages=n_packages, seed=1909))
    return survey_packages(corpus)


def test_table4_survey(benchmark, record_table):
    result = benchmark.pedantic(
        _run_survey, args=(4000,), rounds=1, iterations=1
    )
    table = format_table4(result)
    record_table("table4.txt", "Table 4 — Regex usage by package\n" + table)

    # Shape assertions mirroring the paper's Table 4 ordering.
    assert result.with_source < result.n_packages
    assert result.with_regex < result.with_source
    assert result.with_captures < result.with_regex
    assert result.with_backrefs < result.with_captures
    assert result.with_quantified_backrefs <= result.with_backrefs
    assert 0.25 < result.with_regex / result.n_packages < 0.45
    assert result.with_quantified_backrefs / result.n_packages < 0.005
