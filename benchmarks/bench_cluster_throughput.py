"""Cluster fleet throughput and dormant fault-site overhead.

Two measurements, merged into ``benchmarks/out/BENCH_cluster.json``:

``fleet_scaling``
    A coordinator daemon (in process, ``--cluster`` semantics) serving
    the same latency-bound corpus with a 1-node and then a 2-node
    fleet.  Jobs simulate solver waits (a fixed sleep) rather than
    burning CPU: CI boxes are often single-core, where *no* scheduler
    could show CPU scaling across processes — the latency-bound corpus
    isolates exactly the thing this layer owns, lease dispatch and
    result routing, and on multicore the same dispatch path carries
    CPU-bound scaling because worker nodes are separate processes.
    Acceptance: the 2-node fleet finishes the corpus at least **1.5x**
    faster than the 1-node fleet.

``dormant_fault_overhead``
    The cluster fault sites (``cluster:heartbeat``,
    ``cluster:partition``, ``node:kill``) sit on the heartbeat tick and
    the assignment receipt path.  With no plan installed each
    consultation must be one global load + ``is None`` check; measured
    per call and priced against the cheapest real job service time.
    Acceptance: under **3%** per job.
"""

import threading
import time
from dataclasses import dataclass

from repro import faults
from repro.cluster.worker import WorkerConfig, WorkerNode
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServeServer
from repro.service import BatchRunner, RunnerConfig
from repro.service.jobs import _JOB_KINDS, _JobBase

from conftest import PERF_SMOKE, update_json_result

#: Simulated solver wait per job; long enough to dwarf frame overhead.
JOB_S = 0.02 if PERF_SMOKE else 0.025
JOBS = 32 if PERF_SMOKE else 64
PER_NODE_CAPACITY = 8

#: Generous per-job count of cluster fault-site consultations: one
#: ``node:kill`` crash point per assignment plus amortized heartbeat
#: and partition checks.
_CLUSTER_FAULT_CALLS_PER_JOB = 4


@dataclass
class SleepJob(_JobBase):
    """A latency-bound stand-in for a solver-wait-dominated job."""

    duration: float = JOB_S

    KIND = "bench-sleep"

    def _run(self, solver_factory) -> dict:
        time.sleep(self.duration)
        return {"slept": self.duration}


def _start_worker_node(sock_path):
    runner = BatchRunner(
        RunnerConfig(
            workers=0, inline_concurrency=PER_NODE_CAPACITY
        )
    )
    node = WorkerNode(
        runner,
        WorkerConfig(
            join=sock_path,
            capacity=PER_NODE_CAPACITY,
            remote_cache=False,
            reconnect_attempts=3,
            reconnect_backoff_s=0.1,
        ),
    )
    thread = threading.Thread(target=node.run, daemon=True)
    thread.start()
    assert node.connected.wait(timeout=30.0), "worker never registered"
    return node, thread


def _run_fleet(tmp_path, n_nodes, tag):
    sock_path = str(tmp_path / f"fleet-{tag}.sock")
    runner = BatchRunner(
        RunnerConfig(workers=0, inline_concurrency=1, retry_max=2)
    )
    server = ServeServer(
        runner,
        ServeConfig(
            socket=sock_path,
            cluster=True,
            heartbeat_s=0.5,
            max_inflight=1,
        ),
    ).start_background()
    nodes = []
    try:
        nodes = [_start_worker_node(sock_path) for _ in range(n_nodes)]
        deadline = time.monotonic() + 30.0
        while server.cluster.ready_workers() < n_nodes:
            assert time.monotonic() < deadline, "fleet never assembled"
            time.sleep(0.01)
        with ServeClient(socket_path=sock_path, timeout=120.0) as client:
            started = time.perf_counter()
            acks = [
                client.submit(
                    {
                        "kind": "bench-sleep",
                        "job_id": f"{tag}-{i}",
                        "duration": JOB_S,
                    }
                )
                for i in range(JOBS)
            ]
            results = [
                result for _, result, _ in client.iter_results()
            ]
            elapsed = time.perf_counter() - started
        assert len(acks) == JOBS and len(results) == JOBS
        assert all(r.status == "ok" for r in results)
        stats = server.server_stats()
    finally:
        for node, thread in nodes:
            node.stop()
            thread.join(timeout=10.0)
        server.stop()
    return elapsed, stats


def test_fleet_scaling_and_dormant_fault_overhead(
    benchmark, record_table, tmp_path
):
    _JOB_KINDS["bench-sleep"] = SleepJob
    try:

        def measure():
            one_s, one_stats = _run_fleet(tmp_path, 1, "one")
            two_s, two_stats = _run_fleet(tmp_path, 2, "two")

            faults.reset()
            assert not faults.enabled()
            calls = 50_000 if PERF_SMOKE else 200_000
            started = time.perf_counter()
            for _ in range(calls):
                faults.fire("cluster:heartbeat", worker="bench")
            fire_s = (time.perf_counter() - started) / calls
            started = time.perf_counter()
            for _ in range(calls):
                faults.crash_point("node:kill", job_id="bench")
            crash_point_s = (time.perf_counter() - started) / calls
            return one_s, one_stats, two_s, two_stats, fire_s, \
                crash_point_s

        (
            one_s,
            one_stats,
            two_s,
            two_stats,
            fire_s,
            crash_point_s,
        ) = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        _JOB_KINDS.pop("bench-sleep", None)

    speedup = one_s / two_s if two_s else 0.0
    per_call_s = max(fire_s, crash_point_s)
    overhead = _CLUSTER_FAULT_CALLS_PER_JOB * per_call_s / JOB_S
    update_json_result(
        "BENCH_cluster.json",
        "fleet_scaling",
        {
            "job_model": "latency-bound (simulated solver wait)",
            "jobs": JOBS,
            "job_service_s": JOB_S,
            "per_node_capacity": PER_NODE_CAPACITY,
            "one_node_wall_s": one_s,
            "two_node_wall_s": two_s,
            "speedup": speedup,
            "speedup_bound": 1.5,
            "one_node_remote_results": one_stats["cluster"][
                "remote_results"
            ],
            "two_node_remote_results": two_stats["cluster"][
                "remote_results"
            ],
            "two_node_workers": two_stats["cluster"]["registrations"],
        },
    )
    update_json_result(
        "BENCH_cluster.json",
        "dormant_fault_overhead",
        {
            "fire_ns": fire_s * 1e9,
            "crash_point_ns": crash_point_s * 1e9,
            "calls_per_job": _CLUSTER_FAULT_CALLS_PER_JOB,
            "job_service_s": JOB_S,
            "overhead_fraction": overhead,
            "overhead_bound": 0.03,
        },
    )
    record_table(
        "cluster_throughput.txt",
        f"Cluster fleet scaling ({JOBS} latency-bound jobs, "
        f"{1000 * JOB_S:.0f} ms each, capacity "
        f"{PER_NODE_CAPACITY}/node)\n"
        f"1-node fleet: {one_s:8.2f} s "
        f"({one_stats['cluster']['remote_results']} remote)\n"
        f"2-node fleet: {two_s:8.2f} s "
        f"({two_stats['cluster']['remote_results']} remote)\n"
        f"speedup: {speedup:.2f}x (bound 1.5x)\n"
        f"dormant cluster fault sites: fire {fire_s * 1e9:.0f} ns, "
        f"crash_point {crash_point_s * 1e9:.0f} ns "
        f"({100 * overhead:.3f}% of a job; bound 3%)",
    )
    # Most of the corpus must actually ride the fleet, not the
    # coordinator's degraded local lane.
    assert two_stats["cluster"]["remote_results"] >= JOBS // 2
    assert speedup >= 1.5
    assert overhead < 0.03
