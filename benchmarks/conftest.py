"""Shared helpers for the benchmark harnesses.

Each ``bench_tableN`` module regenerates one table of the paper; results
are printed (visible with ``pytest benchmarks/ --benchmark-only -s``) and
written to ``benchmarks/out/`` so EXPERIMENTS.md can quote them.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_result(name: str, content: str) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as f:
        f.write(content + "\n")


@pytest.fixture
def record_table():
    def _record(name: str, content: str) -> None:
        print()
        print(content)
        write_result(name, content)

    return _record
