"""Shared helpers for the benchmark harnesses.

Each ``bench_tableN`` module regenerates one table of the paper; results
are printed (visible with ``pytest benchmarks/ --benchmark-only -s``) and
written to ``benchmarks/out/`` so EXPERIMENTS.md can quote them.
"""

import json
import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Quick mode for the CI perf-smoke job: fewer repetitions, same shape.
PERF_SMOKE = os.environ.get("PERF_SMOKE") == "1"


def write_result(name: str, content: str) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as f:
        f.write(content + "\n")


def update_json_result(name: str, section: str, data: dict) -> None:
    """Merge one benchmark's numbers into a JSON trajectory file."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    try:
        with open(path) as f:
            merged = json.load(f)
    except (OSError, ValueError):
        merged = {}
    merged[section] = data
    with open(path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")


@pytest.fixture
def record_table():
    def _record(name: str, content: str) -> None:
        print()
        print(content)
        write_result(name, content)

    return _record


@pytest.fixture
def clean_automata():
    """A pristine automata cache before *and* after the benchmark.

    The canonical way for benchmarks to get cold-compilation state:
    resets node caches, the fingerprint interner, and detaches any
    on-disk store handle (re-attach inside the benchmark when the disk
    path is part of the measurement).
    """
    from repro.automata import clear_caches

    clear_caches()
    yield
    clear_caches()
