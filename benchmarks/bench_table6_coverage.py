"""Table 6 — statement coverage, new vs. old regex support (§7.2).

Runs the eleven-library suite (one library per paper row) under the old
support level (modelled regexes without full capture linkage or
refinement — the original ExpoSE's documented capabilities) and the full
system.  The reproduction target: the full system's coverage is at least
as high everywhere it matters, with large gains on the regex-parsing
libraries (the paper reports gains up to 1,338% and three ∞ rows).
"""

from repro.eval import TABLE6_PACKAGES, format_table6, run_table6


def test_table6_coverage(benchmark, record_table):
    rows = benchmark.pedantic(
        run_table6,
        kwargs={"max_tests": 25, "time_budget": 15.0},
        rounds=1,
        iterations=1,
    )
    table = format_table6(rows)
    record_table(
        "table6.txt",
        "Table 6 — Coverage: full system (New) vs partial support (Old)\n"
        + table,
    )

    improved = [r for r in rows if r.new_coverage > r.old_coverage + 1e-9]
    regressed = [
        r for r in rows if r.new_coverage < r.old_coverage - 0.05
    ]
    # Shape: a clear majority of libraries improve; no substantial
    # regressions (the paper's one regression, semver, vanishes with a
    # longer budget, §7.2).
    assert len(improved) >= len(rows) // 2, format_table6(rows)
    assert len(regressed) <= 1, format_table6(rows)
    # The aggregate must favour the new system decisively.
    mean_old = sum(r.old_coverage for r in rows) / len(rows)
    mean_new = sum(r.new_coverage for r in rows) / len(rows)
    assert mean_new > mean_old
