"""Refinement-stream fast-path benchmarks (tentpole of the CEGAR PR).

Backs the acceptance claims and writes the ``BENCH_refinement.json``
trajectory the CI perf-smoke job uploads:

- **Session-pool amortization across a multi-job batch** — a
  refinement-heavy query stream (recorded from real CEGAR runs: many
  flips, shared refinement prefixes) executed as many single-stream
  jobs.  The PR 4 baseline builds one ``session:`` backend per job
  (spawn per job); the fast path leases from the shared
  ``SessionPool``.  Must be ≥3× faster and spawn <1 process per 25
  refined queries.
- **Refined-query caching** — the same refinement-heavy solve batch
  against an empty persistent query store and again warm: every query
  of every refinement stream replays from disk.
- **Mid-loop rerouting** — a canned-replay session decides a full
  CEGAR stream; ``route_tallies`` must show the refined queries
  migrating to the session.
- **Lazy union products** — the alternation suite queried through
  ``LazyUnion`` must visit strictly fewer states than the eagerly
  determinized union materializes.

Everything runs with fake solver binaries: no z3 on the CI machine.
"""

import stat
import textwrap
import time

from conftest import PERF_SMOKE, update_json_result

from repro.automata import clear_caches, dfa_for_pattern
from repro.automata.lazy import LazyUnion
from repro.constraints import StrVar
from repro.constraints.printer import canonical_regex
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.service import BatchRunner, RunnerConfig, SolveJob
from repro.solver import Solver, SolverStats
from repro.solver.backends import (
    PooledSessionBackend,
    SessionBackend,
    SessionPool,
)

#: Refinement-prone capture patterns (the paper's §3.4 greediness trap
#: and friends): the model admits capture assignments no ES6 engine
#: produces, so every solve runs at least one refinement.
REFINEMENT_PATTERNS = [
    r"^a*(a)?$",
    r"^(a+)?(a+)?(a+)?$",
    r"^[ab]*(ab?)?(b)?$",
    r"^(x+y*)?(y)?(x)?$",
    r"^a*(a)?a*(a)?$",
    r"^(a*)(a)?(a)?$",
    r"^w*([uv]+)?(v)?$",
    r"^v?([0-9]*)([0-9])?$",
]
if PERF_SMOKE:
    REFINEMENT_PATTERNS = REFINEMENT_PATTERNS[:5]

#: Flip rounds per pattern: re-posing the same streams is exactly the
#: "shared refinement prefixes across flips" shape of a DSE run.  Even
#: quick mode keeps enough flips that the refined-query count can
#: clear the <1 spawn/25 amortization bar with a single spawn.
FLIPS = 6


def _record_streams():
    """The refinement-heavy corpus: one recorded CEGAR query stream
    (initial + refined queries) per pattern."""

    class Recorder:
        def __init__(self):
            self.native = Solver(timeout=5.0)
            self.formulas = []

        def solve(self, formula):
            self.formulas.append(formula)
            return self.native.solve(formula)

    streams = []
    refined_total = 0
    for pattern in REFINEMENT_PATTERNS:
        recorder = Recorder()
        model = SymbolicRegExp(pattern, "").exec_model(
            StrVar(f"in!{len(streams)}")
        )
        result = CegarSolver(solver=recorder).solve(
            model.match_formula, [model.constraint]
        )
        assert result.refinements >= 1, pattern
        refined_total += result.refinements
        streams.append(recorder.formulas)
    return streams, refined_total


_FAKE_UNSAT = textwrap.dedent(
    '''\
    #!/usr/bin/env python3
    import re, sys
    for line in sys.stdin:
        line = line.strip()
        if line == "(check-sat)":
            print("unsat", flush=True)
        else:
            m = re.match(r'\\(echo "(.*)"\\)', line)
            if m:
                print(m.group(1), flush=True)
    '''
)


def _fake_solver(tmp_path, body=_FAKE_UNSAT, name="fakesolver"):
    path = tmp_path / name
    path.write_text(body)
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return str(path)


def test_session_pool_amortizes_refined_stream(
    benchmark, record_table, tmp_path
):
    """PR 4 baseline (a session backend per job → spawn per job) vs the
    pooled fast path on the recorded refinement streams."""
    streams, refined_total = _record_streams()
    jobs = streams * FLIPS  # many flips re-posing the same streams
    fake = _fake_solver(tmp_path)

    def measure():
        # Baseline: every job owns (and closes) a private session — the
        # lifecycle PR 4's per-job backend construction produced.
        started = time.perf_counter()
        baseline_spawns = 0
        for stream in jobs:
            backend = SessionBackend(fake, timeout=10.0)
            for formula in stream:
                assert backend.solve(formula).status == "unsat"
            baseline_spawns += backend.spawns
            backend.close()
        baseline_s = time.perf_counter() - started

        # Fast path: per-job backends lease from one shared pool.
        pool = SessionPool()
        stats = SolverStats()
        started = time.perf_counter()
        for stream in jobs:
            backend = PooledSessionBackend(
                fake, timeout=10.0, stats=stats, pool=pool
            )
            for formula in stream:
                assert backend.solve(formula).status == "unsat"
            backend.close()  # no-op: the pool keeps the session
        pooled_s = time.perf_counter() - started
        tally = stats.session_summary()[f"session:{fake}"]
        pool.close()
        return baseline_s, baseline_spawns, pooled_s, tally

    baseline_s, baseline_spawns, pooled_s, tally = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    refined_queries = refined_total * FLIPS
    total_queries = sum(len(s) for s in jobs)
    speedup = baseline_s / pooled_s if pooled_s else 0.0
    spawns_per_refined = (
        tally["spawns"] / refined_queries if refined_queries else 1.0
    )
    data = {
        "jobs": len(jobs),
        "total_queries": total_queries,
        "refined_queries": refined_queries,
        "baseline_s": baseline_s,
        "baseline_spawns": baseline_spawns,
        "pooled_s": pooled_s,
        "pooled_spawns": tally["spawns"],
        "pooled_checkouts": tally["checkouts"],
        "speedup": speedup,
        "spawns_per_refined_query": spawns_per_refined,
    }
    update_json_result("BENCH_refinement.json", "session_pool", data)
    record_table(
        "refinement_pool.txt",
        f"Session pool vs spawn-per-job on the refinement stream\n"
        f"({len(jobs)} jobs, {total_queries} queries, "
        f"{refined_queries} refined)\n"
        f"baseline: {1000 * baseline_s:8.2f} ms "
        f"({baseline_spawns} spawns)\n"
        f"pooled:   {1000 * pooled_s:8.2f} ms "
        f"({tally['spawns']} spawns, {tally['checkouts']} checkouts, "
        f"{speedup:.1f}x)",
    )
    # Acceptance: >=3x over the PR 4 baseline, <1 spawn/25 refined.
    assert speedup >= 3.0
    assert spawns_per_refined < 1 / 25
    assert baseline_spawns == len(jobs)  # what the baseline really paid


def test_refined_queries_replay_from_warm_store(
    benchmark, record_table, tmp_path
):
    """Cold vs warm batch on the refinement-heavy corpus: the warm run
    replays every query of every refinement stream from the persistent
    store."""
    store = str(tmp_path / "refined-queries")

    def solve_jobs(tag):
        jobs = []
        for i, pattern in enumerate(REFINEMENT_PATTERNS):
            jobs.append(
                SolveJob(
                    job_id=f"{tag}-m{i}",
                    pattern=pattern,
                    solver_timeout=5.0,
                )
            )
            jobs.append(
                SolveJob(
                    job_id=f"{tag}-n{i}",
                    pattern=pattern,
                    negate=True,
                    solver_timeout=5.0,
                )
            )
        return jobs

    def fresh_process_state():
        clear_caches()
        canonical_regex.cache_clear()

    def measure():
        def run(tag):
            fresh_process_state()
            started = time.perf_counter()
            report = BatchRunner(
                RunnerConfig(workers=0, query_cache=store)
            ).run(solve_jobs(tag))
            elapsed = time.perf_counter() - started
            assert all(r.status == "ok" for r in report.results)
            return elapsed, report

        cold_s, cold_report = run("cold")
        refined = sum(
            r.payload.get("refinements", 0) for r in cold_report.results
        )
        assert refined >= len(REFINEMENT_PATTERNS)  # streams refined
        warm_times = []
        for round_no in range(2 if PERF_SMOKE else 3):
            warm_s, warm_report = run(f"warm{round_no}")
            warm_times.append(warm_s)
            assert warm_report.cache_misses == 0  # whole streams replay
        return cold_s, min(warm_times), refined, warm_report

    cold_s, warm_s, refined, warm_report = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = cold_s / warm_s if warm_s else 0.0
    data = {
        "jobs": len(REFINEMENT_PATTERNS) * 2,
        "refined_queries": refined,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "warm_cache_hits": warm_report.cache_hits,
    }
    update_json_result("BENCH_refinement.json", "refined_cache", data)
    record_table(
        "refinement_cache.txt",
        f"Refined-query store: cold vs warm "
        f"({len(REFINEMENT_PATTERNS) * 2} refinement-heavy solve jobs, "
        f"{refined} refined queries)\n"
        f"cold:  {1000 * cold_s:8.2f} ms\n"
        f"warm:  {1000 * warm_s:8.2f} ms "
        f"({warm_report.cache_hits} replays, {speedup:.1f}x)",
    )
    assert speedup >= 3.0


def test_refined_stream_migrates_to_session(
    benchmark, record_table, tmp_path
):
    """Mid-loop rerouting: a canned-replay session decides one full
    CEGAR stream; the refined share lands on the ``refined-`` route."""
    from repro.constraints.printer import _string_literal, _variables

    class Recorder:
        def __init__(self):
            self.native = Solver(timeout=5.0)
            self.formulas = []

        def solve(self, formula):
            self.formulas.append(formula)
            return self.native.solve(formula)

    def canned(formulas):
        responses = []
        for formula in formulas:
            result = Solver(timeout=5.0).solve(formula)
            if result.status != "sat":
                responses.append((result.status, "()"))
                continue
            pairs = []
            for var in sorted(_variables(formula), key=lambda v: v.name):
                value = result.model[var]
                defined = "false" if value is None else "true"
                literal = _string_literal(value or "")
                name = (
                    var.name
                    if all(c.isalnum() or c in "_.$" for c in var.name)
                    else f"|{var.name}|"
                )
                defname = (
                    f"{name[:-1]}.def|" if name.endswith("|")
                    else f"{name}.def"
                )
                pairs.append(f"({name} {literal})")
                pairs.append(f"({defname} {defined})")
            responses.append(("sat", "(" + " ".join(pairs) + ")"))
        return responses

    def replay_solver(responses):
        counter = tmp_path / "route.counter"
        counter.write_text("0")
        body = textwrap.dedent(
            f'''\
            #!/usr/bin/env python3
            import re, sys
            RESPONSES = {responses!r}
            COUNTER = {str(counter)!r}

            def take():
                with open(COUNTER) as f:
                    i = int(f.read().strip() or "0")
                with open(COUNTER, "w") as f:
                    f.write(str(i + 1))
                return RESPONSES[i % len(RESPONSES)]

            current = [None]
            for line in sys.stdin:
                line = line.strip()
                if line == "(check-sat)":
                    current[0] = take()
                    print(current[0][0], flush=True)
                elif line.startswith("(get-value"):
                    print(current[0][1] if current[0] else "()", flush=True)
                else:
                    m = re.match(r'\\(echo "(.*)"\\)', line)
                    if m:
                        print(m.group(1), flush=True)
            '''
        )
        return _fake_solver(tmp_path, body, name="routereplay")

    def measure():
        model = SymbolicRegExp(r"^a*(a)?$", "").exec_model(
            StrVar("in!route")
        )
        recorder = Recorder()
        native_result = CegarSolver(solver=recorder).solve(
            model.match_formula, [model.constraint]
        )
        fake = replay_solver(canned(recorder.formulas))
        stats = SolverStats()
        cegar = CegarSolver(backend=f"route:{fake}", stats=stats)
        routed = cegar.solve(model.match_formula, [model.constraint])
        cegar.solver.close()
        assert routed.status == native_result.status == "sat"
        return stats.route_summary(), native_result.refinements

    routes, refinements = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    update_json_result(
        "BENCH_refinement.json",
        "rerouting",
        {"refinements": refinements, "routes": routes},
    )
    record_table(
        "refinement_routes.txt",
        "Mid-loop rerouting of the refined stream (route:<replay>)\n"
        + "\n".join(f"{key}: {count}" for key, count in routes.items()),
    )
    # Acceptance: refined classical queries migrated to the session.
    assert routes.get("refined-classical->session", 0) == refinements
    assert refinements >= 1


#: Alternation suite: periodic-length unions.  ``L = ⋃ (a^i)+`` needs
#: an lcm-sized cycle eagerly (the minimal DFA counts length modulo
#: lcm of the periods), while the queries — shortest witness, bounded
#: word enumeration — only walk one tuple state per explored length.
#: (Literal-word alternations, by contrast, minimize to small tries
#: and have nothing to win lazily.)
ALTERNATION_SUITE = [
    [f"(?:a{{{i}}})+" for i in (2, 3, 5, 7)],  # lcm 210
    [f"(?:a{{{i}}})+" for i in (2, 3, 4, 5, 6)],  # lcm 60
    [f"(?:[ab]{{{i}}})+" for i in (3, 4, 5)],  # lcm 60, 2-letter labels
]


def test_lazy_union_visits_fewer_states(benchmark, record_table):
    """The alternation suite through ``LazyUnion`` vs the eagerly
    determinized union — states visited and wall clock."""

    def measure():
        rows = []
        for options in ALTERNATION_SUITE:
            clear_caches()
            started = time.perf_counter()
            lazy = LazyUnion([dfa_for_pattern(p) for p in options])
            witness = lazy.shortest_word()
            lazy_words = list(lazy.words(max_count=10, max_length=12))
            lazy_s = time.perf_counter() - started

            clear_caches()
            started = time.perf_counter()
            eager = dfa_for_pattern(
                "|".join(f"(?:{p})" for p in options)
            )
            eager_witness = eager.shortest_word()
            list(eager.words(max_count=10, max_length=12))
            eager_s = time.perf_counter() - started

            assert (witness is None) == (eager_witness is None)
            assert all(eager.accepts_word(w) for w in lazy_words)
            rows.append(
                {
                    "options": len(options),
                    "lazy_states_visited": lazy.states_visited,
                    "eager_states": eager.n_states,
                    "lazy_s": lazy_s,
                    "eager_s": eager_s,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_json_result(
        "BENCH_refinement.json", "lazy_union", {"suite": rows}
    )
    lines = [
        "Lazy union vs eager determinization (alternation suite)",
        "options  visited  eager-states  lazy(ms)  eager(ms)",
    ]
    for row in rows:
        lines.append(
            f"{row['options']:>7} {row['lazy_states_visited']:>8} "
            f"{row['eager_states']:>13} {1000 * row['lazy_s']:>9.2f} "
            f"{1000 * row['eager_s']:>10.2f}"
        )
    record_table("refinement_union.txt", "\n".join(lines))
    # Acceptance: strictly fewer states than the eager union on every
    # alternation set.
    for row in rows:
        assert row["lazy_states_visited"] < row["eager_states"]
