"""Ablation — refinement-limit sweep (§7.4's conclusion).

"Usually, only a small number of refinements are required... even
refinement limits of five or fewer are feasible."  Sweeping the limit
over precedence-trap queries shows solved counts saturating at a small
limit.
"""

from repro.eval import format_ablation, run_refinement_ablation


def test_refinement_limit_ablation(benchmark, record_table):
    points = benchmark.pedantic(
        run_refinement_ablation,
        kwargs={"limits": (0, 1, 2, 5, 10, 20)},
        rounds=1,
        iterations=1,
    )
    table = format_ablation(points)
    record_table(
        "ablation_refinement_limit.txt",
        "Ablation — refinement limit sweep\n" + table,
    )

    by_limit = {p.limit: p for p in points}
    # Limit 0 (no refinement) cannot validate precedence traps.
    assert by_limit[0].solved < by_limit[20].solved
    # A small limit already saturates (the paper's ≤5 claim).
    assert by_limit[5].solved == by_limit[20].solved
    # Solved counts are monotone in the limit.
    ordered = [by_limit[l].solved for l in (0, 1, 2, 5, 10, 20)]
    assert ordered == sorted(ordered)
