"""Batch service throughput: jobs/minute and cache hit rate by workers.

Runs the survey workload (survey shards + solve jobs over the synthetic
corpus's heavily-duplicated regex literals) through the batch runner at
1, 2 and 4 workers.  Reproduction targets: the worker pool scales
jobs/minute with available cores, and the shared solver query cache
reports a nonzero hit rate because duplicated literals re-pose the same
canonical query.

The scaling assertion is gated on the CPUs actually available to this
process — on a single-core container 4 workers cannot beat 1, and the
table records that honestly rather than asserting fiction.
"""

import os

from repro.service import (
    BatchRunner,
    RunnerConfig,
    merge_automata_counters,
    survey_workload,
)

WORKER_COUNTS = (1, 2, 4)


def _run(workers: int):
    jobs = survey_workload(n_packages=160, seed=1909, shards=8, solve_cap=40)
    runner = BatchRunner(
        RunnerConfig(
            workers=workers,
            job_timeout=120.0,
            use_cache=True,
            shared_cache=workers > 1,
        )
    )
    return runner.run(jobs)


def _sweep():
    return {workers: _run(workers) for workers in WORKER_COUNTS}


def test_service_throughput(benchmark, record_table):
    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    cpus = len(os.sched_getaffinity(0))

    lines = [
        f"(available CPUs: {cpus})",
        "Workers     Jobs   Wall(s)   Jobs/min   Cache hits   Hit rate",
    ]
    for workers, report in reports.items():
        lines.append(
            f"{workers:>7} {len(report.results):>8} "
            f"{report.wall_time:>9.2f} {report.jobs_per_minute:>10.1f} "
            f"{report.cache_hits:>12} {100 * report.cache_hit_rate:>9.1f}%"
        )
    base = reports[1].jobs_per_minute
    for workers in (2, 4):
        speedup = reports[workers].jobs_per_minute / base if base else 0.0
        lines.append(f"speedup x{workers} vs x1: {speedup:.2f}x")
    record_table(
        "service_throughput.txt",
        "Batch service throughput (survey workload)\n" + "\n".join(lines),
    )

    for workers, report in reports.items():
        assert all(
            r.status == "ok" for r in report.results
        ), f"failed jobs at {workers} workers"
        # The duplicated survey literals must actually hit the cache.
        assert report.cache_hits > 0, f"no cache hits at {workers} workers"
        assert report.cache_hit_rate > 0.0

    if cpus >= 4:
        assert reports[4].jobs_per_minute >= 1.5 * base
    elif cpus >= 2:
        assert reports[2].jobs_per_minute >= 1.1 * base


def test_warm_automata_cache_batch(benchmark, record_table, tmp_path):
    """Second batch invocation against a populated on-disk automata cache.

    The cold run compiles every corpus regex in every worker process and
    populates the store; the warm run (fresh processes, same path) loads
    compiled DFAs instead.  Scheduler dedup is on for both, so the table
    also records how many duplicated solve jobs were coalesced.
    """
    store = str(tmp_path / "automata")

    def _run():
        jobs = survey_workload(
            n_packages=160, seed=1909, shards=8, solve_cap=40
        )
        runner = BatchRunner(
            RunnerConfig(
                workers=2,
                job_timeout=120.0,
                use_cache=True,
                automata_cache=store,
                dedup=True,
            )
        )
        return runner.run(jobs)

    cold, warm = benchmark.pedantic(
        lambda: (_run(), _run()), rounds=1, iterations=1
    )
    cold_automata = merge_automata_counters(cold.results)
    warm_automata = merge_automata_counters(warm.results)
    speedup = (
        cold.wall_time / warm.wall_time if warm.wall_time else 0.0
    )
    record_table(
        "service_warm_automata.txt",
        "Batch run: cold vs warm on-disk automata cache (2 workers)\n"
        "Run    Wall(s)  Compiles  DiskLoads  Coalesced\n"
        f"cold {cold.wall_time:>8.2f} {cold_automata['misses']:>9} "
        f"{cold_automata['disk_hits']:>10} {cold.jobs_coalesced:>10}\n"
        f"warm {warm.wall_time:>8.2f} {warm_automata['misses']:>9} "
        f"{warm_automata['disk_hits']:>10} {warm.jobs_coalesced:>10}\n"
        f"warm-path speedup: {speedup:.2f}x",
    )

    assert all(r.status == "ok" for r in cold.results)
    assert all(r.status == "ok" for r in warm.results)
    # The warm run replays compilations from disk instead of redoing
    # them, and never compiles more than the cold run did.
    assert warm_automata["disk_hits"] > 0
    assert warm_automata["misses"] < max(1, cold_automata["misses"])
    # Dedup must actually coalesce the duplicated survey literals.
    assert warm.jobs_coalesced > 0
