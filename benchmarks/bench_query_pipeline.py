"""Query-pipeline benchmarks: persistent query cache + incremental sessions.

Backs the two acceptance claims of the solver fast path and writes the
``BENCH_query.json`` trajectory the CI perf-smoke job uploads:

- **Cold vs warm batch with ``--query-cache``** — the same solve batch
  executed against an empty persistent store and then re-executed in a
  "fresh process" (cleared in-memory caches, same directory).  The warm
  run must be ≥5× faster: every definitive answer replays from disk
  instead of re-entering the CEGAR loop.
- **Session spawn amortization** — a query stream through the
  incremental ``session:`` backend must average *under one subprocess
  spawn per 10 queries* (the one-shot ``smtlib:`` backend is pinned at
  exactly one per query); measured with a fake solver binary so the CI
  machine needs no z3.
"""

import stat
import textwrap
import time

from conftest import PERF_SMOKE, update_json_result

from repro.automata import clear_caches
from repro.constraints.printer import canonical_regex
from repro.service import BatchRunner, RunnerConfig, SolveJob

#: The corpus-flavoured pattern set of bench_automata_cache, doubled
#: into match + non-match jobs: solving (not model building) dominates.
PATTERNS = [
    r"(?:[a-z0-9]+[-._])*[a-z0-9]+@[a-z]+\.[a-z]{2,3}",
    r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}",
    r"v?[0-9]+\.[0-9]+(?:\.[0-9]+)?(?:-[a-z0-9]+)?",
    r"(?:/[a-zA-Z0-9_.-]+)+/?",
    r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*",
    r"#?[0-9a-fA-F]{6}|#?[0-9a-fA-F]{3}",
    r"[a-z]+(?:-[a-z]+)*\.(?:js|json|min\.js)",
    r"(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?",
]
if PERF_SMOKE:
    PATTERNS = PATTERNS[:5]

SESSION_QUERIES = 20 if PERF_SMOKE else 40


def _solve_jobs(tag):
    jobs = []
    for i, pattern in enumerate(PATTERNS):
        jobs.append(
            SolveJob(
                job_id=f"{tag}-m{i}", pattern=pattern, solver_timeout=5.0
            )
        )
        jobs.append(
            SolveJob(
                job_id=f"{tag}-n{i}",
                pattern=pattern,
                negate=True,
                solver_timeout=5.0,
            )
        )
    return jobs


def _fresh_process_state():
    """Simulate a new invocation: no warm in-memory caches survive."""
    clear_caches()
    canonical_regex.cache_clear()


def test_cold_vs_warm_query_cache(benchmark, record_table, tmp_path):
    store = str(tmp_path / "queries")

    def measure():
        def run(tag):
            _fresh_process_state()
            started = time.perf_counter()
            report = BatchRunner(
                RunnerConfig(workers=0, query_cache=store)
            ).run(_solve_jobs(tag))
            elapsed = time.perf_counter() - started
            assert all(r.status == "ok" for r in report.results)
            return elapsed, report

        cold_s, cold_report = run("cold")
        warm_times = []
        for round_no in range(2 if PERF_SMOKE else 3):
            warm_s, warm_report = run(f"warm{round_no}")
            warm_times.append(warm_s)
            assert warm_report.cache_misses == 0  # all replayed from disk
        return cold_s, min(warm_times), cold_report, warm_report

    cold_s, warm_s, cold_report, warm_report = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = cold_s / warm_s if warm_s else 0.0
    data = {
        "jobs": len(PATTERNS) * 2,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "cold_cache_misses": cold_report.cache_misses,
        "warm_cache_hits": warm_report.cache_hits,
    }
    update_json_result("BENCH_query.json", "query_cache", data)
    record_table(
        "query_cache.txt",
        f"Persistent query cache: cold vs warm batch "
        f"({len(PATTERNS) * 2} solve jobs)\n"
        f"cold:  {1000 * cold_s:8.2f} ms "
        f"({cold_report.cache_misses} misses)\n"
        f"warm:  {1000 * warm_s:8.2f} ms "
        f"({warm_report.cache_hits} disk replays, {speedup:.1f}x)",
    )
    assert speedup >= 5.0


#: A fake solver usable both one-shot (file argument) and as an
#: interactive session (stdin dialogue) — answers every query ``unsat``.
_FAKE_SOLVER = textwrap.dedent(
    '''\
    #!/usr/bin/env python3
    import re, sys
    if len(sys.argv) > 1:           # one-shot: smtlib:<cmd> script.smt2
        print("unsat")
        sys.exit(0)
    for line in sys.stdin:          # incremental: session:<cmd>
        line = line.strip()
        if line == "(check-sat)":
            print("unsat", flush=True)
        else:
            m = re.match(r'\\(echo "(.*)"\\)', line)
            if m:
                print(m.group(1), flush=True)
    '''
)


def test_session_spawn_amortization(benchmark, record_table, tmp_path):
    from repro.automata.build import erase_captures
    from repro.constraints import InRe, StrVar
    from repro.regex import parse_regex
    from repro.solver import SolverStats
    from repro.solver.backends import SessionBackend, SmtLibBackend

    fake = tmp_path / "fakesolver"
    fake.write_text(_FAKE_SOLVER)
    fake.chmod(fake.stat().st_mode | stat.S_IXUSR)

    formulas = [
        InRe(
            StrVar(f"v{i}"),
            erase_captures(
                parse_regex(PATTERNS[i % len(PATTERNS)], "").body
            ),
        )
        for i in range(SESSION_QUERIES)
    ]

    def measure():
        stats = SolverStats()
        session = SessionBackend(str(fake), stats=stats, timeout=10.0)
        started = time.perf_counter()
        for formula in formulas:
            assert session.solve(formula).status == "unsat"
        session_s = time.perf_counter() - started
        session.close()

        oneshot = SmtLibBackend(str(fake), timeout=10.0)
        started = time.perf_counter()
        for formula in formulas:
            assert oneshot.solve(formula).status == "unsat"
        oneshot_s = time.perf_counter() - started
        return session, session_s, oneshot_s, stats

    session, session_s, oneshot_s, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    spawns_per_query = session.spawns / len(formulas)
    speedup = oneshot_s / session_s if session_s else 0.0
    tally = stats.session_summary()[session.name]
    data = {
        "queries": len(formulas),
        "spawns": session.spawns,
        "spawns_per_query": spawns_per_query,
        "queries_per_spawn": tally["queries_per_spawn"],
        "session_s": session_s,
        "oneshot_s": oneshot_s,
        "session_speedup_vs_oneshot": speedup,
    }
    update_json_result("BENCH_query.json", "session", data)
    record_table(
        "query_session.txt",
        f"Incremental session vs spawn-per-query "
        f"({len(formulas)} queries, fake solver)\n"
        f"session:  {1000 * session_s:8.2f} ms "
        f"({session.spawns} spawns, "
        f"{tally['queries_per_spawn']:.0f} queries/spawn)\n"
        f"one-shot: {1000 * oneshot_s:8.2f} ms "
        f"({len(formulas)} spawns, {speedup:.1f}x slower than session)",
    )
    # Acceptance: the session amortizes to < 1 spawn per 10 queries.
    assert spawns_per_query < 0.1
    assert session.spawns >= 1


#: Generous estimate of obs calls on one warm cached query's hot path
#: (job span, cegar spans, backend span, cache annotate, metric counts).
_OBS_CALLS_PER_QUERY = 25


def test_tracing_overhead(benchmark, record_table, tmp_path):
    """Observability cost, both switched off and on.

    The disabled path is the contract: instrumentation is everywhere on
    the hot path, so a disabled ``obs.span`` (one global load + one
    comparison) must stay under **3%** of even the cheapest real query —
    the warm cached replay — at a generous per-query call count.
    Measured as a microbenchmark (per-call cost × calls per query vs the
    measured warm per-query time) so the bound is stable on noisy CI
    boxes.  The enabled-tracer batch overhead is reported alongside.
    """
    from repro import obs

    store = str(tmp_path / "obs-queries")

    def run_batch(tag, **obs_cfg):
        _fresh_process_state()
        started = time.perf_counter()
        report = BatchRunner(
            RunnerConfig(workers=0, query_cache=store, **obs_cfg)
        ).run(_solve_jobs(tag))
        elapsed = time.perf_counter() - started
        assert all(r.status == "ok" for r in report.results)
        return elapsed

    calls = 50_000 if PERF_SMOKE else 200_000

    def measure():
        run_batch("seed")  # populate the store: later runs replay warm

        rounds = 2 if PERF_SMOKE else 3
        disabled_s = min(
            run_batch(f"off{i}") for i in range(rounds)
        )
        trace = str(tmp_path / "overhead-trace.jsonl")
        metrics_json = str(tmp_path / "overhead-metrics.json")
        enabled_s = min(
            run_batch(
                f"on{i}",
                trace=trace,
                metrics_json=metrics_json,
                slow_query_ms=0.0,
            )
            for i in range(rounds)
        )

        # Disabled-call microbenchmark: the per-call price every
        # uninstrumented run pays at each obs.span site.
        assert not obs.enabled()
        started = time.perf_counter()
        for _ in range(calls):
            with obs.span("bench:noop"):
                pass
        per_call_s = (time.perf_counter() - started) / calls
        return disabled_s, enabled_s, per_call_s

    disabled_s, enabled_s, per_call_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    jobs = len(PATTERNS) * 2
    warm_query_s = disabled_s / jobs
    disabled_overhead = (
        per_call_s * _OBS_CALLS_PER_QUERY / warm_query_s
        if warm_query_s
        else 0.0
    )
    enabled_overhead = (
        enabled_s / disabled_s - 1.0 if disabled_s else 0.0
    )
    data = {
        "jobs": jobs,
        "disabled_span_ns": per_call_s * 1e9,
        "obs_calls_per_query": _OBS_CALLS_PER_QUERY,
        "warm_query_us": warm_query_s * 1e6,
        "disabled_overhead_fraction": disabled_overhead,
        "disabled_overhead_bound": 0.03,
        "disabled_batch_s": disabled_s,
        "enabled_batch_s": enabled_s,
        "enabled_overhead_fraction": enabled_overhead,
    }
    update_json_result("BENCH_obs.json", "tracing_overhead", data)
    record_table(
        "obs_overhead.txt",
        f"Tracing overhead (warm cached batch, {jobs} solve jobs)\n"
        f"disabled span:   {per_call_s * 1e9:8.1f} ns/call "
        f"(x{_OBS_CALLS_PER_QUERY} calls = "
        f"{100 * disabled_overhead:.3f}% of a "
        f"{warm_query_s * 1e6:.0f}us warm query; bound 3%)\n"
        f"batch disabled:  {1000 * disabled_s:8.2f} ms\n"
        f"batch traced:    {1000 * enabled_s:8.2f} ms "
        f"({100 * enabled_overhead:+.1f}%)",
    )
    # Acceptance: disabled instrumentation is invisible on the warm path.
    assert disabled_overhead < 0.03


def test_routed_pipeline_composes(benchmark, record_table, tmp_path):
    """``cached:route:`` end to end: the composed fast path stays
    correct with no solver binary installed, and the routing tallies
    land in the report."""
    from repro.service import merge_route_tallies

    store = str(tmp_path / "routed-queries")

    def measure():
        _fresh_process_state()
        report = BatchRunner(
            RunnerConfig(workers=0, query_cache=store)
        ).run(
            [
                SolveJob(
                    job_id=f"r{i}",
                    pattern=pattern,
                    solver_timeout=5.0,
                    backend="cached:route:z3",
                )
                for i, pattern in enumerate(PATTERNS)
            ]
        )
        assert all(r.status == "ok" for r in report.results)
        return report

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    routes = merge_route_tallies(report.results)
    update_json_result(
        "BENCH_query.json",
        "routing",
        {"jobs": len(PATTERNS), "routes": routes},
    )
    record_table(
        "query_routing.txt",
        "Routed pipeline (cached:route:z3, no binary installed)\n"
        + "\n".join(f"{key}: {count}" for key, count in routes.items()),
    )
    assert sum(routes.values()) >= len(PATTERNS)
