"""Ablation — solver search budgets (design-choice supporting data).

Sweeps the string solver's candidate/combination budgets over a mixed
query bank (anchored captures, backreferences, boundaries, precedence
traps).  Shows that the model fragment needs only modest search: the
default budget solves the full bank, and the gain from quadrupling it
is nil — evidence for the bounded-search design (DESIGN.md §5).
"""

from repro.eval.ablation import (
    format_budget_ablation,
    run_budget_ablation,
)


def test_solver_budget_ablation(benchmark, record_table):
    points = benchmark.pedantic(
        run_budget_ablation, rounds=1, iterations=1
    )
    table = format_budget_ablation(points)
    record_table(
        "ablation_solver_budget.txt",
        "Ablation — solver budget sweep\n" + table,
    )

    by_label = {p.label: p for p in points}
    # The default budget solves everything in the bank.
    assert by_label["default"].solved == by_label["default"].total
    # Larger budgets cannot do better (and must not do worse).
    assert by_label["large"].solved == by_label["default"].solved
    # Solved counts are monotone in budget.
    order = ["tiny", "small", "default", "large"]
    solved = [by_label[label].solved for label in order]
    assert solved == sorted(solved)
