"""Conformance-fuzzing throughput + dormant collect-mode overhead.

Two measurements, merged into ``benchmarks/out/BENCH_conformance.json``:

``pairs_per_second``
    Campaign throughput of the ``fuzz`` job kind through both execution
    surfaces — the inline batch runner and the serve daemon's socket —
    over the pinned honest corpus (seed 1909).  Both surfaces must
    report zero disagreements (the honest stack *is* the trip-wire) and
    the daemon's per-pair cost must stay within a small factor of the
    batch runner's (the socket adds framing, not solving).

``collect_mode_dormant_overhead``
    A portfolio whose members agree never consults the disagreement
    machinery — ``on_disagreement="collect"`` must therefore be free
    until the day it fires.  Measured as a paired interleaved loop:
    each iteration times one raise-mode and one collect-mode query
    back to back (order alternating), so drift hits both sides
    equally, and per-mode medians (not totals) discard scheduler
    spikes; acceptance: the dormant overhead stays under **3%**.
"""

import statistics
import time

from conftest import PERF_SMOKE, update_json_result

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServeServer
from repro.service import (
    BatchRunner,
    RunnerConfig,
    fuzz_workload,
    merge_fuzz,
)

#: Honest-campaign budget; each pair costs a few pinned solver queries.
BUDGET = 4 if PERF_SMOKE else 12
SEED = 1909
TIMEOUT = 1.0

#: Paired agree-path iterations for the dormant-overhead
#: microbenchmark; each iteration runs one query per mode.
OVERHEAD_ITERATIONS = 150 if PERF_SMOKE else 400
OVERHEAD_WARMUP = 20
OVERHEAD_TRIALS = 3


def _workload():
    return fuzz_workload(
        budget=BUDGET,
        seed=SEED,
        shards=2,
        solver_timeout=TIMEOUT,
    )


def _campaign_stats(report):
    assert all(r.status == "ok" for r in report.results)
    merged = merge_fuzz(report.of_kind("fuzz"))
    # The honest stack is the whole point: a disagreement here is a
    # soundness regression, not a benchmark artifact.
    assert merged["disagreements"] == 0
    assert merged["checks"] > 0
    return merged


def test_fuzz_pairs_per_second_batch_vs_serve(
    benchmark, record_table, tmp_path
):
    """Throughput of the fuzz job kind: batch runner vs serve daemon."""

    def run_batch():
        started = time.perf_counter()
        report = BatchRunner(RunnerConfig(workers=0)).run(_workload())
        elapsed = time.perf_counter() - started
        return _campaign_stats(report), elapsed

    def run_serve():
        sock = str(tmp_path / "fuzz-bench.sock")
        server = ServeServer(
            BatchRunner(RunnerConfig(workers=0)),
            ServeConfig(socket=sock),
        ).start_background()
        try:
            with ServeClient(socket_path=sock, timeout=300.0) as client:
                started = time.perf_counter()
                results = client.run(
                    [job.to_spec() for job in _workload()]
                )
                elapsed = time.perf_counter() - started
        finally:
            server.stop()
        from repro.service import BatchReport

        return _campaign_stats(BatchReport(results=results)), elapsed

    def measure():
        batch_stats, batch_s = run_batch()
        serve_stats, serve_s = run_serve()
        return {
            "budget": BUDGET,
            "checks": batch_stats["checks"],
            "batch_seconds": batch_s,
            "serve_seconds": serve_s,
            "batch_pairs_per_s": BUDGET / batch_s,
            "serve_pairs_per_s": BUDGET / serve_s,
            "batch_checks_per_s": batch_stats["checks"] / batch_s,
            "serve_checks_per_s": serve_stats["checks"] / serve_s,
        }

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_table(
        "conformance_throughput.txt",
        "Conformance fuzzing — pairs/second (honest corpus, seed "
        f"{SEED})\n"
        f"budget:            {data['budget']} pairs "
        f"({data['checks']} oracle checks)\n"
        f"batch runner:      {data['batch_pairs_per_s']:.2f} pairs/s "
        f"({data['batch_checks_per_s']:.1f} checks/s)\n"
        f"serve daemon:      {data['serve_pairs_per_s']:.2f} pairs/s "
        f"({data['serve_checks_per_s']:.1f} checks/s)",
    )
    update_json_result("BENCH_conformance.json", "pairs_per_second", data)
    # The daemon adds socket framing, not solving: within 2x of batch.
    assert data["serve_seconds"] < data["batch_seconds"] * 2.0


def test_collect_mode_dormant_overhead(benchmark, record_table):
    """Acceptance: collect mode is free while members agree."""
    from repro.constraints import Eq, StrConst, StrVar, conj
    from repro.model.api import SymbolicRegExp
    from repro.solver.backends.native import NativeBackend
    from repro.solver.backends.portfolio import PortfolioBackend

    # The fuzz oracle's own query shape: a membership formula pinned to
    # a concrete word — heavy enough that per-query scheduling jitter
    # is small relative to the work.
    var = StrVar("bench")
    model = SymbolicRegExp("(a|b)+c", "").exec_model(var)
    formula = conj([model.match_formula, Eq(var, StrConst("abc"))])

    def build(mode):
        return PortfolioBackend(
            [NativeBackend(timeout=TIMEOUT), NativeBackend(timeout=TIMEOUT)],
            on_disagreement=mode,
        )

    def one_trial():
        raise_mode = build("raise")
        collect_mode = build("collect")
        raise_times, collect_times = [], []
        try:
            for _ in range(OVERHEAD_WARMUP):
                raise_mode.solve(formula)
                collect_mode.solve(formula)
            for iteration in range(OVERHEAD_ITERATIONS):
                # Paired design: one query per mode each iteration,
                # order alternating, so drift (thermal, allocator
                # state) hits both sides equally instead of biasing
                # whichever mode happens to run later.
                pair = (
                    (raise_mode, collect_mode)
                    if iteration % 2 == 0
                    else (collect_mode, raise_mode)
                )
                for backend in pair:
                    started = time.perf_counter()
                    backend.solve(formula)
                    elapsed = time.perf_counter() - started
                    if backend is raise_mode:
                        raise_times.append(elapsed)
                    else:
                        collect_times.append(elapsed)
        finally:
            raise_mode.close()
            collect_mode.close()
        # Medians, not totals: a single scheduler spike in a sub-ms
        # loop would otherwise swing the ratio by several percent.
        raise_med = statistics.median(raise_times)
        collect_med = statistics.median(collect_times)
        return raise_med, collect_med

    def measure():
        trials = [one_trial() for _ in range(OVERHEAD_TRIALS)]
        overheads = sorted(
            100.0 * (collect_med - raise_med) / raise_med
            for raise_med, collect_med in trials
        )
        mid = overheads[len(overheads) // 2]
        raise_med, collect_med = trials[0]
        return {
            "iterations": OVERHEAD_ITERATIONS,
            "warmup": OVERHEAD_WARMUP,
            "trials": OVERHEAD_TRIALS,
            "raise_median_ms": 1000.0 * raise_med,
            "collect_median_ms": 1000.0 * collect_med,
            "trial_overheads_pct": overheads,
            "overhead_pct": mid,
        }

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_table(
        "conformance_collect_overhead.txt",
        "Collect-mode dormant overhead (agree-path portfolio queries)\n"
        f"raise mode:   {data['raise_median_ms']:.3f} ms/query median of "
        f"{data['iterations']} paired queries\n"
        f"collect mode: {data['collect_median_ms']:.3f} ms/query median\n"
        f"overhead:     {data['overhead_pct']:+.2f}% "
        f"(median of {data['trials']} trials)",
    )
    update_json_result(
        "BENCH_conformance.json", "collect_mode_dormant_overhead", data
    )
    assert data["overhead_pct"] < 3.0
