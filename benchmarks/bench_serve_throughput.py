"""Serve-daemon throughput: warm-daemon latency, concurrency, coalescing.

Three measurements, all merged into ``benchmarks/out/BENCH_serve.json``:

``warm_vs_cold_latency``
    The headline claim of the daemon: a long-lived process amortizes
    interpreter startup, imports, and cache warmup across jobs.  The
    cold side runs ``python -m repro batch prog.js`` once per job in a
    fresh subprocess; the warm side submits the same job to an already
    running ``python -m repro serve`` daemon over its unix socket.
    Acceptance: warm per-job latency is at least 5x better.

``concurrent_throughput``
    Four client threads burst-submit a mixed, duplicate-bearing job set
    at an in-process daemon whose inline runner overlaps four jobs.

``coalesce``
    Single-flight accounting for the concurrent run, read back through
    the daemon's own ``stats`` op: duplicates submitted while their
    twin is queued or in flight execute once and fan out.
"""

import os
import statistics
import subprocess
import sys
import threading
import time

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServeServer
from repro.service import AnalyzeJob, BatchRunner, RunnerConfig, SolveJob

from conftest import PERF_SMOKE, update_json_result

PROGRAM = (
    'var s = symbol("s", "");\n'
    'if (/^x+$/.test(s)) { 1; } else { 2; }\n'
)

#: Per-side repetitions for the latency comparison.  Each cold rep is a
#: full interpreter launch, so keep the count small — the signal (startup
#: plus import time vs a socket round trip) is far larger than the noise.
LATENCY_REPS = 3 if PERF_SMOKE else 5

N_CLIENTS = 4
JOBS_PER_CLIENT = 10
DUP_PATTERN = "x(y|z)+w"


def _repro_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath(src), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return env


def _cold_latencies(prog_path, env):
    """Wall time of one-shot ``repro batch`` runs, one job each."""
    seconds = []
    for _ in range(LATENCY_REPS):
        started = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "batch", prog_path,
             "-w", "0", "--max-tests", "4", "--time-budget", "5.0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=120.0,
        )
        seconds.append(time.perf_counter() - started)
        assert proc.returncode == 0, proc.stdout.decode()
    return seconds


def _warm_latencies(sock_path, spec):
    """Round-trip times against the already-running daemon."""
    seconds = []
    with ServeClient(socket_path=sock_path, timeout=120.0) as client:
        for _ in range(LATENCY_REPS):
            started = time.perf_counter()
            results = client.run([dict(spec)])
            seconds.append(time.perf_counter() - started)
            assert results[0].status == "ok"
    return seconds


def test_warm_daemon_vs_cold_cli_latency(benchmark, record_table, tmp_path):
    prog_path = str(tmp_path / "prog.js")
    with open(prog_path, "w") as handle:
        handle.write(PROGRAM)
    spec = AnalyzeJob(
        job_id="warm", source=PROGRAM, path=prog_path,
        max_tests=4, time_budget=5.0,
    ).to_spec()
    env = _repro_env()
    sock_path = str(tmp_path / "bench.sock")

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", sock_path, "-w", "0"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 30.0
        while not os.path.exists(sock_path):
            assert time.monotonic() < deadline, "daemon never bound"
            time.sleep(0.02)
        # One throwaway job warms the daemon's caches, mirroring the
        # steady state a resident daemon actually serves from.
        _warm_latencies(sock_path, spec)
        cold, warm = benchmark.pedantic(
            lambda: (_cold_latencies(prog_path, env),
                     _warm_latencies(sock_path, spec)),
            rounds=1, iterations=1,
        )
    finally:
        daemon.terminate()
        daemon.communicate(timeout=60.0)
    assert daemon.returncode == 0

    cold_s = statistics.median(cold)
    warm_s = statistics.median(warm)
    speedup = cold_s / warm_s if warm_s else 0.0
    data = {
        "job": "analyze (1 branch, max_tests=4)",
        "reps": LATENCY_REPS,
        "cold_batch_median_s": cold_s,
        "cold_batch_min_s": min(cold),
        "warm_daemon_median_s": warm_s,
        "warm_daemon_min_s": min(warm),
        "speedup": speedup,
        "speedup_bound": 5.0,
    }
    update_json_result("BENCH_serve.json", "warm_vs_cold_latency", data)
    record_table(
        "serve_latency.txt",
        "Per-job latency: warm daemon vs cold CLI "
        f"({LATENCY_REPS} reps, median)\n"
        f"cold `repro batch`:  {1000 * cold_s:8.1f} ms\n"
        f"warm `repro submit`: {1000 * warm_s:8.1f} ms\n"
        f"speedup: {speedup:.1f}x (bound 5x)",
    )
    assert speedup >= 5.0


def _client_jobs(client_index):
    """A duplicate-heavy job mix; the shared pattern leads each burst."""
    jobs = [
        SolveJob(job_id=f"c{client_index}-dup{i}", pattern=DUP_PATTERN)
        for i in range(3)
    ]
    jobs.append(
        SolveJob(
            job_id=f"c{client_index}-neg",
            pattern="p+q", negate=True,
        )
    )
    jobs.append(
        SolveJob(
            job_id=f"c{client_index}-uniq",
            pattern="u{%d}v" % (client_index + 1),
        )
    )
    jobs.append(
        AnalyzeJob(
            job_id=f"c{client_index}-an",
            source=PROGRAM, max_tests=4, time_budget=5.0,
        )
    )
    jobs += [
        SolveJob(job_id=f"c{client_index}-s{i}", pattern=f"a{{{i + 1}}}b")
        for i in range(JOBS_PER_CLIENT - len(jobs))
    ]
    return [job.to_spec() for job in jobs]


def test_concurrent_client_throughput(benchmark, record_table, tmp_path):
    sock_path = str(tmp_path / "burst.sock")
    runner = BatchRunner(
        RunnerConfig(workers=0, inline_concurrency=N_CLIENTS)
    )
    server = ServeServer(
        runner,
        ServeConfig(socket=sock_path, max_inflight=N_CLIENTS),
    ).start_background()

    def _client(index, sink):
        with ServeClient(socket_path=sock_path, timeout=120.0) as client:
            # Fire the whole burst before collecting anything so the
            # queue backs up and duplicate flights stay open to join.
            acks = [client.submit(spec) for spec in _client_jobs(index)]
            results = {
                rid: result for rid, result, _ in client.iter_results()
            }
        sink[index] = [results[ack["id"]] for ack in acks]

    def _burst():
        sink = {}
        threads = [
            threading.Thread(target=_client, args=(index, sink))
            for index in range(N_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        elapsed = time.perf_counter() - started
        return sink, elapsed

    try:
        (sink, elapsed) = benchmark.pedantic(_burst, rounds=1, iterations=1)
        stats = server.server_stats()
    finally:
        server.stop()

    total = N_CLIENTS * JOBS_PER_CLIENT
    flat = [result for results in sink.values() for result in results]
    assert len(flat) == total
    assert all(r.status == "ok" for r in flat)

    coalesced = stats["singleflight_coalesced"]
    executed = stats["jobs_executed"]
    throughput = total / elapsed if elapsed else 0.0
    coalesce_rate = coalesced / total
    update_json_result(
        "BENCH_serve.json",
        "concurrent_throughput",
        {
            "clients": N_CLIENTS,
            "jobs": total,
            "wall_s": elapsed,
            "jobs_per_s": throughput,
            "inline_concurrency": N_CLIENTS,
        },
    )
    update_json_result(
        "BENCH_serve.json",
        "coalesce",
        {
            "jobs_submitted": total,
            "jobs_executed": executed,
            "coalesced": coalesced,
            "coalesce_rate": coalesce_rate,
        },
    )
    record_table(
        "serve_throughput.txt",
        f"Concurrent serve throughput ({N_CLIENTS} clients x "
        f"{JOBS_PER_CLIENT} jobs, duplicates included)\n"
        f"wall:       {elapsed:8.2f} s\n"
        f"throughput: {throughput:8.1f} jobs/s\n"
        f"executed:   {executed:8} of {total} submitted\n"
        f"coalesced:  {coalesced:8} ({100 * coalesce_rate:.0f}%)",
    )
    # 12 copies of the shared pattern burst in while its flight is
    # queued or running — single-flight must fold at least one of them.
    assert coalesced >= 1
    assert executed == total - coalesced
