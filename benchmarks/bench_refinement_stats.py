"""§7.4 — refinement effectiveness on real-world-shaped queries.

The paper reports that 10% of capture-group queries needed refinement,
97.2% of refined queries converged within the limit, and the mean number
of refinements was 2.9 (most needed one).  This bench reproduces those
statistics over the refinement bank plus a set of benign queries.
"""

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.eval import REFINEMENT_BANK
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.solver import SAT, Solver, SolverStats

#: Queries whose first model is usually already precedence-correct.
BENIGN_QUERIES = [
    (r"(a+)b", ""),
    (r"^(\w+)$", ""),
    (r"(\d+):(\d+)", ""),
    (r"^(x)(y)(z)$", ""),
    (r"(a|b)c", ""),
    (r"^([a-z]+)@([a-z]+)$", ""),
]


def _run():
    stats = SolverStats()
    solver = CegarSolver(
        solver=Solver(timeout=5.0), refinement_limit=20, stats=stats
    )
    for source, flags in BENIGN_QUERIES:
        regexp = SymbolicRegExp(source, flags)
        inp = StrVar("inp")
        model = regexp.exec_model(inp)
        solver.solve(model.match_formula, [model.constraint])
    for source, flags, word in REFINEMENT_BANK:
        regexp = SymbolicRegExp(source, flags)
        inp = StrVar("inp")
        model = regexp.exec_model(inp)
        problem = conj([model.match_formula, Eq(inp, StrConst(word))])
        solver.solve(problem, [model.constraint])
    return stats


def test_refinement_stats(benchmark, record_table):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    summary = stats.refinement_summary()
    refined = [q for q in stats.queries if q.refinements > 0]
    solved_refined = [q for q in refined if q.status == SAT]
    lines = [
        "Refinement effectiveness (§7.4)",
        f"queries:                 {summary['total_queries']}",
        f"queries w/ captures:     {summary['capture_queries']}",
        f"queries refined:         {summary['refined_queries']}",
        f"refined & solved:        {len(solved_refined)}",
        f"hit refinement limit:    {summary['limit_queries']}",
        f"mean refinements:        {summary['mean_refinements']:.2f}",
    ]
    record_table("refinement_stats.txt", "\n".join(lines))

    # Shape: refinement is needed by a strict subset of queries, nearly
    # all of which converge, in a small number of iterations.
    assert 0 < summary["refined_queries"] < summary["total_queries"]
    assert len(solved_refined) >= 0.9 * len(refined)
    assert summary["mean_refinements"] < 6.0
