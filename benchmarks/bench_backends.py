"""Solver-backend comparison: native vs cached vs portfolio.

Solves the regex literals of the synthetic corpus (duplicates included,
as in the wild) through the full model→solve→refine pipeline, once per
backend spec, and reports queries/second plus the definitive-answer
rate per backend.  Reproduction targets:

- every spec produces the same found/not-found verdicts (UNKNOWN may
  vary, definitive answers may not — the portfolio's soundness rule);
- ``cached:native`` performs no worse than ``native`` on a duplicated
  corpus (hits replay definitive answers);
- ``portfolio:native+smtlib`` degrades gracefully on machines without
  an SMT binary: the smtlib member contributes only UNKNOWNs and the
  race still lands every native answer.
"""

import time

from repro.corpus.extract import extract_regex_literals
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.model.api import find_matching_input
from repro.model.cegar import CegarSolver
from repro.solver import SolverStats
from repro.solver.backends import make_backend

SPECS = ("native", "cached:native", "portfolio:native+smtlib")
N_PACKAGES = 40
LITERAL_CAP = 24


def _literals():
    corpus = generate_corpus(CorpusConfig(n_packages=N_PACKAGES, seed=1909))
    literals = []
    for package in corpus:
        for content in package.files:
            for literal in extract_regex_literals(content):
                flags = literal.flags.replace("g", "").replace("y", "")
                literals.append((literal.source, flags))
                if len(literals) >= LITERAL_CAP:
                    return literals
    return literals


def _run_spec(spec, literals):
    stats = SolverStats()
    backend = make_backend(spec, timeout=1.0, stats=stats)
    cegar = CegarSolver(solver=backend, stats=stats)
    found = []
    started = time.perf_counter()
    for source, flags in literals:
        try:
            result = find_matching_input(source, flags, cegar=cegar)
        except Exception:
            result = None
        found.append(result is not None)
    wall = time.perf_counter() - started
    queries = sum(t.queries for t in stats.backend_tallies.values())
    definitive = sum(t.definitive for t in stats.backend_tallies.values())
    return {
        "found": found,
        "wall": wall,
        "queries": queries,
        "queries_per_sec": queries / wall if wall else 0.0,
        "definitive_rate": definitive / queries if queries else 0.0,
        "tallies": stats.backend_summary(),
    }


def _sweep():
    literals = _literals()
    return literals, {spec: _run_spec(spec, literals) for spec in SPECS}


def test_backend_comparison(benchmark, record_table):
    literals, runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"({len(literals)} regex literals, synthetic corpus, "
        f"{N_PACKAGES} packages)",
        "Spec                          Solved  Queries   Q/s     Defin.%"
        "   Wall(s)",
    ]
    for spec, run in runs.items():
        lines.append(
            f"{spec:<29} {sum(run['found']):>6} {run['queries']:>8} "
            f"{run['queries_per_sec']:>7.1f} "
            f"{100 * run['definitive_rate']:>8.1f} {run['wall']:>9.2f}"
        )
    record_table(
        "backends.txt",
        "Solver backend comparison (queries/sec, definitive rate)\n"
        + "\n".join(lines),
    )

    # Identical found/not-found verdicts across backends: the native
    # member decides everything here, the others only add layers.
    baseline = runs["native"]["found"]
    for spec, run in runs.items():
        assert run["found"] == baseline, f"{spec} diverged from native"

    # The portfolio's smtlib member never contributed a definitive
    # answer it shouldn't: on a machine without z3, its tally is pure
    # UNKNOWN (and with z3 installed, every answer is definitive-sound).
    portfolio = runs["portfolio:native+smtlib"]["tallies"]
    smtlib = portfolio.get("smtlib:z3")
    if smtlib is not None and not make_backend("smtlib:z3").available:
        assert smtlib["sat"] == 0 and smtlib["unsat"] == 0

    for run in runs.values():
        assert run["queries"] > 0
        assert run["definitive_rate"] > 0.0
