"""Disagreement artifacts and their versioned on-disk store.

A :class:`DisagreementArtifact` is the JSON-shaped, self-contained
record of one soundness find: the (shrunk) regex, flags and word, every
decider's verdict, the contradicting member pair, the generator seed
that reproduces it, and the canonical fingerprint it dedupes under.

The :class:`ArtifactStore` follows the same defensive discipline as the
solver query store (:class:`repro.solver.backends.cached.QueryDiskStore`):
``<dir>/v<VERSION>/<fingerprint>.json`` entries written atomically
(temp + ``os.replace``), read defensively (truncated/garbled/
version-skewed blobs are evicted and counted, never raised), and capped
with oldest-mtime GC to a low-water mark.  The one behavioural
difference is deliberate: recording an already-known fingerprint bumps
a ``hits`` counter inside the entry instead of writing a sibling — a
fuzzing campaign that trips the same bug ten thousand times must leave
one artifact with ``hits=10000``, not ten thousand files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Bump when the artifact layout changes; old entries are ignored.
ARTIFACT_STORE_VERSION = 1
_MAGIC = "repro-disagreement"


def artifact_fingerprint(pattern: str, flags: str, word: str) -> str:
    """Canonical dedupe key of one reproducer triple.

    Flags are order-normalised; the triple is hashed (fingerprints name
    files, and patterns/words are arbitrary text).
    """
    canonical = "\x00".join(
        ["v%d" % ARTIFACT_STORE_VERSION, "".join(sorted(flags)),
         pattern, word]
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class DisagreementArtifact:
    """One minimized, reproducible soundness disagreement."""

    fingerprint: str
    pattern: str
    flags: str
    word: str
    verdicts: Dict[str, str] = field(default_factory=dict)
    members: List[str] = field(default_factory=list)
    seed: Optional[int] = None
    #: What the generator originally produced, pre-shrink — kept so a
    #: shrinker bug can never lose the original reproducer.
    origin_pattern: Optional[str] = None
    origin_word: Optional[str] = None
    shrink_steps: int = 0
    hits: int = 1

    def to_blob(self) -> dict:
        return {
            "magic": _MAGIC,
            "version": ARTIFACT_STORE_VERSION,
            **asdict(self),
        }

    @classmethod
    def from_blob(cls, blob: dict) -> "DisagreementArtifact":
        if (
            blob.get("magic") != _MAGIC
            or blob.get("version") != ARTIFACT_STORE_VERSION
        ):
            raise ValueError("mismatched disagreement-artifact entry")
        fields = {
            key: blob[key]
            for key in cls.__dataclass_fields__
            if key in blob
        }
        return cls(**fields)


class ArtifactStore:
    """Fingerprint-keyed directory of disagreement artifacts.

    Layout ``<path>/v<ARTIFACT_STORE_VERSION>/<fingerprint>.json``; the
    fingerprint is repeated inside the blob and verified on load
    against foreign or renamed files.  ``max_entries`` caps the store
    with oldest-mtime GC exactly like the query store — a runaway
    campaign can flood with *distinct* bugs too, and the artifact
    directory must never be the thing that fills the disk.
    """

    def __init__(self, path: str, max_entries: Optional[int] = None):
        self.root = path
        self.path = os.path.join(path, f"v{ARTIFACT_STORE_VERSION}")
        os.makedirs(self.path, exist_ok=True)
        self.max_entries = max_entries
        self.stores = 0
        self.dup_hits = 0
        self.failures = 0
        self.evictions = 0
        self.corrupt_evictions = 0
        self._approx_count = 0 if max_entries is None else len(self)

    def _entry(self, fingerprint: str) -> str:
        # Fingerprints are sha256 hex already; foreign strings (tests,
        # hand-built artifacts) are re-hashed into the same namespace.
        name = fingerprint
        if len(name) != 64 or not all(
            c in "0123456789abcdef" for c in name
        ):
            name = hashlib.sha256(name.encode("utf-8")).hexdigest()
        return os.path.join(self.path, f"{name}.json")

    def _load(self, path: str, fingerprint: str):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                blob = json.load(handle)
            artifact = DisagreementArtifact.from_blob(blob)
            if artifact.fingerprint != fingerprint:
                raise ValueError("mismatched artifact fingerprint")
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, foreign file, stale format: evict and
            # treat as absent — the next record() rebuilds it.
            self.failures += 1
            self.corrupt_evictions += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return artifact

    def _write(self, path: str, artifact: DisagreementArtifact) -> bool:
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(
                    artifact.to_blob(), handle,
                    ensure_ascii=False, sort_keys=True,
                )
            os.replace(tmp, path)  # atomic: readers never see partials
        except OSError:
            self.failures += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def record(self, artifact: DisagreementArtifact) -> str:
        """Persist (or dedupe) one artifact; returns ``"new"``/``"dup"``.

        A known fingerprint bumps the stored entry's hit counter in
        place — the entry's mtime advances too, so hot disagreements
        also survive GC the longest.
        """
        path = self._entry(artifact.fingerprint)
        existing = self._load(path, artifact.fingerprint)
        if existing is not None:
            existing.hits += 1
            self._write(path, existing)
            self.dup_hits += 1
            return "dup"
        if self._write(path, artifact):
            self.stores += 1
            self._approx_count += 1
            if (
                self.max_entries is not None
                and self._approx_count > self.max_entries
            ):
                self.gc()
        return "new"

    def get(self, fingerprint: str) -> Optional[DisagreementArtifact]:
        return self._load(self._entry(fingerprint), fingerprint)

    def load_all(self) -> List[DisagreementArtifact]:
        """Every readable artifact, for triage tooling and reports."""
        artifacts = []
        try:
            names = sorted(os.listdir(self.path))
        except OSError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.path, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    artifact = DisagreementArtifact.from_blob(
                        json.load(handle)
                    )
            except Exception:
                self.failures += 1
                self.corrupt_evictions += 1
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            artifacts.append(artifact)
        return artifacts

    def gc(self) -> int:
        """Evict oldest-mtime artifacts past ``max_entries``.

        Same hysteresis as the query store: down to a low-water mark an
        eighth of slack below the cap, so a flood pays the directory
        scan once per slack's worth of finds.
        """
        if self.max_entries is None:
            return 0
        try:
            aged = sorted(
                (entry.stat().st_mtime, entry.path)
                for entry in os.scandir(self.path)
                if entry.name.endswith(".json")
            )
        except OSError:
            return 0
        self._approx_count = len(aged)
        if len(aged) <= self.max_entries:
            return 0
        low_water = max(
            1, self.max_entries - max(1, self.max_entries // 8)
        )
        evicted = 0
        for _, path in aged[: len(aged) - low_water]:
            try:
                os.unlink(path)
            except OSError:
                continue
            evicted += 1
        self.evictions += evicted
        self._approx_count -= evicted
        return evicted

    def counters(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "stores": self.stores,
            "dup_hits": self.dup_hits,
            "failures": self.failures,
            "evictions": self.evictions,
            "corrupt_evictions": self.corrupt_evictions,
        }

    def __len__(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.path)
                if name.endswith(".json")
            )
        except OSError:
            return 0
