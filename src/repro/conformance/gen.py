"""Seeded grammar-driven generation of regex/input pairs.

Pairs are deterministic in ``(seed, index)``: each pair derives its own
``random.Random`` stream, so a disagreement artifact can name the exact
seed that reproduces it, and sharding a budget across workers changes
*which process* checks a pair but never *what* is checked.

The grammar is weighted toward the features the oracle exists to
stress: sticky/unicode flags, named capture groups, backreferences and
lookaheads all appear far above their corpus base rates.  A slice of
the budget instead mutates patterns harvested from the survey's
template pool (:data:`repro.corpus.generator.TEMPLATE_POOL`), so the
fuzzer also covers real-world idioms the grammar would undersample.

Generation is bounded on purpose: the concrete matcher is a
backtracking matcher with no step budget, so inputs stay short (the
``max_input_length`` default keeps worst-case exponential patterns in
the thousands of steps) and quantifier nesting is capped.  Inputs never
contain the reserved model meta-characters ``⟨``/``⟩`` — those are
excluded from the model's input language (§6.1), so a word containing
one would be rejected by *every* sound backend and read as a false
disagreement with the matcher.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.preprocess import META_END, META_START
from repro.regex.matcher import RegExp

#: Small alphabets collide: a 6-letter literal pool makes a random
#: 8-char word hit a random 3-char pattern often enough that both the
#: match and the no-match branch of every backend see real traffic.
_LITERALS = "abcq01"
_INPUT_EXTRAS = " .-xz"
_CLASSES = ["[ab]", "[^a]", "[a-c]", "[0-9]", r"\d", r"\w", r"\s", "."]
#: (flags, weight) — sticky and unicode far above their survey base
#: rates; ``g`` rides along so global/matchAll code paths stay covered.
_FLAG_POOL: List[Tuple[str, int]] = [
    ("", 20),
    ("i", 10),
    ("m", 6),
    ("g", 10),
    ("y", 14),
    ("u", 12),
    ("gy", 4),
    ("iy", 4),
    ("gu", 4),
    ("im", 3),
    ("giu", 2),
]


@dataclass(frozen=True)
class ConformancePair:
    """One unit of differential-checking work: a regex plus its words."""

    pattern: str
    flags: str
    inputs: Tuple[str, ...]
    seed: int
    origin: str = "grammar"  # "grammar" | "corpus"


@dataclass
class GenConfig:
    """Knobs of the generator; the defaults are the fuzz job's."""

    max_depth: int = 4
    max_quantifier_nesting: int = 2
    max_inputs: int = 4
    max_input_length: int = 10
    #: Fraction of the budget spent mutating corpus-harvested patterns
    #: instead of growing grammar trees.
    corpus_ratio: float = 0.25


class _PatternBuilder:
    """Grows one pattern source string from one seeded rng."""

    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.group_count = 0
        self.group_names: List[str] = []

    def build(self) -> str:
        return self._disjunction(self.config.max_depth, 0)

    def _disjunction(self, depth: int, quant_depth: int) -> str:
        terms = [
            self._term(depth, quant_depth)
            for _ in range(self.rng.choice((1, 1, 1, 2, 2, 3)))
        ]
        return "|".join(terms)

    def _term(self, depth: int, quant_depth: int) -> str:
        parts = [
            self._piece(depth, quant_depth)
            for _ in range(self.rng.choice((1, 1, 2, 2, 3)))
        ]
        return "".join(parts)

    def _piece(self, depth: int, quant_depth: int) -> str:
        # Decide up front whether this piece is quantified so the atom's
        # own subtree is built under the deeper nesting budget — nested
        # unbounded quantifiers are where backtracking goes exponential.
        quantify = (
            quant_depth < self.config.max_quantifier_nesting
            and self.rng.random() < 0.35
        )
        atom = self._atom(
            depth, quant_depth + 1 if quantify else quant_depth
        )
        if quantify and atom not in ("^", "$", r"\b", r"\B"):
            atom_q = atom if len(atom) == 1 or atom.startswith(
                ("[", "(", "\\")
            ) else f"(?:{atom})"
            suffix = self.rng.choice(
                ("*", "+", "?", "{0,2}", "{1,3}", "{2}", "*?", "+?")
            )
            return atom_q + suffix
        return atom

    def _atom(self, depth: int, quant_depth: int) -> str:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.35:
            return self.rng.choice(_LITERALS)
        if roll < 0.50:
            return self.rng.choice(_CLASSES)
        if roll < 0.62:  # capture group, named half the time
            self.group_count += 1
            inner = self._disjunction(depth - 1, quant_depth)
            if self.rng.random() < 0.5:
                name = f"g{len(self.group_names)}"
                self.group_names.append(name)
                return f"(?<{name}>{inner})"
            return f"({inner})"
        if roll < 0.70:
            return f"(?:{self._disjunction(depth - 1, quant_depth)})"
        if roll < 0.80 and self.group_count:  # backreference
            if self.group_names and self.rng.random() < 0.5:
                return f"\\k<{self.rng.choice(self.group_names)}>"
            return f"\\{self.rng.randint(1, self.group_count)}"
        if roll < 0.90:  # lookahead
            op = "?=" if self.rng.random() < 0.6 else "?!"
            return f"({op}{self._disjunction(depth - 1, quant_depth)})"
        if roll < 0.96:
            return self.rng.choice(("^", "$", r"\b", r"\B"))
        return self.rng.choice(_LITERALS)


def _weighted_flags(rng: random.Random) -> str:
    total = sum(weight for _, weight in _FLAG_POOL)
    pick = rng.randrange(total)
    for flags, weight in _FLAG_POOL:
        pick -= weight
        if pick < 0:
            return flags
    return ""


def _literal_chars(pattern: str) -> str:
    """Characters appearing literally in the pattern — seeding inputs
    with them makes partial matches (the interesting cases) likely."""
    chars = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\":
            i += 2
            continue
        if ch.isalnum() or ch in " .-_":
            chars.append(ch)
        i += 1
    return "".join(chars) or _LITERALS


def _make_inputs(
    rng: random.Random, pattern: str, config: GenConfig
) -> Tuple[str, ...]:
    pool = _literal_chars(pattern) + _LITERALS + _INPUT_EXTRAS
    inputs = []
    for _ in range(config.max_inputs):
        length = rng.randint(0, config.max_input_length)
        word = "".join(rng.choice(pool) for _ in range(length))
        inputs.append(word)
    # The reserved meta-characters are outside the model's input
    # language; a word carrying one is unsolvable by construction.
    cleaned = tuple(
        w.replace(META_START, "").replace(META_END, "")
        for w in dict.fromkeys(inputs)
    )
    return cleaned or ("",)


def _valid(pattern: str, flags: str) -> bool:
    """Generated source must survive the real parser (named-backref
    composition can produce invalid references); unsupported or
    malformed patterns are regenerated, never shipped to the oracle."""
    try:
        RegExp(pattern, flags)
    except Exception:
        return False
    return True


def _mutate_corpus_pattern(
    rng: random.Random,
) -> Optional[Tuple[str, str]]:
    from repro.corpus.generator import TEMPLATE_POOL

    pattern, flags, _ = TEMPLATE_POOL[rng.randrange(len(TEMPLATE_POOL))]
    for _ in range(4):  # a few mutation attempts, first valid one wins
        mutated, mflags = pattern, flags
        roll = rng.random()
        if roll < 0.25 and len(pattern) > 1:  # drop a char
            i = rng.randrange(len(pattern))
            mutated = pattern[:i] + pattern[i + 1:]
        elif roll < 0.45:  # wrap in a (named) capture group
            name = rng.choice(("", "tag", "v"))
            mutated = (
                f"(?<{name}>{pattern})" if name else f"({pattern})"
            )
        elif roll < 0.6:  # append a backref to a fresh wrapper group
            mutated = f"({pattern})\\1"
        elif roll < 0.75:  # duplicate a char
            i = rng.randrange(len(pattern))
            mutated = pattern[:i] + pattern[i] + pattern[i:]
        else:  # perturb the flags toward sticky/unicode
            extra = rng.choice("yu")
            mflags = flags if extra in flags else flags + extra
        if _valid(mutated, mflags):
            return mutated, mflags
    return (pattern, flags) if _valid(pattern, flags) else None


def generate_pairs(
    budget: int,
    seed: int = 1909,
    config: Optional[GenConfig] = None,
    offset: int = 0,
) -> List[ConformancePair]:
    """``budget`` regex/input pairs, deterministic in ``(seed, index)``.

    ``offset`` shifts the index range: sharding one campaign across
    workers as ``(offset=0, budget=k), (offset=k, budget=k), ...``
    checks exactly the pairs a single ``budget=n*k`` run would, because
    each pair is seeded by its *global* index.
    """
    config = config or GenConfig()
    pairs: List[ConformancePair] = []
    for index in range(offset, offset + max(0, budget)):
        pair_seed = seed * 1_000_003 + index
        rng = random.Random(pair_seed)
        origin = (
            "corpus" if rng.random() < config.corpus_ratio else "grammar"
        )
        pattern = flags = None
        if origin == "corpus":
            harvested = _mutate_corpus_pattern(rng)
            if harvested is not None:
                pattern, flags = harvested
        if pattern is None:
            origin = "grammar"
            for _ in range(8):  # regenerate until the parser accepts
                candidate = _PatternBuilder(rng, config).build()
                candidate_flags = _weighted_flags(rng)
                if _valid(candidate, candidate_flags):
                    pattern, flags = candidate, candidate_flags
                    break
            else:
                pattern, flags = rng.choice(_LITERALS), ""
        pairs.append(
            ConformancePair(
                pattern=pattern,
                flags=flags,
                inputs=_make_inputs(rng, pattern, config),
                seed=pair_seed,
                origin=origin,
            )
        )
    return pairs


def coverage_summary(pairs: List[ConformancePair]) -> Dict[str, int]:
    """Feature counts over a pair list — the fuzz payload's evidence
    that the weighted grammar actually exercised what it claims to."""
    from repro.regex import ast
    from repro.regex.flags import Flags
    from repro.regex.parser import parse_pattern

    counts = {
        "pairs": len(pairs),
        "sticky": 0,
        "unicode": 0,
        "global": 0,
        "ignore_case": 0,
        "named_groups": 0,
        "captures": 0,
        "backrefs": 0,
        "lookaheads": 0,
        "corpus": 0,
    }
    for pair in pairs:
        flags = Flags.parse(pair.flags)
        counts["sticky"] += flags.sticky
        counts["unicode"] += flags.unicode
        counts["global"] += flags.global_
        counts["ignore_case"] += flags.ignore_case
        counts["corpus"] += pair.origin == "corpus"
        body = parse_pattern(pair.pattern, flags).body
        counts["captures"] += ast.contains_captures(body)
        counts["named_groups"] += bool(ast.named_groups(body))
        counts["backrefs"] += ast.contains_backrefs(body)
        counts["lookaheads"] += any(
            isinstance(sub, ast.Lookahead) for sub in ast.walk(body)
        )
    return counts
