"""The differential oracle: N deciders, one word, one verdict each.

For a pair ``(pattern, flags)`` and a concrete word ``w`` the oracle
collects verdicts from deciders that are sound *by independent
construction*:

- the concrete backtracking matcher (``RegExp.exec`` — the paper's
  ground truth, §3);
- every configured solver backend, each deciding the *pinned* query
  ``match_formula ∧ input = w`` — the symbolic exec model of §6.1 with
  the input variable fixed to the word, so SAT means "the model says
  ``w`` matches" and UNSAT means it does not.

The pinned query is solved **raw**, never through CEGAR: Algorithm 1
uses the concrete matcher as its own validation oracle, so a
CEGAR-wrapped solve could only ever agree with the matcher and the
differential check would be vacuous.  ``UNKNOWN`` is tolerated (a
budget ran out, nothing is learned) and backend exceptions degrade to
an ``error`` verdict.

What counts as a :class:`Disagreement` is direction-aware, because the
raw formula is an *over-approximation* for patterns with lookarounds,
word boundaries or interior anchors (their context-term translation is
exactly what the CEGAR loop exists to validate — §6.2):

- two *backends* contradicting each other on the identical formula is
  always a disagreement (same query, same intended semantics);
- matcher says **match** but a backend proves **UNSAT** is always a
  disagreement (a true matching word must satisfy any sound
  over-approximation — this is the direction a lost match hides in);
- matcher says **nomatch** but a backend finds **SAT** is a
  disagreement only for patterns in the *exact* fragment (no
  lookarounds/boundaries/anchors); otherwise it is counted as a
  tolerated over-approximation, the solver model being precisely the
  kind of candidate CEGAR would refute.

``planted:`` — a deliberately unsound backend that flips SAT to UNSAT
whenever the pinned word contains a trigger character — is registered
here so the whole harness (oracle → shrink → artifact store → report)
can be exercised end-to-end against a known bug.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.constraints import Eq, StrConst, StrVar, conj
from repro.constraints.formulas import Formula
from repro.model.preprocess import META_END, META_START
from repro.regex.matcher import RegExp
from repro.solver.backends import make_backend
from repro.solver.backends.base import BackendError, SolverBackend
from repro.solver.backends.native import NativeBackend
from repro.solver.backends.registry import (
    _split_rest,
    register_backend,
    registered_backends,
)
from repro.solver.core import SAT, SolverResult, UNSAT
from repro.solver.stats import SolverStats

MATCH = "match"
NOMATCH = "nomatch"
UNDECIDED = "unknown"
ERROR = "error"

_MATCHER = "matcher"

_check_ids = itertools.count()


def _exact_fragment(body) -> bool:
    """Whether the raw (un-refined) match formula is exact for ``body``.

    Captures and backreferences translate to word equations whose
    *membership* projection is exact (refinement only pins down which
    captures the greedy matcher picks, not whether a match exists);
    lookarounds, word boundaries and anchors translate through context
    terms whose spurious models are CEGAR's job to refute, so a raw SAT
    there proves nothing against the matcher.
    """
    from repro.regex import ast

    return not any(
        isinstance(
            sub, (ast.Lookahead, ast.WordBoundary, ast.Anchor)
        )
        for sub in ast.walk(body)
    )


@dataclass
class Disagreement:
    """Two deciders contradicted each other on one concrete word."""

    pattern: str
    flags: str
    word: str
    #: The contradicting pair, ``(who said match, who said nomatch)``.
    members: Tuple[str, str]
    verdicts: Dict[str, str] = field(default_factory=dict)
    seed: Optional[int] = None


@dataclass
class CheckOutcome:
    """All verdicts for one ``(pattern, flags, word)`` check."""

    pattern: str
    flags: str
    word: str
    verdicts: Dict[str, str]
    disagreement: Optional[Disagreement] = None


class DifferentialOracle:
    """Cross-checks the matcher against one or more solver backends."""

    def __init__(
        self,
        backends: Sequence[object] = ("native",),
        *,
        timeout: float = 2.0,
        stats: Optional[SolverStats] = None,
        model_cache_size: int = 64,
    ):
        register_planted_backend()
        self.stats = stats
        self.timeout = timeout
        self.members: List[Tuple[str, object]] = []
        for spec in backends:
            backend = make_backend(spec, timeout=timeout, stats=stats)
            name = getattr(backend, "name", str(spec))
            while any(name == existing for existing, _ in self.members):
                name += "'"  # two members of the same spec stay distinct
            self.members.append((name, backend))
        if not self.members:
            raise BackendError("differential oracle needs a backend")
        self.counters: Dict[str, int] = {
            "checks": 0,
            "skipped": 0,
            "disagreements": 0,
            "tolerated_overapprox": 0,
            MATCH: 0,
            NOMATCH: 0,
            UNDECIDED: 0,
            ERROR: 0,
        }
        #: (pattern, flags) → (input var, match formula, exact?);
        #: building the exec model dominates a check, and the shrinker
        #: re-checks the same pattern against many words.
        self._models: "OrderedDict[Tuple[str, str], tuple]" = OrderedDict()
        self._model_cache_size = model_cache_size

    # -- model plumbing ----------------------------------------------------

    def _pinned_formula(
        self, pattern: str, flags: str, word: str
    ) -> Tuple[Optional[Formula], bool]:
        key = (pattern, flags)
        cached = self._models.get(key)
        if cached is None:
            from repro.model.api import SymbolicRegExp

            try:
                symbolic = SymbolicRegExp(pattern, flags)
                var = StrVar(f"fuzz!{next(_check_ids)}")
                model = symbolic.exec_model(var)
            except Exception:
                cached = (None, None, False)  # unsupported: negative-cached
            else:
                cached = (
                    var,
                    model.match_formula,
                    _exact_fragment(symbolic.concrete.pattern.body),
                )
            self._models[key] = cached
            if len(self._models) > self._model_cache_size:
                self._models.popitem(last=False)
        else:
            self._models.move_to_end(key)
        var, match_formula, exact = cached
        if var is None:
            return None, False
        return conj([match_formula, Eq(var, StrConst(word))]), exact

    # -- the check itself --------------------------------------------------

    def check(
        self,
        pattern: str,
        flags: str,
        word: str,
        seed: Optional[int] = None,
    ) -> Optional[CheckOutcome]:
        """Decide one word every way we know how; ``None`` = skipped."""
        if META_START in word or META_END in word:
            self.counters["skipped"] += 1
            return None
        try:
            concrete = RegExp(pattern, flags).exec(word) is not None
        except Exception:
            self.counters["skipped"] += 1
            return None
        formula, exact = self._pinned_formula(pattern, flags, word)
        if formula is None:
            self.counters["skipped"] += 1
            return None
        verdicts: Dict[str, str] = {
            _MATCHER: MATCH if concrete else NOMATCH
        }
        for name, backend in self.members:
            verdicts[name] = self._backend_verdict(backend, formula)
        self.counters["checks"] += 1
        for verdict in verdicts.values():
            if verdict in self.counters:
                self.counters[verdict] += 1
        disagreement = self._find_disagreement(
            pattern, flags, word, verdicts, exact, seed
        )
        return CheckOutcome(pattern, flags, word, verdicts, disagreement)

    def _backend_verdict(self, backend, formula: Formula) -> str:
        try:
            result: SolverResult = backend.solve(formula)
        except Exception:
            return ERROR
        if result.status == SAT:
            return MATCH
        if result.status == UNSAT:
            return NOMATCH
        return UNDECIDED

    def _find_disagreement(
        self,
        pattern: str,
        flags: str,
        word: str,
        verdicts: Dict[str, str],
        exact: bool,
        seed: Optional[int],
    ) -> Optional[Disagreement]:
        matcher_verdict = verdicts[_MATCHER]
        backend_match = next(
            (
                n for n, v in verdicts.items()
                if v == MATCH and n != _MATCHER
            ),
            None,
        )
        backend_nomatch = next(
            (
                n for n, v in verdicts.items()
                if v == NOMATCH and n != _MATCHER
            ),
            None,
        )
        if backend_match is not None and backend_nomatch is not None:
            # Two backends contradict on the identical formula: always
            # a bug, no approximation argument applies.
            said_match, said_nomatch = backend_match, backend_nomatch
        elif matcher_verdict == MATCH and backend_nomatch is not None:
            # A real matching word refuted by a backend — unsound in
            # every fragment (the formula over-approximates matching).
            said_match, said_nomatch = _MATCHER, backend_nomatch
        elif matcher_verdict == NOMATCH and backend_match is not None:
            if not exact:
                # Lookaround/boundary/anchor patterns: a spurious SAT
                # is the documented over-approximation CEGAR refutes.
                self.counters["tolerated_overapprox"] += 1
                return None
            said_match, said_nomatch = backend_match, _MATCHER
        else:
            return None
        self.counters["disagreements"] += 1
        pair = f"{said_match}|{said_nomatch}"
        if self.stats is not None:
            self.stats.record_disagreement(pair)
        obs.event(
            "oracle:disagreement",
            members=pair,
            pattern=pattern,
            flags=flags,
            word=word,
        )
        return Disagreement(
            pattern=pattern,
            flags=flags,
            word=word,
            members=(said_match, said_nomatch),
            verdicts=dict(verdicts),
            seed=seed,
        )

    def check_pair(self, pair) -> List[CheckOutcome]:
        """Check every input of a :class:`~.gen.ConformancePair`."""
        outcomes = []
        for word in pair.inputs:
            outcome = self.check(
                pair.pattern, pair.flags, word, seed=pair.seed
            )
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def disagrees(self, pattern: str, flags: str, word: str) -> bool:
        """The shrinker's predicate: does this triple still disagree?"""
        outcome = self.check(pattern, flags, word)
        return outcome is not None and outcome.disagreement is not None


# -- the planted bug ---------------------------------------------------------


class PlantedBackend(SolverBackend):
    """``planted:?trigger=N`` — native, except deliberately unsound.

    Answers exactly like the native solver unless some string constant
    of the formula contains ``chr(N)`` (default ``q``), in which case a
    SAT answer is flipped to UNSAT — a one-directional soundness bug,
    so every disagreement it causes shrinks to the same minimal
    reproducer and the harness's "exactly one deduped artifact"
    property is decidable.  Exists only to test the harness; never a
    production spec.
    """

    def __init__(
        self,
        stats: Optional[SolverStats] = None,
        timeout: Optional[float] = None,
        trigger: int = 113,  # ord('q')
    ):
        super().__init__(stats)
        self.name = "planted"
        self.trigger = chr(int(trigger))
        options = {} if timeout is None else {"timeout": timeout}
        self._inner = NativeBackend(stats=None, **options)

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        result = self._inner.solve(formula)
        if result.status == SAT and self._triggered(formula):
            result = SolverResult(UNSAT)
        self._tally(result.status, perf_counter() - started)
        return result

    def _triggered(self, formula: Formula) -> bool:
        return any(
            self.trigger in value for value in _string_consts(formula)
        )


def _string_consts(obj) -> List[str]:
    """Every ``StrConst`` value inside a formula tree.

    Regex AST subtrees are *not* descended into: pattern literals live
    in character sets, and the planted bug must key on the pinned word
    (and capture constants), not on the pattern's spelling.
    """
    from repro.regex.ast import Node as _RegexNode

    out: List[str] = []
    stack = [obj]
    while stack:
        item = stack.pop()
        if isinstance(item, StrConst):
            out.append(item.value)
        elif isinstance(item, _RegexNode):
            continue
        elif hasattr(item, "__dataclass_fields__"):
            stack.extend(
                getattr(item, name)
                for name in item.__dataclass_fields__
            )
        elif isinstance(item, (tuple, list, frozenset, set)):
            stack.extend(item)
    return out


def _planted_factory(rest, *, timeout=None, stats=None, **_extras):
    body, options = _split_rest(rest)
    if body:
        raise BackendError(
            f"planted backend takes no argument (got {body!r})"
        )
    unknown = set(options) - {"trigger", "timeout"}
    if unknown:
        raise BackendError(
            f"planted backend does not accept option(s) {sorted(unknown)}"
        )
    if timeout is not None:
        options.setdefault("timeout", timeout)
    return PlantedBackend(stats=stats, **options)


def register_planted_backend() -> None:
    """Idempotently register the ``planted`` spec scheme."""
    if "planted" not in registered_backends():
        register_backend("planted", _planted_factory)
