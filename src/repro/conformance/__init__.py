"""Conformance fuzzing at scale: soundness as a workload.

The paper's core claim is *soundness* — the symbolic semantics of §5/§6
agree with the concrete ES6 matcher on every word the solver pins down.
This package turns that claim into a continuously-checkable workload:

- :mod:`repro.conformance.gen` — a seeded, grammar-driven generator of
  regex/input pairs, weighted toward the features where soundness bugs
  hide (sticky/unicode flags, named groups, backreferences,
  lookaheads), plus mutation of corpus-harvested patterns;
- :mod:`repro.conformance.oracle` — the differential oracle: the
  concrete backtracking matcher vs the native solver vs any configured
  external backend, each deciding "does this regex match this exact
  word", with UNKNOWN tolerated and contradictions flagged;
- :mod:`repro.conformance.triage` — delta-debugging shrinker plus the
  capture → shrink → fingerprint → dedupe → persist pipeline;
- :mod:`repro.conformance.artifacts` — versioned on-disk store of
  disagreement artifacts with atomic writes, corrupt-entry eviction
  and age-based GC (the query-store discipline).

The ``fuzz`` job kind (:class:`repro.service.jobs.FuzzJob`) runs this
pipeline through every execution surface — batch runner, serve daemon,
cluster fleet — and ``planted:`` (a deliberately unsound stub backend)
exists so the harness itself is testable end-to-end.
"""

from repro.conformance.artifacts import (
    ARTIFACT_STORE_VERSION,
    ArtifactStore,
    DisagreementArtifact,
    artifact_fingerprint,
)
from repro.conformance.gen import (
    ConformancePair,
    GenConfig,
    coverage_summary,
    generate_pairs,
)
from repro.conformance.oracle import (
    CheckOutcome,
    DifferentialOracle,
    Disagreement,
    PlantedBackend,
    register_planted_backend,
)
from repro.conformance.triage import (
    NotADisagreement,
    TriagePipeline,
    TriageResult,
    shrink_disagreement,
)

__all__ = [
    "ARTIFACT_STORE_VERSION",
    "ArtifactStore",
    "CheckOutcome",
    "ConformancePair",
    "DifferentialOracle",
    "Disagreement",
    "DisagreementArtifact",
    "GenConfig",
    "NotADisagreement",
    "PlantedBackend",
    "TriagePipeline",
    "TriageResult",
    "artifact_fingerprint",
    "coverage_summary",
    "generate_pairs",
    "register_planted_backend",
    "shrink_disagreement",
]
