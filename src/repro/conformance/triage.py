"""Disagreement triage: shrink, fingerprint, dedupe, persist.

The shrinker is delta debugging specialised to this domain.  Soundness
of the shrink is *reproduction*, not equivalence: a candidate reduction
is kept iff the reduced triple still makes the oracle disagree — the
shrunk artifact is a different (smaller) witness of the same bug, and
semantic drift along the way is irrelevant as long as each accepted
step re-checks the oracle.  Three reduction axes interleave to a
fixpoint, cheapest first:

- **flags** — drop one flag at a time;
- **word** — remove one character at a time (inputs are ≤ ~12 chars,
  so char-wise ddmin is already minimal);
- **pattern** — greedy AST reductions (replace the body with ε, drop a
  concat part, commit to one alternative, unwrap quantifiers/groups/
  lookaheads), each validated by unparse → re-parse before the oracle
  sees it (a reduction can orphan a named backreference, which is a
  *syntax* error, not a smaller witness).

Shrinking something that does not disagree in the first place raises
:class:`NotADisagreement`: a shrinker that "minimizes" a healthy input
to ε would manufacture artifacts out of noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro import obs
from repro.regex import ast
from repro.regex.flags import Flags
from repro.regex.parser import parse_pattern
from repro.regex.unparse import unparse

from repro.conformance.artifacts import (
    ArtifactStore,
    DisagreementArtifact,
    artifact_fingerprint,
)
from repro.conformance.oracle import Disagreement, DifferentialOracle

#: Hard cap on accepted reductions — the oracle solves one query per
#: *candidate*, so a pathological disagreement must terminate anyway.
_MAX_STEPS = 200


class NotADisagreement(ValueError):
    """Asked to shrink a triple the oracle does not disagree on."""


def _flag_candidates(flags: str) -> Iterator[str]:
    for i in range(len(flags)):
        yield flags[:i] + flags[i + 1:]


def _word_candidates(word: str) -> Iterator[str]:
    # Big bites first (halves), then single characters.
    if len(word) >= 4:
        half = len(word) // 2
        yield word[half:]
        yield word[:half]
    for i in range(len(word)):
        yield word[:i] + word[i + 1:]


def _node_reductions(node: ast.Node) -> Iterator[ast.Node]:
    """Smaller candidates for one subtree (not recursing — see below)."""
    if isinstance(node, ast.Concat):
        for i in range(len(node.parts)):
            yield ast.concat(node.parts[:i] + node.parts[i + 1:])
    elif isinstance(node, ast.Alternation):
        yield from node.options
    elif isinstance(node, ast.Quantifier):
        yield node.child
        yield ast.Empty()
    elif isinstance(node, (ast.Group, ast.NonCapGroup)):
        yield node.child
    elif isinstance(node, ast.Lookahead):
        yield ast.Empty()
        yield node.child
    elif not isinstance(node, ast.Empty):
        yield ast.Empty()


def _rewrites(node: ast.Node) -> Iterator[ast.Node]:
    """Every tree obtainable by reducing exactly one subtree of ``node``."""
    yield from _node_reductions(node)
    if isinstance(node, ast.Concat):
        for i, part in enumerate(node.parts):
            for reduced in _rewrites(part):
                yield ast.concat(
                    node.parts[:i] + (reduced,) + node.parts[i + 1:]
                )
    elif isinstance(node, ast.Alternation):
        for i, option in enumerate(node.options):
            for reduced in _rewrites(option):
                yield ast.alternation(
                    node.options[:i] + (reduced,) + node.options[i + 1:]
                )
    elif isinstance(node, ast.Quantifier):
        for reduced in _rewrites(node.child):
            yield ast.Quantifier(reduced, node.min, node.max, node.lazy)
    elif isinstance(node, ast.Group):
        for reduced in _rewrites(node.child):
            yield ast.Group(reduced, node.index, name=node.name)
    elif isinstance(node, ast.NonCapGroup):
        for reduced in _rewrites(node.child):
            yield ast.NonCapGroup(reduced)
    elif isinstance(node, ast.Lookahead):
        for reduced in _rewrites(node.child):
            yield ast.Lookahead(reduced, node.negative)


def _pattern_candidates(pattern: str, flags: str) -> Iterator[str]:
    """Strictly-shorter valid pattern sources, one reduction per step."""
    try:
        body = parse_pattern(pattern, Flags.parse(flags)).body
    except Exception:
        return
    seen = {pattern}
    for reduced in _rewrites(body):
        try:
            candidate = unparse(reduced)
        except Exception:
            continue
        if candidate in seen or len(candidate) >= len(pattern):
            continue
        seen.add(candidate)
        try:
            # Re-parse under the same flags: a reduction can orphan a
            # backreference or produce otherwise-invalid source.
            parse_pattern(candidate, Flags.parse(flags))
        except Exception:
            continue
        yield candidate


def shrink_disagreement(
    check: Callable[[str, str, str], bool],
    pattern: str,
    flags: str,
    word: str,
    max_steps: int = _MAX_STEPS,
) -> Tuple[str, str, str, int]:
    """Greedy fixpoint shrink of a disagreeing ``(pattern, flags, word)``.

    ``check(pattern, flags, word) -> bool`` is the oracle predicate
    ("does this still disagree"); raises :class:`NotADisagreement` when
    the starting triple fails it.  Returns the reduced triple plus the
    number of accepted reduction steps.
    """
    if not check(pattern, flags, word):
        raise NotADisagreement(
            f"/{pattern}/{flags} on {word!r} does not disagree; "
            "refusing to shrink it"
        )
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _flag_candidates(flags):
            if check(pattern, candidate, word):
                flags = candidate
                steps += 1
                improved = True
                break
        if improved:
            continue
        for candidate in _word_candidates(word):
            if check(pattern, flags, candidate):
                word = candidate
                steps += 1
                improved = True
                break
        if improved:
            continue
        for candidate in _pattern_candidates(pattern, flags):
            if check(candidate, flags, word):
                pattern = candidate
                steps += 1
                improved = True
                break
    return pattern, flags, word, steps


@dataclass
class TriageResult:
    """What became of one captured disagreement."""

    artifact: DisagreementArtifact
    status: str  # "new" | "dup" | "unstored"


class TriagePipeline:
    """capture → shrink → fingerprint → dedupe → persist.

    Wired to a :class:`DifferentialOracle` (the shrink predicate) and an
    optional :class:`ArtifactStore`; without a store the artifact is
    still built and returned (status ``"unstored"``) so collect-mode
    jobs always have something to report.
    """

    def __init__(
        self,
        oracle: DifferentialOracle,
        store: Optional[ArtifactStore] = None,
        *,
        shrink: bool = True,
    ):
        self.oracle = oracle
        self.store = store
        self.shrink = shrink
        self.handled = 0
        self.shrink_steps = 0

    def handle(self, disagreement: Disagreement) -> TriageResult:
        pattern = disagreement.pattern
        flags = disagreement.flags
        word = disagreement.word
        verdicts = dict(disagreement.verdicts)
        members = list(disagreement.members)
        steps = 0
        if self.shrink:
            try:
                pattern, flags, word, steps = shrink_disagreement(
                    self.oracle.disagrees, pattern, flags, word
                )
            except NotADisagreement:
                # Flaky (e.g. a timeout-shaped) disagreement: keep the
                # original triple rather than dropping the evidence.
                pass
            else:
                shrunk = self.oracle.check(pattern, flags, word)
                if shrunk is not None and shrunk.disagreement is not None:
                    verdicts = dict(shrunk.verdicts)
                    members = list(shrunk.disagreement.members)
        artifact = DisagreementArtifact(
            fingerprint=artifact_fingerprint(pattern, flags, word),
            pattern=pattern,
            flags=flags,
            word=word,
            verdicts=verdicts,
            members=members,
            seed=disagreement.seed,
            origin_pattern=disagreement.pattern,
            origin_word=disagreement.word,
            shrink_steps=steps,
        )
        status = (
            self.store.record(artifact)
            if self.store is not None
            else "unstored"
        )
        self.handled += 1
        self.shrink_steps += steps
        obs.event(
            "triage:artifact",
            status=status,
            fingerprint=artifact.fingerprint,
            pattern=pattern,
            flags=flags,
            word=word,
            shrink_steps=steps,
        )
        return TriageResult(artifact=artifact, status=status)
