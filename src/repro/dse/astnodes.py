"""AST for mini-JS — the JavaScript subset executed by the DSE engine.

The subset covers what the paper's benchmark packages exercise: functions
(with closures), ``var``/``let``/``const``, control flow (``if``,
``while``, ``for``), strings/numbers/booleans/``null``/``undefined``,
arrays and object literals, property/index access, the string methods the
regex API interacts with, regex literals, and an ``assert`` builtin for
Listing 1-style runtime checks.

Every statement carries a stable integer ``sid`` assigned at parse time;
statement coverage (§7's metric) is measured over these ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Node:
    __slots__ = ()


# -- expressions -------------------------------------------------------------


@dataclass
class Literal(Node):
    value: object  # str | float | bool | None


@dataclass
class Undefined(Node):
    pass


@dataclass
class RegexLiteral(Node):
    source: str
    flags: str


@dataclass
class Identifier(Node):
    name: str


@dataclass
class ArrayLiteral(Node):
    elements: List[Node]


@dataclass
class ObjectLiteral(Node):
    entries: List[Tuple[str, Node]]


@dataclass
class FunctionExpr(Node):
    params: List[str]
    body: "Block"
    name: Optional[str] = None


@dataclass
class Unary(Node):
    op: str  # ! - typeof
    operand: Node


@dataclass
class Binary(Node):
    op: str  # + - * / % === !== == != < <= > >= && ||
    left: Node
    right: Node


@dataclass
class Conditional(Node):
    test: Node
    then: Node
    otherwise: Node


@dataclass
class Assign(Node):
    target: Node  # Identifier | Member | Index
    value: Node
    op: str = "="  # = += -=


@dataclass
class Call(Node):
    callee: Node
    args: List[Node]


@dataclass
class New(Node):
    callee: Node
    args: List[Node]


@dataclass
class Member(Node):
    obj: Node
    name: str


@dataclass
class Index(Node):
    obj: Node
    index: Node


# -- statements ----------------------------------------------------------------


@dataclass
class Statement(Node):
    sid: int = field(default=-1, init=False)


@dataclass
class ExprStatement(Statement):
    expr: Node


@dataclass
class VarDecl(Statement):
    kind: str  # var let const
    name: str
    init: Optional[Node]


@dataclass
class Block(Statement):
    body: List[Statement]


@dataclass
class If(Statement):
    test: Node
    then: Statement
    otherwise: Optional[Statement]


@dataclass
class While(Statement):
    test: Node
    body: Statement


@dataclass
class For(Statement):
    init: Optional[Statement]
    test: Optional[Node]
    update: Optional[Node]
    body: Statement


@dataclass
class Return(Statement):
    value: Optional[Node]


@dataclass
class Break(Statement):
    pass


@dataclass
class Continue(Statement):
    pass


@dataclass
class FunctionDecl(Statement):
    name: str
    params: List[str]
    body: Block


@dataclass
class Throw(Statement):
    value: Node


@dataclass
class Program(Node):
    body: List[Statement]
    statement_count: int = 0


def iter_statements(node):
    """Yield every Statement in a program/subtree (for coverage totals)."""
    if isinstance(node, Program):
        for stmt in node.body:
            yield from iter_statements(stmt)
        return
    if isinstance(node, Statement):
        yield node
    if isinstance(node, Block):
        for stmt in node.body:
            yield from iter_statements(stmt)
    elif isinstance(node, If):
        yield from iter_statements(node.then)
        if node.otherwise is not None:
            yield from iter_statements(node.otherwise)
    elif isinstance(node, (While,)):
        yield from iter_statements(node.body)
    elif isinstance(node, For):
        if node.init is not None:
            yield from iter_statements(node.init)
        yield from iter_statements(node.body)
    elif isinstance(node, FunctionDecl):
        yield from iter_statements(node.body)
    elif isinstance(node, ExprStatement):
        yield from _iter_function_bodies(node.expr)
    elif isinstance(node, (VarDecl, Return)):
        init = node.init if isinstance(node, VarDecl) else node.value
        if init is not None:
            yield from _iter_function_bodies(init)


def _iter_function_bodies(expr):
    """Find statements inside function expressions nested in expressions."""
    if isinstance(expr, FunctionExpr):
        yield from iter_statements(expr.body)
    elif isinstance(expr, (Unary,)):
        yield from _iter_function_bodies(expr.operand)
    elif isinstance(expr, Binary):
        yield from _iter_function_bodies(expr.left)
        yield from _iter_function_bodies(expr.right)
    elif isinstance(expr, Conditional):
        yield from _iter_function_bodies(expr.test)
        yield from _iter_function_bodies(expr.then)
        yield from _iter_function_bodies(expr.otherwise)
    elif isinstance(expr, Assign):
        yield from _iter_function_bodies(expr.value)
    elif isinstance(expr, (Call, New)):
        yield from _iter_function_bodies(expr.callee)
        for arg in expr.args:
            yield from _iter_function_bodies(arg)
    elif isinstance(expr, Member):
        yield from _iter_function_bodies(expr.obj)
    elif isinstance(expr, Index):
        yield from _iter_function_bodies(expr.obj)
        yield from _iter_function_bodies(expr.index)
    elif isinstance(expr, ArrayLiteral):
        for el in expr.elements:
            yield from _iter_function_bodies(el)
    elif isinstance(expr, ObjectLiteral):
        for _, val in expr.entries:
            yield from _iter_function_bodies(val)
