"""The DSE driver: generational search over mini-JS programs (§6.2).

One :class:`DseEngine` run plays the role of ExpoSE analysing one
package: execute a test case concretely, collect the path condition,
flip each clause, solve (through CEGAR at the full support level), and
enqueue the discovered inputs via the CUPA scheduler.  Coverage is
statement coverage over parse-time statement ids, the paper's metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.constraints import Formula, StrVar, conj
from repro.dse.astnodes import Program
from repro.dse.interpreter import (
    BranchRecord,
    Interpreter,
    RegexSupportLevel,
    Trace,
)
from repro.dse.parser import parse_program
from repro.dse.strategy import CupaScheduler, QueuedTest
from repro.model.cegar import CegarSolver
from repro.solver import SAT, Solver, SolverStats
from repro.solver.backends import make_backend
from repro.solver.stats import QueryRecord


@dataclass
class EngineConfig:
    level: RegexSupportLevel = RegexSupportLevel.REFINED
    max_tests: int = 60
    time_budget: float = 30.0  # seconds
    refinement_limit: int = 20
    solver_timeout: float = 3.0
    max_flips_per_trace: int = 24
    seed: int = 1909
    #: Solver backend spec (``repro.solver.backends.make_backend``) used
    #: when no explicit ``solver_factory``/``backend`` argument is given.
    backend: Optional[str] = None
    #: Directory for the persistent automata compilation cache
    #: (``repro.automata.configure_automata_cache``); ``None`` keeps the
    #: in-memory interner only.  Process-global once attached.
    automata_cache: Optional[str] = None


@dataclass
class EngineResult:
    """Aggregated outcome of one analysis run (one 'package')."""

    covered: Set[int] = field(default_factory=set)
    statement_count: int = 0
    tests_run: int = 0
    queries: int = 0
    sat_queries: int = 0
    failures: List[str] = field(default_factory=list)
    stats: SolverStats = field(default_factory=SolverStats)
    regex_ops: int = 0
    concretizations: int = 0
    wall_time: float = 0.0

    @property
    def coverage(self) -> float:
        if self.statement_count == 0:
            return 0.0
        return len(self.covered) / self.statement_count

    @property
    def tests_per_minute(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.tests_run * 60.0 / self.wall_time


def default_solver_factory(timeout: float) -> Solver:
    """The stock solver construction (no query cache)."""
    return Solver(timeout=timeout, stats=None)


class DseEngine:
    """Dynamic symbolic execution of one mini-JS program.

    The solver is chosen through the pluggable backend API: ``backend``
    (or ``config.backend``) is any spec accepted by
    :func:`repro.solver.backends.make_backend` — ``native``,
    ``smtlib:z3``, ``portfolio:native+smtlib``, ``cached:native``, or an
    already-built backend object.  The backend is built once and reused
    for every flipped branch of the run, with per-backend tallies
    recorded into ``result.stats``.

    ``solver_factory`` remains the service layer's lower-level injection
    seam (it wins over ``backend``): called once with
    ``timeout=config.solver_timeout``, e.g. to hand in a
    :class:`repro.solver.backends.CachedBackend` sharing one query cache
    across runs.
    """

    def __init__(
        self,
        source: str | Program,
        config: Optional[EngineConfig] = None,
        solver_factory: Optional[Callable[..., Solver]] = None,
        backend: Optional[str] = None,
    ):
        self.program = (
            source if isinstance(source, Program) else parse_program(source)
        )
        self.config = config or EngineConfig()
        self.result = EngineResult(
            statement_count=self.program.statement_count,
            stats=SolverStats(),
        )
        if solver_factory is not None:
            self._base_solver = solver_factory(
                timeout=self.config.solver_timeout
            )
            binder = getattr(self._base_solver, "bind_stats", None)
            if callable(binder):
                binder(self.result.stats)
        else:
            self._base_solver = make_backend(
                backend or self.config.backend,
                timeout=self.config.solver_timeout,
                stats=self.result.stats,
            )
        self._cegar = CegarSolver(
            solver=self._base_solver,
            refinement_limit=self.config.refinement_limit,
            stats=self.result.stats,
        )
        self._scheduler = CupaScheduler(self.config.seed)
        self._explored: Set[Tuple] = set()
        self._seen_inputs: Set[Tuple] = set()

    # -- main loop ---------------------------------------------------------

    def run(self) -> EngineResult:
        from repro.automata import (
            automata_cache_counters,
            configure_automata_cache,
        )
        from repro.automata.cache import counters_delta

        if self.config.automata_cache:
            configure_automata_cache(self.config.automata_cache)
        automata0 = automata_cache_counters()
        deadline = time.monotonic() + self.config.time_budget
        # The factory may hand us a (possibly shared) caching solver;
        # snapshot its counters so the run's stats report only its own
        # hits and misses.
        hits0 = getattr(self._base_solver, "hits", 0)
        misses0 = getattr(self._base_solver, "misses", 0)
        self._enqueue(QueuedTest(inputs={}, origin_site=-1))
        with obs.span(
            "dse:run", level=self.config.level.name
        ) as run_span:
            while (
                self._scheduler
                and self.result.tests_run < self.config.max_tests
                and time.monotonic() < deadline
            ):
                test = self._scheduler.pop()
                trace = self._execute(test.inputs)
                self._expand(trace, test, deadline)
            run_span.set(
                tests=self.result.tests_run,
                queries=self.result.queries,
                covered=len(self.result.covered),
            )
        self.result.wall_time = (
            self.config.time_budget - max(0.0, deadline - time.monotonic())
        )
        if getattr(self._base_solver, "stats", None) is not self.result.stats:
            # A caching solver whose ``stats`` sink is already our stats
            # object records its hits/misses itself (``record_cache``);
            # the snapshot diff covers every other caching solver.
            self.result.stats.cache_hits += (
                getattr(self._base_solver, "hits", 0) - hits0
            )
            self.result.stats.cache_misses += (
                getattr(self._base_solver, "misses", 0) - misses0
            )
        self.result.stats.record_automata(
            counters_delta(automata0, automata_cache_counters())
        )
        return self.result

    def _execute(self, inputs: Dict[str, str]) -> Trace:
        interpreter = Interpreter(
            self.program, inputs, level=self.config.level
        )
        with obs.span("dse:execute", inputs=len(inputs)) as exec_span:
            trace = interpreter.run()
            exec_span.set(branches=len(trace.branches))
        self.result.tests_run += 1
        self.result.covered |= trace.covered
        self.result.regex_ops += trace.regex_ops
        self.result.concretizations += trace.concretizations
        for failure in trace.failures:
            message = f"{failure} (inputs: {inputs!r})"
            if message not in self.result.failures:
                self.result.failures.append(message)
        return trace

    # -- clause flipping -----------------------------------------------------

    def _expand(
        self, trace: Trace, origin: QueuedTest, deadline: float
    ) -> None:
        branches = trace.branches[: self.config.max_flips_per_trace]
        for i, branch in enumerate(branches):
            if time.monotonic() > deadline:
                return
            signature = self._signature(branches, i)
            if signature in self._explored:
                continue
            self._explored.add(signature)
            model = self._solve_flip(branches, i)
            if model is None:
                continue
            inputs = self._extract_inputs(model, origin.inputs, trace)
            key = tuple(sorted(inputs.items()))
            if key in self._seen_inputs:
                continue
            self._seen_inputs.add(key)
            self._enqueue(
                QueuedTest(
                    inputs=inputs,
                    origin_site=branch.site,
                    generation=origin.generation + 1,
                )
            )

    def _signature(
        self, branches: Sequence[BranchRecord], flip_index: int
    ) -> Tuple:
        prefix = tuple(
            (b.site, b.polarity) for b in branches[:flip_index]
        )
        flip = branches[flip_index]
        return (prefix, flip.site, not flip.polarity)

    def _solve_flip(
        self, branches: Sequence[BranchRecord], flip_index: int
    ):
        clauses: List[Formula] = [
            b.taken for b in branches[:flip_index]
        ]
        clauses.append(branches[flip_index].flipped)
        constraints = []
        for b in branches[:flip_index]:
            constraints.extend(b.taken_constraints)
        constraints.extend(branches[flip_index].flipped_constraints)

        problem = conj(clauses)
        self.result.queries += 1
        with obs.span(
            "dse:flip",
            site=branches[flip_index].site,
            depth=flip_index,
        ) as flip_span:
            if self.config.level == RegexSupportLevel.REFINED:
                solved = self._cegar.solve(problem, constraints)
                flip_span.set(status=solved.status)
                if solved.status != SAT:
                    return None
                self.result.sat_queries += 1
                return solved.model
            # Lower support levels: raw solve, models taken at face
            # value (the paper's pre-refinement behaviour — spurious
            # capture assignments may produce inputs that do not flip
            # the branch).
            started = time.perf_counter()
            raw = self._base_solver.solve(problem)
            self.result.stats.record(
                QueryRecord(
                    seconds=time.perf_counter() - started,
                    status=raw.status,
                    had_regex=bool(constraints),
                    had_captures=any(
                        len(c.captures) > 1 for c in constraints
                    ),
                )
            )
            flip_span.set(status=raw.status)
            if raw.status != SAT:
                return None
            self.result.sat_queries += 1
            return raw.model

    def _extract_inputs(
        self, model, base_inputs: Dict[str, str], trace: Trace
    ) -> Dict[str, str]:
        inputs = dict(base_inputs)
        for var in model.assignment:
            if var.name.startswith("in$"):
                value = model.assignment[var]
                if isinstance(value, str):
                    inputs[var.name[3:]] = value
        return inputs

    def _enqueue(self, test: QueuedTest) -> None:
        self._scheduler.add(test)


def analyze(
    source: str,
    level: RegexSupportLevel = RegexSupportLevel.REFINED,
    max_tests: int = 60,
    time_budget: float = 30.0,
    seed: int = 1909,
    solver_factory: Optional[Callable[..., Solver]] = None,
    backend: Optional[str] = None,
    automata_cache: Optional[str] = None,
) -> EngineResult:
    """One-call analysis of a mini-JS program — the library entry point."""
    config = EngineConfig(
        level=level,
        max_tests=max_tests,
        time_budget=time_budget,
        seed=seed,
        backend=backend,
        automata_cache=automata_cache,
    )
    return DseEngine(source, config, solver_factory=solver_factory).run()
