"""Tokenizer for mini-JS.

Handles the usual JavaScript lexical grammar subset, including the
regex-literal/division ambiguity (resolved the way real engines do: a
``/`` starts a regex literal when the previous significant token cannot
end an expression).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class MiniJsSyntaxError(SyntaxError):
    """Lexing/parsing error in a mini-JS program."""


KEYWORDS = {
    "var", "let", "const", "function", "return", "if", "else", "while",
    "for", "break", "continue", "true", "false", "null", "undefined",
    "new", "typeof", "throw",
}

PUNCTUATION = [
    "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "++",
    "--", "=>", "{", "}", "(", ")", "[", "]", ";", ",", ".", "?", ":",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
]


@dataclass(frozen=True)
class Token:
    kind: str  # ident keyword number string regex punct eof
    value: str
    line: int
    flags: str = ""  # for regex tokens


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)

    def prev_significant() -> Optional[Token]:
        return tokens[-1] if tokens else None

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise MiniJsSyntaxError(f"unterminated comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == "/" and _regex_can_start(prev_significant()):
            token, i = _read_regex(source, i, line)
            tokens.append(token)
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
            tokens.append(Token("number", source[start:i], line))
            continue
        if ch in "'\"":
            value, i, line = _read_string(source, i, line)
            tokens.append(Token("string", value, line))
            continue
        if ch.isalpha() or ch in "_$":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            continue
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line))
                i += len(punct)
                break
        else:
            raise MiniJsSyntaxError(
                f"unexpected character {ch!r} at line {line}"
            )
    tokens.append(Token("eof", "", line))
    return tokens


def _regex_can_start(prev: Optional[Token]) -> bool:
    """A '/' begins a regex literal unless the previous token can end an
    expression (identifier, literal, ')', ']', or a postfix operator)."""
    if prev is None:
        return True
    if prev.kind in ("number", "string", "regex"):
        return False
    if prev.kind == "ident":
        return False
    if prev.kind == "keyword":
        return prev.value not in ("true", "false", "null", "undefined")
    return prev.value not in (")", "]", "++", "--")


def _read_regex(source: str, i: int, line: int):
    start = i
    i += 1  # skip '/'
    in_class = False
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "\n":
            raise MiniJsSyntaxError(f"unterminated regex at line {line}")
        if in_class:
            if ch == "]":
                in_class = False
        elif ch == "[":
            in_class = True
        elif ch == "/":
            break
        i += 1
    if i >= n:
        raise MiniJsSyntaxError(f"unterminated regex at line {line}")
    body = source[start + 1:i]
    i += 1  # skip closing '/'
    flag_start = i
    while i < n and source[i].isalpha():
        i += 1
    flags = source[flag_start:i]
    return Token("regex", body, line, flags=flags), i


_STRING_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "b": "\b", "f": "\f", "v": "\v",
    "0": "\0", "'": "'", '"': '"', "\\": "\\", "/": "/",
}


def _read_string(source: str, i: int, line: int):
    quote = source[i]
    i += 1
    out: List[str] = []
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == quote:
            return "".join(out), i + 1, line
        if ch == "\n":
            raise MiniJsSyntaxError(f"unterminated string at line {line}")
        if ch == "\\":
            if i + 1 >= n:
                break
            esc = source[i + 1]
            if esc == "u" and i + 5 < n:
                out.append(chr(int(source[i + 2:i + 6], 16)))
                i += 6
                continue
            if esc == "x" and i + 3 < n:
                out.append(chr(int(source[i + 2:i + 4], 16)))
                i += 4
                continue
            out.append(_STRING_ESCAPES.get(esc, esc))
            i += 2
            continue
        out.append(ch)
        i += 1
    raise MiniJsSyntaxError(f"unterminated string at line {line}")
