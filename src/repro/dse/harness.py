"""Automatic library harness (§7.3).

ExpoSE explores libraries "fully automatically by executing all exported
methods with symbolic arguments".  This module reproduces that: given a
mini-JS library that assigns to ``module.exports``, it discovers the
exported functions (and their arities) with one concrete run, then
synthesises a driver that invokes each export with fresh symbolic string
arguments.  The combined program (library + driver) is what the engine
analyses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dse.interpreter import Interpreter
from repro.dse.parser import parse_program
from repro.dse.values import JSFunction, JSObject


def discover_exports(source: str) -> List[Tuple[str, int]]:
    """Run the library once; return [(export name, arity)] for function
    exports (non-function exports are ignored, as the paper's harness
    recurses only into callables)."""
    program = parse_program(source)
    trace = Interpreter(program, inputs={}).run()
    exports = trace.exports
    found: List[Tuple[str, int]] = []
    if isinstance(exports, JSFunction):
        found.append(("", len(exports.params)))
    elif isinstance(exports, JSObject):
        for name, value in exports.properties.items():
            if isinstance(value, JSFunction):
                found.append((name, len(value.params)))
    return found


def build_harness(source: str) -> str:
    """Library source + generated driver calling every export with
    symbolic strings."""
    driver_lines: List[str] = []
    for name, arity in discover_exports(source):
        args = ", ".join(
            f'symbol("{name or "fn"}_arg{i}", "")' for i in range(max(arity, 1))
        )
        target = f"module.exports.{name}" if name else "module.exports"
        driver_lines.append(f"{target}({args});")
    if not driver_lines:
        return source
    return source + "\n" + "\n".join(driver_lines) + "\n"
