"""Runtime values for the concolic mini-JS interpreter.

Values follow the *concolic* discipline (Sen et al.'s Jalangi, which
ExpoSE builds on): every value has a concrete JavaScript value, and may
carry a symbolic shadow — a string :class:`~repro.constraints.terms.Term`
for strings, a :class:`~repro.constraints.formulas.Formula` for booleans
derived from string predicates.  Numbers and other types stay concrete
(the paper's evaluation is about string/regex constraints; ExpoSE's
numeric theory is orthogonal).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.constraints import Formula, StrVar, Term


class JSUndefined:
    """The JavaScript ``undefined`` value (singleton)."""

    _instance: Optional["JSUndefined"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = JSUndefined()


@dataclass
class Concolic:
    """A concrete value paired with an optional symbolic shadow.

    ``term`` shadows string values; ``formula`` shadows boolean values.
    A value with neither is simply concrete.
    """

    concrete: object
    term: Optional[Term] = None
    formula: Optional[Formula] = None

    @property
    def is_symbolic(self) -> bool:
        return self.term is not None or self.formula is not None


def concrete_of(value: object) -> object:
    return value.concrete if isinstance(value, Concolic) else value


def term_of(value: object) -> Optional[Term]:
    return value.term if isinstance(value, Concolic) else None


def formula_of(value: object) -> Optional[Formula]:
    return value.formula if isinstance(value, Concolic) else None


class JSObject:
    """A mutable property map (mini-JS object)."""

    def __init__(self, properties: Optional[Dict[str, object]] = None):
        self.properties: Dict[str, object] = dict(properties or {})

    def get(self, name: str) -> object:
        return self.properties.get(name, UNDEFINED)

    def set(self, name: str, value: object) -> None:
        self.properties[name] = value

    def __repr__(self) -> str:
        return f"JSObject({self.properties!r})"


class JSArray(JSObject):
    """A JavaScript array: indexed elements plus a length property."""

    def __init__(self, elements: Optional[List[object]] = None):
        super().__init__()
        self.elements: List[object] = list(elements or [])

    def get(self, name: str) -> object:
        if name == "length":
            return len(self.elements)
        return super().get(name)

    def get_index(self, index: int) -> object:
        if 0 <= index < len(self.elements):
            return self.elements[index]
        return UNDEFINED

    def set_index(self, index: int, value: object) -> None:
        while len(self.elements) <= index:
            self.elements.append(UNDEFINED)
        self.elements[index] = value

    def __repr__(self) -> str:
        return f"JSArray({self.elements!r})"


@dataclass
class JSFunction:
    """A mini-JS closure."""

    name: str
    params: List[str]
    body: object  # js.Block
    env: object  # Environment

    def __repr__(self) -> str:
        return f"function {self.name or '(anonymous)'}({', '.join(self.params)})"


@dataclass
class NativeFunction:
    """A builtin implemented in Python."""

    name: str
    fn: Callable

    def __repr__(self) -> str:
        return f"native {self.name}"


class Environment:
    """Lexical scope chain."""

    def __init__(self, parent: Optional["Environment"] = None):
        self.parent = parent
        self.bindings: Dict[str, object] = {}

    def declare(self, name: str, value: object) -> None:
        self.bindings[name] = value

    def lookup(self, name: str) -> object:
        scope = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        raise NameError(f"{name} is not defined")

    def assign(self, name: str, value: object) -> None:
        scope = self
        while scope is not None:
            if name in scope.bindings:
                scope.bindings[name] = value
                return
            scope = scope.parent
        # Implicit global, like non-strict JS.
        self.bindings[name] = value


_symbol_ids = itertools.count()


def fresh_symbol(name: str) -> StrVar:
    """A fresh solver variable for one symbolic program input."""
    return StrVar(f"{name}#{next(_symbol_ids)}")
