"""Mini-JS dynamic symbolic execution engine (the ExpoSE stand-in).

- :mod:`repro.dse.lexer` / :mod:`repro.dse.parser` — the JS-subset front
  end (with regex-literal handling);
- :mod:`repro.dse.interpreter` — concolic execution with symbolic
  strings and Algorithm 2 regex fork points;
- :mod:`repro.dse.engine` — generational search with clause flipping and
  CEGAR-backed query solving;
- :mod:`repro.dse.strategy` — the CUPA-style scheduler (§6.2);
- :mod:`repro.dse.harness` — the automatic library harness (§7.3).
"""

from repro.dse.engine import DseEngine, EngineConfig, EngineResult, analyze
from repro.dse.harness import build_harness, discover_exports
from repro.dse.interpreter import Interpreter, RegexSupportLevel, Trace
from repro.dse.parser import parse_program
from repro.dse.replay import replay, replay_failures, export_test_suite

__all__ = [
    "DseEngine",
    "EngineConfig",
    "EngineResult",
    "Interpreter",
    "RegexSupportLevel",
    "Trace",
    "analyze",
    "build_harness",
    "discover_exports",
    "export_test_suite",
    "parse_program",
    "replay",
    "replay_failures",
]
