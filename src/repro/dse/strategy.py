"""Test-case scheduling — the CUPA-style strategy of §6.2.

Queued test cases are sorted into buckets keyed by the program point
(branch site) whose flipping created them; the scheduler draws from the
least-recently-accessed bucket and picks a (seeded-)random element inside
it.  This prioritises inputs born at rarely-explored expressions, exactly
as the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class QueuedTest:
    """A generated input assignment waiting to be executed."""

    inputs: Dict[str, str]
    origin_site: int
    generation: int = 0


class CupaScheduler:
    """Bucketed scheduler: least-accessed bucket first, random within."""

    def __init__(self, seed: int = 1909):
        self._buckets: Dict[int, List[QueuedTest]] = {}
        self._access_counts: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self._size = 0

    def add(self, test: QueuedTest) -> None:
        self._buckets.setdefault(test.origin_site, []).append(test)
        self._access_counts.setdefault(test.origin_site, 0)
        self._size += 1

    def pop(self) -> Optional[QueuedTest]:
        candidates = [
            site for site, bucket in self._buckets.items() if bucket
        ]
        if not candidates:
            return None
        site = min(candidates, key=lambda s: (self._access_counts[s], s))
        self._access_counts[site] += 1
        bucket = self._buckets[site]
        index = self._rng.randrange(len(bucket))
        test = bucket.pop(index)
        self._size -= 1
        return test

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
