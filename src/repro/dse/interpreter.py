"""Concolic interpreter for mini-JS (the ExpoSE/Jalangi2 stand-in).

Executes one concrete path while building the symbolic path condition:
every branch on a symbolic condition is recorded as a
:class:`BranchRecord` carrying the constraint of the branch taken *and*
of the alternative, so the engine (generational search, §6.2) can flip
clauses and query the CEGAR solver for new inputs.

Regex calls are fork points: ``test``/``exec``/``match``/``split``/
``replace``/``search`` on a symbolic string record a branch whose two
sides are the capturing-language membership and non-membership models of
Algorithm 2 — this is the integration the paper describes in §3.2/§6.1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.constraints import (
    Eq,
    Formula,
    StrConst,
    StrVar,
    Term,
    concat as concat_terms,
    neg,
)
from repro.dse import astnodes as js
from repro.dse.values import (
    Concolic,
    Environment,
    JSArray,
    JSFunction,
    JSObject,
    JSUndefined,
    NativeFunction,
    UNDEFINED,
    concrete_of,
    formula_of,
    term_of,
)
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CapturingConstraint


class RegexSupportLevel(Enum):
    """The four support levels of the Table 7 breakdown."""

    CONCRETE = 0  # concretize all regex operations (baseline)
    MODEL = 1  # + model regexes (no capture variables)
    CAPTURES = 2  # + symbolic captures & backreferences
    REFINED = 3  # + CEGAR refinement (full system)


@dataclass
class BranchRecord:
    """One symbolic branch: the clause taken and its negation.

    ``polarity`` is the concrete outcome (condition truthy / regex
    matched); the engine's path signatures need it to distinguish the two
    directions of the same program point."""

    site: int
    taken: Formula
    flipped: Formula
    polarity: bool = True
    taken_constraints: Tuple[CapturingConstraint, ...] = ()
    flipped_constraints: Tuple[CapturingConstraint, ...] = ()


@dataclass
class Trace:
    """The observable outcome of one concrete-plus-symbolic execution."""

    branches: List[BranchRecord] = field(default_factory=list)
    covered: set = field(default_factory=set)
    failures: List[str] = field(default_factory=list)
    error: Optional[str] = None
    concretizations: int = 0
    regex_ops: int = 0
    exports: Optional[object] = None


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class JSException(Exception):
    def __init__(self, value):
        self.value = value
        super().__init__(str(concrete_of(value)))


class JSRegExpValue:
    """A runtime RegExp object: concrete matcher + symbolic model."""

    def __init__(self, source: str, flags: str):
        self.symbolic = SymbolicRegExp(source, flags)

    @property
    def last_index(self) -> int:
        return self.symbolic.last_index

    @last_index.setter
    def last_index(self, value: int) -> None:
        self.symbolic.last_index = value


_LOOP_LIMIT = 10_000


class Interpreter:
    """Executes one program on one concrete input assignment."""

    def __init__(
        self,
        program: js.Program,
        inputs: Optional[Dict[str, str]] = None,
        level: RegexSupportLevel = RegexSupportLevel.REFINED,
        max_steps: int = 200_000,
    ):
        self.program = program
        self.inputs = dict(inputs or {})
        self.level = level
        self.max_steps = max_steps
        self.trace = Trace()
        self.globals = Environment()
        self.steps = 0
        self._site_ids: Dict[int, int] = {}
        self._site_counter = itertools.count(10_000_000)
        self._symbol_vars: Dict[str, StrVar] = {}
        self._install_globals()

    # -- public ------------------------------------------------------------

    def run(self) -> Trace:
        try:
            self._exec_block_body(self.program.body, self.globals)
        except JSException as exc:
            self.trace.error = f"uncaught exception: {exc}"
        except _AssertionFailure as failure:
            self.trace.failures.append(str(failure))
        except RecursionError:
            self.trace.error = "recursion limit"
        except _StepLimit:
            self.trace.error = "step limit"
        module = self.globals.lookup("module")
        if isinstance(module, JSObject):
            self.trace.exports = module.get("exports")
        return self.trace

    def symbol_var(self, name: str) -> StrVar:
        """The solver variable backing one symbolic input."""
        if name not in self._symbol_vars:
            self._symbol_vars[name] = StrVar(f"in${name}")
        return self._symbol_vars[name]

    # -- environment --------------------------------------------------------

    def _install_globals(self) -> None:
        env = self.globals
        env.declare("module", JSObject({"exports": JSObject()}))
        env.declare("undefined", UNDEFINED)
        env.declare(
            "symbol",
            NativeFunction("symbol", self._builtin_symbol),
        )
        env.declare(
            "assert",
            NativeFunction("assert", self._builtin_assert),
        )
        env.declare(
            "console",
            JSObject({"log": NativeFunction("log", lambda *args: UNDEFINED)}),
        )
        env.declare(
            "RegExp",
            NativeFunction("RegExp", self._builtin_regexp),
        )
        env.declare(
            "String",
            NativeFunction(
                "String", lambda v=UNDEFINED: str(_to_js_string(v))
            ),
        )
        env.declare(
            "parseInt",
            NativeFunction("parseInt", self._builtin_parse_int),
        )
        env.declare(
            "Math",
            JSObject(
                {
                    "floor": NativeFunction(
                        "floor", lambda v=0: float(int(concrete_of(v)))
                    ),
                    "max": NativeFunction(
                        "max",
                        lambda *vs: max(concrete_of(v) for v in vs),
                    ),
                    "min": NativeFunction(
                        "min",
                        lambda *vs: min(concrete_of(v) for v in vs),
                    ),
                }
            ),
        )

    def _builtin_symbol(self, name=UNDEFINED, default=UNDEFINED):
        concrete_name = str(concrete_of(name))
        if concrete_name in self.inputs:
            concrete = self.inputs[concrete_name]
        elif not isinstance(default, JSUndefined):
            concrete = str(concrete_of(default))
        else:
            concrete = ""
        self.inputs.setdefault(concrete_name, concrete)
        return Concolic(concrete, term=self.symbol_var(concrete_name))

    def _builtin_assert(self, condition=UNDEFINED, message=UNDEFINED):
        self._branch_on(condition, site=-1)
        if not _truthy(concrete_of(condition)):
            text = (
                str(concrete_of(message))
                if not isinstance(message, JSUndefined)
                else "assertion failed"
            )
            raise _AssertionFailure(text)
        return UNDEFINED

    def _builtin_regexp(self, source=UNDEFINED, flags=UNDEFINED):
        src = str(concrete_of(source))
        flg = "" if isinstance(flags, JSUndefined) else str(concrete_of(flags))
        if term_of(source) is not None:
            self.trace.concretizations += 1  # symbolic pattern: concretize
        return JSRegExpValue(src, flg)

    def _builtin_parse_int(self, value=UNDEFINED, base=UNDEFINED):
        if term_of(value) is not None:
            self.trace.concretizations += 1
        text = str(concrete_of(value)).strip()
        digits = ""
        for i, ch in enumerate(text):
            if ch.isdigit() or (i == 0 and ch in "+-"):
                digits += ch
            else:
                break
        try:
            return float(int(digits))
        except ValueError:
            return float("nan")

    # -- statement execution ---------------------------------------------------

    def _exec_block_body(self, body: List[js.Statement], env: Environment):
        # Hoist function declarations, as JavaScript does.
        for stmt in body:
            if isinstance(stmt, js.FunctionDecl):
                env.declare(
                    stmt.name,
                    JSFunction(stmt.name, stmt.params, stmt.body, env),
                )
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt: js.Statement, env: Environment) -> None:
        self._tick()
        self.trace.covered.add(stmt.sid)
        if isinstance(stmt, js.ExprStatement):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, js.VarDecl):
            value = (
                self._eval(stmt.init, env)
                if stmt.init is not None
                else UNDEFINED
            )
            env.declare(stmt.name, value)
        elif isinstance(stmt, js.Block):
            self._exec_block_body(stmt.body, Environment(env))
        elif isinstance(stmt, js.If):
            condition = self._eval(stmt.test, env)
            self._branch_on(condition, stmt.sid)
            if _truthy(concrete_of(condition)):
                self._exec(stmt.then, env)
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise, env)
        elif isinstance(stmt, js.While):
            iterations = 0
            while True:
                condition = self._eval(stmt.test, env)
                self._branch_on(condition, stmt.sid)
                if not _truthy(concrete_of(condition)):
                    break
                iterations += 1
                if iterations > _LOOP_LIMIT:
                    raise _StepLimit()
                try:
                    self._exec(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, js.For):
            loop_env = Environment(env)
            if stmt.init is not None:
                self._exec(stmt.init, loop_env)
            iterations = 0
            while True:
                if stmt.test is not None:
                    condition = self._eval(stmt.test, loop_env)
                    self._branch_on(condition, stmt.sid)
                    if not _truthy(concrete_of(condition)):
                        break
                iterations += 1
                if iterations > _LOOP_LIMIT:
                    raise _StepLimit()
                try:
                    self._exec(stmt.body, loop_env)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.update is not None:
                    self._eval(stmt.update, loop_env)
        elif isinstance(stmt, js.Return):
            value = (
                self._eval(stmt.value, env)
                if stmt.value is not None
                else UNDEFINED
            )
            raise _Return(value)
        elif isinstance(stmt, js.Break):
            raise _Break()
        elif isinstance(stmt, js.Continue):
            raise _Continue()
        elif isinstance(stmt, js.FunctionDecl):
            pass  # hoisted
        elif isinstance(stmt, js.Throw):
            raise JSException(self._eval(stmt.value, env))
        else:
            raise TypeError(f"cannot execute {stmt!r}")

    # -- expression evaluation ----------------------------------------------------

    def _eval(self, expr: js.Node, env: Environment):
        self._tick()
        method = self._EVAL[type(expr)]
        return method(self, expr, env)

    def _eval_literal(self, expr: js.Literal, env):
        return expr.value

    def _eval_undefined(self, expr, env):
        return UNDEFINED

    def _eval_regex(self, expr: js.RegexLiteral, env):
        return JSRegExpValue(expr.source, expr.flags)

    def _eval_identifier(self, expr: js.Identifier, env):
        return env.lookup(expr.name)

    def _eval_array(self, expr: js.ArrayLiteral, env):
        return JSArray([self._eval(el, env) for el in expr.elements])

    def _eval_object(self, expr: js.ObjectLiteral, env):
        obj = JSObject()
        for key, value in expr.entries:
            obj.set(key, self._eval(value, env))
        return obj

    def _eval_function(self, expr: js.FunctionExpr, env):
        return JSFunction(expr.name or "", expr.params, expr.body, env)

    def _eval_unary(self, expr: js.Unary, env):
        operand = self._eval(expr.operand, env)
        if expr.op == "!":
            phi = formula_of(operand)
            result = not _truthy(concrete_of(operand))
            if phi is not None:
                return Concolic(result, formula=neg(phi))
            return result
        if expr.op == "-":
            return -_to_number(operand, self)
        if expr.op == "typeof":
            return _js_typeof(operand)
        raise TypeError(f"unknown unary {expr.op}")

    def _eval_binary(self, expr: js.Binary, env):
        if expr.op in ("&&", "||"):
            left = self._eval(expr.left, env)
            self._branch_on(left, self._site(expr))
            left_truthy = _truthy(concrete_of(left))
            if expr.op == "&&":
                return self._eval(expr.right, env) if left_truthy else left
            return left if left_truthy else self._eval(expr.right, env)

        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return self._binary_value(expr.op, left, right)

    def _binary_value(self, op: str, left, right):
        lc, rc = concrete_of(left), concrete_of(right)
        if op == "+":
            if isinstance(lc, str) or isinstance(rc, str):
                ls, rs = _to_js_string(left), _to_js_string(right)
                result = ls + rs
                lt, rt = term_of(left), term_of(right)
                if (lt is not None or rt is not None) and isinstance(
                    lc, str
                ) and isinstance(rc, str):
                    term = concat_terms(
                        lt if lt is not None else StrConst(ls),
                        rt if rt is not None else StrConst(rs),
                    )
                    return Concolic(result, term=term)
                if lt is not None or rt is not None:
                    self.trace.concretizations += 1
                return result
            return _to_number(left, self) + _to_number(right, self)
        if op in ("===", "==", "!==", "!="):
            equal = _strict_equal(lc, rc)
            result = equal if op in ("===", "==") else not equal
            lt, rt = term_of(left), term_of(right)
            if isinstance(lc, (str, JSUndefined)) and isinstance(
                rc, (str, JSUndefined)
            ) and (lt is not None or rt is not None):
                phi = Eq(_as_term(left), _as_term(right))
                if op in ("!==", "!="):
                    phi = neg(phi)
                return Concolic(result, formula=phi)
            return result
        if op in ("<", "<=", ">", ">="):
            if isinstance(lc, str) and isinstance(rc, str):
                if term_of(left) is not None or term_of(right) is not None:
                    self.trace.concretizations += 1
                table = {
                    "<": lc < rc, "<=": lc <= rc,
                    ">": lc > rc, ">=": lc >= rc,
                }
                return table[op]
            ln, rn = _to_number(left, self), _to_number(right, self)
            table = {
                "<": ln < rn, "<=": ln <= rn, ">": ln > rn, ">=": ln >= rn,
            }
            return table[op]
        if op in ("-", "*", "/", "%"):
            ln, rn = _to_number(left, self), _to_number(right, self)
            if op == "-":
                return ln - rn
            if op == "*":
                return ln * rn
            if op == "/":
                return ln / rn if rn != 0 else float("inf")
            return ln % rn if rn != 0 else float("nan")
        raise TypeError(f"unknown operator {op}")

    def _eval_conditional(self, expr: js.Conditional, env):
        condition = self._eval(expr.test, env)
        self._branch_on(condition, self._site(expr))
        if _truthy(concrete_of(condition)):
            return self._eval(expr.then, env)
        return self._eval(expr.otherwise, env)

    def _eval_assign(self, expr: js.Assign, env):
        value = self._eval(expr.value, env)
        if expr.op in ("+=", "-="):
            current = self._eval(expr.target, env)
            op = "+" if expr.op == "+=" else "-"
            value = self._binary_value(op, current, value)
        target = expr.target
        if isinstance(target, js.Identifier):
            env.assign(target.name, value)
        elif isinstance(target, js.Member):
            obj = self._eval(target.obj, env)
            self._set_member(obj, target.name, value)
        elif isinstance(target, js.Index):
            obj = self._eval(target.obj, env)
            index = self._eval(target.index, env)
            self._set_index(obj, index, value)
        return value

    def _set_member(self, obj, name: str, value) -> None:
        if isinstance(obj, JSRegExpValue) and name == "lastIndex":
            obj.last_index = int(concrete_of(value))
        elif isinstance(obj, JSObject):
            obj.set(name, value)
        else:
            raise JSException(f"cannot set property {name}")

    def _set_index(self, obj, index, value) -> None:
        idx = concrete_of(index)
        if isinstance(obj, JSArray) and isinstance(idx, (int, float)):
            obj.set_index(int(idx), value)
        elif isinstance(obj, JSObject):
            obj.set(str(idx), value)
        else:
            raise JSException("cannot index-assign")

    def _eval_call(self, expr: js.Call, env):
        # Method call: evaluate receiver once.
        if isinstance(expr.callee, js.Member):
            receiver = self._eval(expr.callee.obj, env)
            args = [self._eval(a, env) for a in expr.args]
            return self._invoke_method(
                receiver, expr.callee.name, args, expr
            )
        callee = self._eval(expr.callee, env)
        args = [self._eval(a, env) for a in expr.args]
        return self._invoke(callee, args)

    def _eval_new(self, expr: js.New, env):
        callee = self._eval(expr.callee, env)
        args = [self._eval(a, env) for a in expr.args]
        if isinstance(callee, NativeFunction) and callee.name == "RegExp":
            return callee.fn(*args)
        return self._invoke(callee, args)

    def _eval_member(self, expr: js.Member, env):
        obj = self._eval(expr.obj, env)
        return self._get_member(obj, expr.name, expr)

    def _eval_index(self, expr: js.Index, env):
        obj = self._eval(expr.obj, env)
        index = self._eval(expr.index, env)
        idx = concrete_of(index)
        if isinstance(obj, JSArray) and isinstance(idx, (int, float)):
            return obj.get_index(int(idx))
        if isinstance(obj, JSObject):
            return obj.get(str(idx))
        base = concrete_of(obj)
        if isinstance(base, str) and isinstance(idx, (int, float)):
            if term_of(obj) is not None:
                self.trace.concretizations += 1
            i = int(idx)
            return base[i] if 0 <= i < len(base) else UNDEFINED
        raise JSException("cannot index value")

    # -- member/method semantics -----------------------------------------------------

    def _get_member(self, obj, name: str, expr):
        base = concrete_of(obj)
        if isinstance(base, str):
            if name == "length":
                if term_of(obj) is not None:
                    self.trace.concretizations += 1
                return float(len(base))
            return _BoundStringMethod(self, obj, name)
        if isinstance(obj, JSRegExpValue):
            if name == "lastIndex":
                return float(obj.last_index)
            if name == "source":
                return obj.symbolic.source
            return _BoundRegexMethod(self, obj, name)
        if isinstance(obj, JSArray) and name in (
            "push", "pop", "join", "indexOf", "slice",
        ):
            return _BoundArrayMethod(self, obj, name)
        if isinstance(obj, JSObject):
            return obj.get(name)
        if isinstance(base, JSUndefined):
            raise JSException(
                f"cannot read property {name!r} of undefined"
            )
        raise JSException(f"no property {name!r}")

    def _invoke(self, callee, args):
        if isinstance(callee, NativeFunction):
            return callee.fn(*args)
        if isinstance(callee, (_BoundStringMethod, _BoundRegexMethod,
                               _BoundArrayMethod)):
            return callee(*args)
        if isinstance(callee, JSFunction):
            env = Environment(callee.env)
            for i, param in enumerate(callee.params):
                env.declare(param, args[i] if i < len(args) else UNDEFINED)
            env.declare("arguments", JSArray(list(args)))
            # The body block is executed inline (its own statement id
            # still counts as covered).
            self.trace.covered.add(callee.body.sid)
            try:
                self._exec_block_body(callee.body.body, env)
            except _Return as ret:
                return ret.value
            return UNDEFINED
        raise JSException(f"{callee!r} is not a function")

    def _invoke_method(self, receiver, name, args, expr):
        member = self._get_member(receiver, name, expr)
        if isinstance(member, (_BoundStringMethod, _BoundRegexMethod,
                               _BoundArrayMethod)):
            return member(*args, site=self._site(expr))
        return self._invoke(member, args)

    # -- symbolic branching -------------------------------------------------------------

    def _branch_on(self, condition, site: int) -> None:
        """Record a symbolic branch if the condition carries a formula.

        A symbolic *string* used as a condition branches on JavaScript
        truthiness: truthy iff neither empty nor undefined."""
        phi = formula_of(condition)
        if phi is None:
            term = term_of(condition)
            if term is None:
                return
            from repro.constraints import Undef, conj as conj_

            phi = conj_(
                [neg(Eq(term, StrConst(""))), neg(Eq(term, Undef()))]
            )
        taken = _truthy(concrete_of(condition))
        self.trace.branches.append(
            BranchRecord(
                site=site,
                taken=phi if taken else neg(phi),
                flipped=neg(phi) if taken else phi,
                polarity=taken,
            )
        )

    def record_regex_branch(
        self,
        site: int,
        matched: bool,
        exec_model,
    ) -> None:
        """Record the fork of a regex operation (§3.2's Lc clauses)."""
        match_side = (
            exec_model.match_formula,
            (exec_model.constraint,),
        )
        fail_side = (
            exec_model.no_match_formula,
            (exec_model.negative_constraint,),
        )
        taken, taken_cons = match_side if matched else fail_side
        flipped, flipped_cons = fail_side if matched else match_side
        self.trace.branches.append(
            BranchRecord(
                site=site,
                taken=taken,
                flipped=flipped,
                polarity=matched,
                taken_constraints=taken_cons,
                flipped_constraints=flipped_cons,
            )
        )

    def _site(self, expr) -> int:
        key = id(expr)
        if key not in self._site_ids:
            self._site_ids[key] = next(self._site_counter)
        return self._site_ids[key]

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise _StepLimit()

    _EVAL = {
        js.Literal: _eval_literal,
        js.Undefined: _eval_undefined,
        js.RegexLiteral: _eval_regex,
        js.Identifier: _eval_identifier,
        js.ArrayLiteral: _eval_array,
        js.ObjectLiteral: _eval_object,
        js.FunctionExpr: _eval_function,
        js.Unary: _eval_unary,
        js.Binary: _eval_binary,
        js.Conditional: _eval_conditional,
        js.Assign: _eval_assign,
        js.Call: _eval_call,
        js.New: _eval_new,
        js.Member: _eval_member,
        js.Index: _eval_index,
    }


class _AssertionFailure(Exception):
    pass


class _StepLimit(Exception):
    pass


# -- bound methods ------------------------------------------------------------


class _BoundRegexMethod:
    """``regexp.test`` / ``regexp.exec`` with symbolic semantics (§6.1)."""

    def __init__(self, interp: Interpreter, regexp: JSRegExpValue, name: str):
        self.interp = interp
        self.regexp = regexp
        self.name = name

    def __call__(self, subject=UNDEFINED, site: int = -1):
        interp = self.interp
        if self.name not in ("test", "exec"):
            raise JSException(f"RegExp has no method {self.name!r}")
        interp.trace.regex_ops += 1
        subject_term = term_of(subject)
        subject_str = _to_js_string(subject)
        offset = self.regexp.last_index if (
            self.regexp.symbolic.flags.sticky
            or self.regexp.symbolic.flags.global_
        ) else 0
        concrete = self.regexp.symbolic.exec(subject_str)

        symbolic_ok = (
            subject_term is not None
            and interp.level != RegexSupportLevel.CONCRETE
            and offset == 0  # nonzero offsets concretize (see DESIGN.md)
        )
        if not symbolic_ok:
            if subject_term is not None:
                interp.trace.concretizations += 1
            return self._concrete_result(concrete)

        model = self.regexp.symbolic.exec_model(subject_term, offset)
        interp.record_regex_branch(site, concrete is not None, model)
        if concrete is None:
            return False if self.name == "test" else UNDEFINED
        if self.name == "test":
            return True
        return self._symbolic_exec_array(concrete, model)

    def _concrete_result(self, concrete):
        if self.name == "test":
            return concrete is not None
        if concrete is None:
            return UNDEFINED
        return _exec_array(concrete, symbolic_caps=None)

    def _symbolic_exec_array(self, concrete, model):
        with_captures = self.interp.level in (
            RegexSupportLevel.CAPTURES,
            RegexSupportLevel.REFINED,
        )
        caps = model.captures if with_captures else None
        return _exec_array(concrete, symbolic_caps=caps)


def _exec_array(concrete, symbolic_caps):
    array = JSArray()
    for i, value in enumerate(concrete):
        if value is None:
            element = UNDEFINED
        else:
            element = value
        if symbolic_caps is not None and i in symbolic_caps:
            element = Concolic(
                UNDEFINED if value is None else value,
                term=symbolic_caps[i],
            )
        array.elements.append(element)
    array.set("index", float(concrete.index))
    array.set("input", concrete.input)
    return array


class _BoundStringMethod:
    """String prototype methods; regex-accepting ones fork symbolically."""

    def __init__(self, interp: Interpreter, value, name: str):
        self.interp = interp
        self.value = value
        self.name = name

    def __call__(self, *args, site: int = -1):
        interp = self.interp
        base = _to_js_string(self.value)
        term = term_of(self.value)
        name = self.name

        if name in ("match", "search", "split", "replace") and args and (
            isinstance(args[0], JSRegExpValue)
        ):
            return self._regex_method(base, term, args, site)

        # Pure-string methods: symbolic concatenation stays symbolic,
        # everything else concretizes (with accounting).
        if name == "concat":
            result = self.value
            for arg in args:
                result = interp._binary_value("+", result, arg)
            return result
        if term is not None:
            interp.trace.concretizations += 1
        str_args = [concrete_of(a) for a in args]
        if name == "indexOf":
            return float(base.find(str(str_args[0]) if str_args else ""))
        if name == "charAt":
            i = int(str_args[0]) if str_args else 0
            return base[i] if 0 <= i < len(base) else ""
        if name == "charCodeAt":
            i = int(str_args[0]) if str_args else 0
            return float(ord(base[i])) if 0 <= i < len(base) else float("nan")
        if name in ("slice", "substring"):
            start = int(str_args[0]) if str_args else 0
            end = int(str_args[1]) if len(str_args) > 1 else len(base)
            if name == "substring":
                start, end = max(0, start), max(0, end)
                if start > end:
                    start, end = end, start
            return base[start:end]
        if name == "toLowerCase":
            return base.lower()
        if name == "toUpperCase":
            return base.upper()
        if name == "trim":
            return base.strip()
        if name == "split":
            sep = str(str_args[0]) if str_args else None
            parts = base.split(sep) if sep else [base]
            return JSArray(list(parts))
        if name == "replace":
            if len(str_args) >= 2:
                return base.replace(str(str_args[0]), str(str_args[1]), 1)
            return base
        if name == "startsWith":
            return base.startswith(str(str_args[0]) if str_args else "")
        if name == "endsWith":
            return base.endswith(str(str_args[0]) if str_args else "")
        if name == "includes":
            return (str(str_args[0]) if str_args else "") in base
        if name == "repeat":
            return base * int(str_args[0] if str_args else 0)
        if name == "toString":
            return base
        raise JSException(f"string has no method {name!r}")

    def _regex_method(self, base, term, args, site):
        """match/search/split/replace with a regex: fork on match, then
        concretize the structural result (partial models, §6.1)."""
        interp = self.interp
        regexp: JSRegExpValue = args[0]
        interp.trace.regex_ops += 1
        concrete = regexp.symbolic.exec(base)
        if term is not None and interp.level != RegexSupportLevel.CONCRETE:
            model = regexp.symbolic.exec_model(term, 0)
            interp.record_regex_branch(site, concrete is not None, model)
            symbolic_caps = (
                model.captures
                if interp.level
                in (RegexSupportLevel.CAPTURES, RegexSupportLevel.REFINED)
                else None
            )
        else:
            if term is not None:
                interp.trace.concretizations += 1
            symbolic_caps = None

        from repro.regex import methods as regex_methods

        name = self.name
        fresh = regexp.symbolic.concrete  # stateless concrete twin
        if name == "match":
            if not fresh.flags.global_:
                if concrete is None:
                    return None
                return _exec_array(concrete, symbolic_caps)
            result = regex_methods.match(fresh, base)
            return None if result is None else JSArray(list(result))
        if name == "search":
            return float(regex_methods.search(fresh, base))
        if name == "split":
            limit = (
                int(concrete_of(args[1])) if len(args) > 1 else None
            )
            parts = regex_methods.split(fresh, base, limit)
            return JSArray(
                [UNDEFINED if p is None else p for p in parts]
            )
        if name == "replace":
            replacement = str(concrete_of(args[1])) if len(args) > 1 else ""
            return regex_methods.replace(fresh, base, replacement)
        raise JSException(f"unsupported regex method {name!r}")


class _BoundArrayMethod:
    def __init__(self, interp: Interpreter, array: JSArray, name: str):
        self.interp = interp
        self.array = array
        self.name = name

    def __call__(self, *args, site: int = -1):
        if self.name == "push":
            self.array.elements.extend(args)
            return float(len(self.array.elements))
        if self.name == "pop":
            return self.array.elements.pop() if self.array.elements \
                else UNDEFINED
        if self.name == "join":
            sep = str(concrete_of(args[0])) if args else ","
            return sep.join(
                _to_js_string(el) for el in self.array.elements
            )
        if self.name == "indexOf":
            target = concrete_of(args[0]) if args else UNDEFINED
            for i, el in enumerate(self.array.elements):
                if _strict_equal(concrete_of(el), target):
                    return float(i)
            return -1.0
        if self.name == "slice":
            start = int(concrete_of(args[0])) if args else 0
            end = int(concrete_of(args[1])) if len(args) > 1 \
                else len(self.array.elements)
            return JSArray(self.array.elements[start:end])
        raise JSException(f"array has no method {self.name!r}")


# -- JS semantics helpers ------------------------------------------------------


def _js_typeof(value) -> str:
    base = concrete_of(value)
    if isinstance(base, JSUndefined):
        return "undefined"
    if isinstance(base, bool):
        return "boolean"
    if isinstance(base, (int, float)):
        return "number"
    if isinstance(base, str):
        return "string"
    if isinstance(base, (JSFunction, NativeFunction)):
        return "function"
    return "object"  # null, objects, arrays, regexes


def _truthy(value) -> bool:
    if isinstance(value, JSUndefined) or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and value == value  # NaN is falsy
    if isinstance(value, str):
        return value != ""
    return True  # objects, arrays, functions, regexes


def _strict_equal(a, b) -> bool:
    if isinstance(a, JSUndefined) and isinstance(b, JSUndefined):
        return True
    if isinstance(a, JSUndefined) or isinstance(b, JSUndefined):
        return False
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    if type(a) is type(b) or (isinstance(a, str) and isinstance(b, str)):
        return a == b
    return a is b


def _to_js_string(value) -> str:
    base = concrete_of(value)
    if isinstance(base, str):
        return base
    if isinstance(base, bool):
        return "true" if base else "false"
    if isinstance(base, (int, float)):
        if isinstance(base, float) and base.is_integer():
            return str(int(base))
        return str(base)
    if isinstance(base, JSUndefined):
        return "undefined"
    if base is None:
        return "null"
    if isinstance(base, JSArray):
        return ",".join(_to_js_string(el) for el in base.elements)
    return str(base)


def _to_number(value, interp: Optional[Interpreter] = None) -> float:
    base = concrete_of(value)
    if isinstance(base, bool):
        return 1.0 if base else 0.0
    if isinstance(base, (int, float)):
        return float(base)
    if isinstance(base, str):
        if interp is not None and term_of(value) is not None:
            interp.trace.concretizations += 1
        try:
            return float(base) if base.strip() else 0.0
        except ValueError:
            return float("nan")
    if base is None:
        return 0.0
    return float("nan")


def _as_term(value) -> Term:
    term = term_of(value)
    if term is not None:
        return term
    base = concrete_of(value)
    if isinstance(base, JSUndefined):
        from repro.constraints import Undef

        return Undef()
    return StrConst(_to_js_string(value))
