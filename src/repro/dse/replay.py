"""Replaying generated test cases — deterministic re-execution.

DSE's value is the *inputs* it leaves behind: each discovered failure or
coverage point can be replayed concretely without any symbolic machinery.
This module turns an :class:`~repro.dse.engine.EngineResult`'s failures
back into runnable reproductions and supports exporting a generated test
suite, which is how ExpoSE's users consume its output.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dse.astnodes import Program
from repro.dse.interpreter import Interpreter, RegexSupportLevel, Trace
from repro.dse.parser import parse_program

_INPUTS_RE = re.compile(r"\(inputs: (\{.*\})\)\s*$")


@dataclass
class ReplayResult:
    inputs: Dict[str, str]
    failures: List[str]
    error: Optional[str]
    covered: int

    @property
    def reproduced(self) -> bool:
        return bool(self.failures) or self.error is not None


def inputs_of_failure(failure: str) -> Optional[Dict[str, str]]:
    """Parse the input assignment out of a recorded failure message."""
    found = _INPUTS_RE.search(failure)
    if not found:
        return None
    try:
        literal = found.group(1).replace("'", '"')
        return json.loads(literal)
    except json.JSONDecodeError:
        return None


def replay(
    source: str | Program,
    inputs: Dict[str, str],
) -> ReplayResult:
    """Concretely re-execute the program on one input assignment.

    Replay runs at the CONCRETE support level: no solver, no models —
    exactly what a plain test harness would do with the generated input.
    """
    program = source if isinstance(source, Program) else parse_program(source)
    trace = Interpreter(
        program, dict(inputs), level=RegexSupportLevel.CONCRETE
    ).run()
    return ReplayResult(
        inputs=dict(inputs),
        failures=list(trace.failures),
        error=trace.error,
        covered=len(trace.covered),
    )


def replay_failures(source: str | Program, failures: List[str]) -> List[ReplayResult]:
    """Replay every failure recorded by an engine run; each must still
    reproduce (DSE inputs are deterministic witnesses)."""
    results = []
    for failure in failures:
        inputs = inputs_of_failure(failure)
        if inputs is not None:
            results.append(replay(source, inputs))
    return results


def export_test_suite(
    source: str | Program,
    input_sets: List[Dict[str, str]],
) -> str:
    """Render discovered inputs as a standalone JSON test suite."""
    program = source if isinstance(source, Program) else parse_program(source)
    cases = []
    for inputs in input_sets:
        outcome = replay(program, inputs)
        cases.append(
            {
                "inputs": inputs,
                "failures": outcome.failures,
                "error": outcome.error,
                "statements_covered": outcome.covered,
            }
        )
    return json.dumps({"cases": cases}, indent=2, sort_keys=True)
