"""Recursive-descent parser for mini-JS.

Produces the AST of :mod:`repro.dse.astnodes` and assigns each statement
a stable ``sid`` used by statement-coverage measurement.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dse import astnodes as js
from repro.dse.lexer import MiniJsSyntaxError, Token, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "===": 3, "!==": 3, "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.next_sid = 0

    # -- cursor -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def _eat(self, value: str) -> bool:
        token = self._peek()
        if token.kind in ("punct", "keyword") and token.value == value:
            self.pos += 1
            return True
        return False

    def _expect(self, value: str) -> Token:
        token = self._peek()
        if not self._eat(value):
            raise MiniJsSyntaxError(
                f"expected {value!r} but found {token.value!r} "
                f"at line {token.line}"
            )
        return token

    def _stamp(self, stmt: js.Statement) -> js.Statement:
        stmt.sid = self.next_sid
        self.next_sid += 1
        return stmt

    # -- program ------------------------------------------------------------

    def parse_program(self) -> js.Program:
        body: List[js.Statement] = []
        while self._peek().kind != "eof":
            body.append(self._statement())
        return js.Program(body, statement_count=self.next_sid)

    # -- statements -----------------------------------------------------------

    def _statement(self) -> js.Statement:
        token = self._peek()
        if token.kind == "punct" and token.value == "{":
            return self._block()
        if token.kind == "keyword":
            if token.value in ("var", "let", "const"):
                stmt = self._var_decl()
                self._eat(";")
                return stmt
            if token.value == "function":
                return self._function_decl()
            if token.value == "if":
                return self._if()
            if token.value == "while":
                return self._while()
            if token.value == "for":
                return self._for()
            if token.value == "return":
                self._next()
                value = None
                if not self._peek().value == ";" and self._peek().kind != "eof" \
                        and self._peek().value != "}":
                    value = self._expression()
                self._eat(";")
                return self._stamp(js.Return(value))
            if token.value == "break":
                self._next()
                self._eat(";")
                return self._stamp(js.Break())
            if token.value == "continue":
                self._next()
                self._eat(";")
                return self._stamp(js.Continue())
            if token.value == "throw":
                self._next()
                value = self._expression()
                self._eat(";")
                return self._stamp(js.Throw(value))
        expr = self._expression()
        self._eat(";")
        return self._stamp(js.ExprStatement(expr))

    def _block(self) -> js.Block:
        self._expect("{")
        body: List[js.Statement] = []
        while not self._eat("}"):
            if self._peek().kind == "eof":
                raise MiniJsSyntaxError("unterminated block")
            body.append(self._statement())
        return self._stamp(js.Block(body))

    def _var_decl(self) -> js.Statement:
        kind = self._next().value
        name = self._ident_name()
        init = self._expression() if self._eat("=") else None
        decls = [self._stamp(js.VarDecl(kind, name, init))]
        while self._eat(","):
            name = self._ident_name()
            init = self._expression() if self._eat("=") else None
            decls.append(self._stamp(js.VarDecl(kind, name, init)))
        if len(decls) == 1:
            return decls[0]
        return self._stamp(js.Block(decls))

    def _function_decl(self) -> js.Statement:
        self._expect("function")
        name = self._ident_name()
        params = self._params()
        body = self._block()
        return self._stamp(js.FunctionDecl(name, params, body))

    def _params(self) -> List[str]:
        self._expect("(")
        params: List[str] = []
        while not self._eat(")"):
            if params:
                self._expect(",")
            params.append(self._ident_name())
        return params

    def _ident_name(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise MiniJsSyntaxError(
                f"expected identifier, found {token.value!r} "
                f"at line {token.line}"
            )
        return token.value

    def _if(self) -> js.Statement:
        self._expect("if")
        self._expect("(")
        test = self._expression()
        self._expect(")")
        then = self._statement()
        otherwise = self._statement() if self._eat("else") else None
        return self._stamp(js.If(test, then, otherwise))

    def _while(self) -> js.Statement:
        self._expect("while")
        self._expect("(")
        test = self._expression()
        self._expect(")")
        body = self._statement()
        return self._stamp(js.While(test, body))

    def _for(self) -> js.Statement:
        self._expect("for")
        self._expect("(")
        init: Optional[js.Statement] = None
        if not self._eat(";"):
            if self._peek().value in ("var", "let", "const"):
                init = self._var_decl()
            else:
                init = self._stamp(js.ExprStatement(self._expression()))
            self._expect(";")
        test = None if self._peek().value == ";" else self._expression()
        self._expect(";")
        update = None if self._peek().value == ")" else self._expression()
        self._expect(")")
        body = self._statement()
        return self._stamp(js.For(init, test, update, body))

    # -- expressions -------------------------------------------------------------

    def _expression(self) -> js.Node:
        return self._assignment()

    def _assignment(self) -> js.Node:
        left = self._conditional()
        token = self._peek()
        if token.kind == "punct" and token.value in ("=", "+=", "-="):
            if not isinstance(left, (js.Identifier, js.Member, js.Index)):
                raise MiniJsSyntaxError(
                    f"invalid assignment target at line {token.line}"
                )
            op = self._next().value
            value = self._assignment()
            return js.Assign(left, value, op)
        return left

    def _conditional(self) -> js.Node:
        test = self._binary(1)
        if self._eat("?"):
            then = self._assignment()
            self._expect(":")
            otherwise = self._assignment()
            return js.Conditional(test, then, otherwise)
        return test

    def _binary(self, min_precedence: int) -> js.Node:
        left = self._unary()
        while True:
            token = self._peek()
            precedence = _PRECEDENCE.get(token.value, 0) \
                if token.kind == "punct" else 0
            if precedence < min_precedence:
                return left
            op = self._next().value
            right = self._binary(precedence + 1)
            left = js.Binary(op, left, right)

    def _unary(self) -> js.Node:
        token = self._peek()
        if token.kind == "punct" and token.value in ("!", "-", "+"):
            self._next()
            operand = self._unary()
            if token.value == "+":
                return operand
            return js.Unary(token.value, operand)
        if token.kind == "keyword" and token.value == "typeof":
            self._next()
            return js.Unary("typeof", self._unary())
        if token.kind == "keyword" and token.value == "new":
            self._next()
            callee = self._postfix(self._primary(), allow_call=False)
            args: List[js.Node] = []
            if self._eat("("):
                while not self._eat(")"):
                    if args:
                        self._expect(",")
                    args.append(self._assignment())
            return self._postfix(js.New(callee, args))
        return self._postfix(self._primary())

    def _postfix(self, expr: js.Node, allow_call: bool = True) -> js.Node:
        while True:
            if self._eat("."):
                expr = js.Member(expr, self._member_name())
            elif self._eat("["):
                index = self._expression()
                self._expect("]")
                expr = js.Index(expr, index)
            elif allow_call and self._peek().value == "(" \
                    and self._peek().kind == "punct":
                self._next()
                args: List[js.Node] = []
                while not self._eat(")"):
                    if args:
                        self._expect(",")
                    args.append(self._assignment())
                expr = js.Call(expr, args)
            else:
                return expr

    def _member_name(self) -> str:
        token = self._next()
        if token.kind not in ("ident", "keyword"):
            raise MiniJsSyntaxError(
                f"expected property name at line {token.line}"
            )
        return token.value

    def _primary(self) -> js.Node:
        token = self._next()
        if token.kind == "number":
            value = float(token.value)
            return js.Literal(int(value) if value.is_integer() else value)
        if token.kind == "string":
            return js.Literal(token.value)
        if token.kind == "regex":
            return js.RegexLiteral(token.value, token.flags)
        if token.kind == "ident":
            return js.Identifier(token.value)
        if token.kind == "keyword":
            if token.value == "true":
                return js.Literal(True)
            if token.value == "false":
                return js.Literal(False)
            if token.value == "null":
                return js.Literal(None)
            if token.value == "undefined":
                return js.Undefined()
            if token.value == "function":
                name = None
                if self._peek().kind == "ident":
                    name = self._next().value
                params = self._params()
                body = self._block()
                return js.FunctionExpr(params, body, name)
        if token.kind == "punct":
            if token.value == "(":
                expr = self._expression()
                self._expect(")")
                return expr
            if token.value == "[":
                elements: List[js.Node] = []
                while not self._eat("]"):
                    if elements:
                        self._expect(",")
                    elements.append(self._assignment())
                return js.ArrayLiteral(elements)
            if token.value == "{":
                entries = []
                while not self._eat("}"):
                    if entries:
                        self._expect(",")
                    key_token = self._next()
                    if key_token.kind not in ("ident", "string", "keyword"):
                        raise MiniJsSyntaxError(
                            f"bad object key at line {key_token.line}"
                        )
                    self._expect(":")
                    entries.append((key_token.value, self._assignment()))
                return js.ObjectLiteral(entries)
        raise MiniJsSyntaxError(
            f"unexpected token {token.value!r} at line {token.line}"
        )


def parse_program(source: str) -> js.Program:
    """Parse mini-JS source text into a Program."""
    return _Parser(source).parse_program()
