"""Backreference typing (§4.3, Definition 2).

Each backreference *occurrence* ``\\k`` in a pattern is classified as:

- **empty** — ``k`` exceeds the pattern's group count, or the occurrence
  precedes group ``k`` in a post-order traversal of the AST (forward
  references, and references from inside the referenced group itself,
  e.g. ``/(a\\1)*/``);
- **mutable** — not empty, and both group ``k`` and the occurrence are
  subterms of a common quantified term (the value can change across
  iterations, e.g. the first ``\\2`` in ``/((a|b)\\2)+\\1\\2/``);
- **immutable** — everything else (a single value at matching time).

Occurrences are identified by their *path* — the tuple of child indices
from the root — because structurally equal AST nodes (two ``\\1`` leaves)
compare equal as dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, Optional, Tuple

from repro.regex import ast

Path = Tuple[int, ...]


class BackrefType(Enum):
    EMPTY = "empty"
    MUTABLE = "mutable"
    IMMUTABLE = "immutable"


@dataclass(frozen=True)
class BackrefInfo:
    path: Path
    index: int
    type: BackrefType
    #: For mutable refs: path of the innermost quantifier enclosing both
    #: the occurrence and the referenced group.
    common_quantifier: Optional[Path] = None


def _walk_paths(node: ast.Node, path: Path = ()) -> Iterator[Tuple[Path, ast.Node]]:
    yield path, node
    for i, child in enumerate(ast.children(node)):
        yield from _walk_paths(child, path + (i,))


def _postorder_positions(root: ast.Node) -> Dict[Path, int]:
    positions: Dict[Path, int] = {}
    counter = 0

    def visit(node: ast.Node, path: Path) -> None:
        nonlocal counter
        for i, child in enumerate(ast.children(node)):
            visit(child, path + (i,))
        positions[path] = counter
        counter += 1

    visit(root, ())
    return positions


def _quantifier_ancestors(path: Path, root: ast.Node) -> Tuple[Path, ...]:
    """Paths of all Quantifier nodes strictly above ``path`` (outer→inner)."""
    ancestors = []
    node = root
    for depth, step in enumerate(path):
        if isinstance(node, ast.Quantifier):
            ancestors.append(path[:depth])
        node = ast.children(node)[step]
    return tuple(ancestors)


def classify_backrefs(pattern: ast.Pattern) -> Dict[Path, BackrefInfo]:
    """Classify every backreference occurrence per Definition 2."""
    root = pattern.body
    positions = _postorder_positions(root)
    group_paths: Dict[int, Path] = {}
    backref_paths: list[Tuple[Path, int]] = []
    for path, node in _walk_paths(root):
        if isinstance(node, ast.Group):
            # First (leftmost) occurrence of the index wins; duplicated
            # indices only arise from Table 1 expansion, where the last
            # copy is the canonical one — but those are capture-erased.
            group_paths.setdefault(node.index, path)
        elif isinstance(node, ast.Backreference):
            backref_paths.append((path, node.index))

    result: Dict[Path, BackrefInfo] = {}
    for path, index in backref_paths:
        group_path = group_paths.get(index)
        if group_path is None or index > pattern.group_count:
            result[path] = BackrefInfo(path, index, BackrefType.EMPTY)
            continue
        if positions[path] < positions[group_path]:
            # Occurrence precedes the group in post-order: forward
            # reference, or a reference from within the group itself.
            result[path] = BackrefInfo(path, index, BackrefType.EMPTY)
            continue
        shared = _innermost_common_quantifier(path, group_path, root)
        if shared is not None:
            result[path] = BackrefInfo(
                path, index, BackrefType.MUTABLE, common_quantifier=shared
            )
        else:
            result[path] = BackrefInfo(path, index, BackrefType.IMMUTABLE)
    return result


def _innermost_common_quantifier(
    a: Path, b: Path, root: ast.Node
) -> Optional[Path]:
    qa = set(_quantifier_ancestors(a, root))
    qb = _quantifier_ancestors(b, root)
    shared = [q for q in qb if q in qa]
    return shared[-1] if shared else None


def groups_inside_quantifiers(pattern: ast.Pattern) -> frozenset[int]:
    """Indices of groups that sit under some quantifier (their backrefs
    from inside the same quantifier are the mutable ones)."""
    out = set()
    for path, node in _walk_paths(pattern.body):
        if isinstance(node, ast.Group) and _quantifier_ancestors(
            path, pattern.body
        ):
            out.add(node.index)
    return frozenset(out)


def has_quantified_backref(pattern: ast.Pattern) -> bool:
    """§7.1's 'quantified backreferences' — a backref under a quantifier."""
    for path, node in _walk_paths(pattern.body):
        if isinstance(node, ast.Backreference) and _quantifier_ancestors(
            path, pattern.body
        ):
            return True
    return False
