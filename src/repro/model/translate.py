"""The capturing-language model: ES6 regex → string constraints (§4).

:class:`Translator` recursively turns ``(w, C0..Cn) ∈ Lc(R)`` into the
constraint language of :mod:`repro.constraints`, following Table 2 for
operators/captures, Table 3 for backreferences, and §4.4 for negation.

Key implementation choices (each mirrors the paper, see DESIGN.md):

- **Purely regular subtrees** bottom out in a single ``InRe`` atom (the
  base case of Table 2), so automata do the heavy lifting.
- **Quantification** uses Table 2's rule generalised from ``*`` to
  ``{m,n}``: ``w = w1 ++ w2`` with ``w1 ∈ L(t̂{max(m-1,0),n-1})`` and the
  last iteration translated with captures (this is §4.1's capture
  correspondence folded into the rule).  Bodies containing
  backreferences or assertions fall back to **bounded unrolling**, which
  realises Table 3's quantified-backreference rows; the unroll bound
  makes that case under-approximate exactly as the paper's "∃m" does for
  a finite solver search.
- **Anchors and boundaries** constrain *context terms*: the translation
  threads the full left/right context of every position (concatenations
  of the surrounding segment variables plus the ``⟨``/``⟩``
  meta-characters added by Algorithm 2), which is the compositional
  reading of Table 2's ``L(.*⟨)``-style rules.
- **Negation** (§4.4) keeps structural constraints (partitions, capture
  bindings) positive and negates the disjunction of semantic units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.regex import ast
from repro.regex.charclass import CharSet, LINE_TERMINATORS, WORD
from repro.automata.build import erase_captures
from repro.constraints import (
    Eq,
    Formula,
    InRe,
    StrConst,
    StrVar,
    Term,
    TRUE,
    Undef,
    concat,
    conj,
    disj,
    fresh_var,
    implies,
    neg,
)
from repro.model.backrefs import (
    BackrefType,
    classify_backrefs,
    Path,
)
from repro.model.preprocess import (
    ANY_CHAR,
    INPUT_CHAR,
    META_END,
    META_START,
    rewrite_lazy_to_greedy,
)


class MutableBackrefPolicy(Enum):
    """How quantified (mutable) backreferences are modelled (§4.3)."""

    #: Table 3's last row: treat the backreference as immutable across
    #: iterations.  Solvable but *under-approximate* — the paper's default,
    #: sound for DSE (§5.4).
    IMMUTABLE = "immutable"
    #: Table 3's fourth row: per-iteration capture variables (exact up to
    #: the unroll bound, but harder on the solver).
    EXACT = "exact"


@dataclass
class ModelConfig:
    multiline: bool = False
    policy: MutableBackrefPolicy = MutableBackrefPolicy.IMMUTABLE
    #: Bound for unrolling quantifiers whose bodies contain
    #: backreferences/assertions (the ``∃m`` of Table 3, made finite).
    unroll_limit: int = 4


# Regular fragments used by anchor/boundary rules (built once).
_ANY_STAR = ast.Quantifier(ANY_CHAR, 0, None)
_INPUT_STAR = ast.Quantifier(INPUT_CHAR, 0, None)
_META_START_CM = ast.CharMatch(CharSet.of(META_START), META_START)
_META_END_CM = ast.CharMatch(CharSet.of(META_END), META_END)
_WORD_CM = ast.CharMatch(WORD, "\\w")
_NONWORD_CM = ast.CharMatch(WORD.complement(), "\\W")
_LINETERM_CM = ast.CharMatch(LINE_TERMINATORS, "[\\n\\r\\u2028\\u2029]")

#: ``Σ*⟨`` / ``Σ*x`` style contexts.
_ENDS_META_START = ast.concat([_ANY_STAR, _META_START_CM])
_STARTS_META_END = ast.concat([_META_END_CM, _ANY_STAR])
_ENDS_WORD = ast.concat([_ANY_STAR, _WORD_CM])
_ENDS_NONWORD = ast.concat([_ANY_STAR, _NONWORD_CM])
_STARTS_WORD = ast.concat([_WORD_CM, _ANY_STAR])
_STARTS_NONWORD = ast.concat([_NONWORD_CM, _ANY_STAR])
_ENDS_NEWLINE = ast.concat([_ANY_STAR, _LINETERM_CM])
_STARTS_NEWLINE = ast.concat([_LINETERM_CM, _ANY_STAR])

_EPS = StrConst("")


@dataclass
class Translation:
    """The result of translating one ``Lc`` membership.

    ``structural`` holds partitions and capture bindings (kept positive
    under negation, §4.4); ``semantic`` holds the negatable units.
    """

    structural: List[Formula] = field(default_factory=list)
    semantic: List[Formula] = field(default_factory=list)

    def positive(self) -> Formula:
        return conj(self.structural + self.semantic)

    def negative(self) -> Formula:
        """§4.4: keep structure, require *some* semantic unit to fail."""
        if not self.semantic:
            return conj(self.structural + [neg(TRUE)])
        return conj(
            self.structural + [disj([neg(unit) for unit in self.semantic])]
        )

    def merge(self, other: "Translation") -> None:
        self.structural.extend(other.structural)
        self.semantic.extend(other.semantic)


class Translator:
    """Translates one pattern's capturing-language memberships."""

    def __init__(
        self,
        body: ast.Node,
        captures: Dict[int, StrVar],
        config: Optional[ModelConfig] = None,
    ):
        self.body = rewrite_lazy_to_greedy(body)
        self.captures = captures
        self.config = config or ModelConfig()
        self.backref_types = classify_backrefs(
            ast.Pattern(self.body, _max_group_index(self.body))
        )
        #: True when some rule was under-approximate (quantified
        #: backreference beyond the unroll bound / IMMUTABLE policy hit).
        self.underapproximate = False

    # -- public API -----------------------------------------------------------

    def membership(
        self,
        word: Term,
        positive: bool = True,
        lctx: Term = _EPS,
        rctx: Term = _EPS,
    ) -> Formula:
        """Model ``(word, C0..Cn) ⊡ Lc(body)`` (⊡ per ``positive``).

        ``lctx``/``rctx`` are the context terms to the left/right of the
        word within the overall subject — Algorithm 2 passes the ``⟨``/``⟩``
        meta-characters here so anchors and boundaries resolve exactly.
        """
        translation = self._visit(
            self.body,
            path=(),
            word=word,
            lctx=lctx,
            rctx=rctx,
            cap_map=dict(self.captures),
        )
        return translation.positive() if positive else translation.negative()

    # -- recursion -------------------------------------------------------------

    def _visit(
        self,
        node: ast.Node,
        path: Path,
        word: Term,
        lctx: Term,
        rctx: Term,
        cap_map: Dict[int, StrVar],
    ) -> Translation:
        if ast.is_purely_regular(node):
            return Translation(semantic=[InRe(word, node)])
        handler = self._HANDLERS[type(node)]
        return handler(self, node, path, word, lctx, rctx, cap_map)

    def _visit_empty(self, node, path, word, lctx, rctx, cap_map):
        return Translation(semantic=[Eq(word, _EPS)])

    def _visit_concat(
        self, node: ast.Concat, path, word, lctx, rctx, cap_map
    ) -> Translation:
        segments = [fresh_var("seg") for _ in node.parts]
        result = Translation(
            structural=[Eq(word, concat(*segments))]
        )
        for i, part in enumerate(node.parts):
            part_lctx = concat(lctx, *segments[:i])
            part_rctx = concat(*segments[i + 1:], rctx)
            child = self._visit(
                part, path + (i,), segments[i], part_lctx, part_rctx, cap_map
            )
            result.merge(child)
        return result

    def _visit_alternation(
        self, node: ast.Alternation, path, word, lctx, rctx, cap_map
    ) -> Translation:
        all_groups = set(ast.groups_in(node))
        branches: List[Formula] = []
        for i, option in enumerate(node.options):
            own_groups = set(ast.groups_in(option))
            others = all_groups - own_groups
            child = self._visit(
                option, path + (i,), word, lctx, rctx, cap_map
            )
            undef_caps = [
                Eq(cap_map[g], Undef()) for g in sorted(others) if g in cap_map
            ]
            branches.append(conj([child.positive()] + undef_caps))
        return Translation(semantic=[disj(branches)])

    def _visit_group(
        self, node: ast.Group, path, word, lctx, rctx, cap_map
    ) -> Translation:
        child = self._visit(
            node.child, path + (0,), word, lctx, rctx, cap_map
        )
        result = Translation()
        if node.index in cap_map:
            result.structural.append(Eq(cap_map[node.index], word))
        result.merge(child)
        return result

    def _visit_noncap(
        self, node: ast.NonCapGroup, path, word, lctx, rctx, cap_map
    ) -> Translation:
        return self._visit(node.child, path + (0,), word, lctx, rctx, cap_map)

    # -- quantification ---------------------------------------------------------

    def _visit_quantifier(
        self, node: ast.Quantifier, path, word, lctx, rctx, cap_map
    ) -> Translation:
        body = node.child
        needs_unrolling = ast.contains_backrefs(body) or ast.contains_lookarounds(
            body
        ) or ast.contains_anchors(body)
        if needs_unrolling:
            return self._unroll_quantifier(
                node, path, word, lctx, rctx, cap_map
            )
        return self._star_rule(node, path, word, lctx, rctx, cap_map)

    def _star_rule(
        self, node: ast.Quantifier, path, word, lctx, rctx, cap_map
    ) -> Translation:
        """Table 2's backreference-free quantification, generalised to
        ``{m,n}``: ``w = w1 ++ w2``, ``w1 ∈ L(t̂{max(m-1,0),n-1})``, with
        the final iteration carrying the captures."""
        low, high = node.min, node.max
        groups = [g for g in ast.groups_in(node.child) if g in cap_map]
        undef_caps = [Eq(cap_map[g], Undef()) for g in sorted(set(groups))]

        if high == 0:
            return Translation(
                semantic=[Eq(word, _EPS)] + undef_caps
            )

        prefix = fresh_var("quant")
        last = fresh_var("quant")
        erased = erase_captures(node.child)
        prefix_regex = ast.Quantifier(
            erased, max(low - 1, 0), None if high is None else high - 1
        )
        result = Translation(
            structural=[Eq(word, concat(prefix, last))]
        )
        child = self._visit(
            node.child,
            path + (0,),
            last,
            concat(lctx, prefix),
            rctx,
            cap_map,
        )
        result.semantic.append(InRe(prefix, prefix_regex))
        if low >= 1:
            result.merge(child)
            return result
        # t1|ε with the (w2 = ε ⇒ w1 = ε ∧ caps = ⊥) side condition.
        eps_branch = conj([Eq(last, _EPS), Eq(prefix, _EPS)] + undef_caps)
        result.semantic.append(disj([child.positive(), eps_branch]))
        result.semantic.append(
            implies(
                Eq(last, _EPS),
                conj([Eq(prefix, _EPS)] + undef_caps),
            )
        )
        return result

    def _unroll_quantifier(
        self, node: ast.Quantifier, path, word, lctx, rctx, cap_map
    ) -> Translation:
        """Bounded unrolling for bodies with backreferences/assertions —
        the finite realisation of Table 3's quantified rows."""
        low, high = node.min, node.max
        bound = low + self.config.unroll_limit
        if high is None or high > bound:
            self.underapproximate = high is None or high > bound
            high = bound
        groups = sorted(
            {g for g in ast.groups_in(node.child) if g in cap_map}
        )
        branches: List[Formula] = []
        for count in range(low, high + 1):
            if count == 0:
                branches.append(
                    conj(
                        [Eq(word, _EPS)]
                        + [Eq(cap_map[g], Undef()) for g in groups]
                    )
                )
                continue
            copies = [fresh_var("iter") for _ in range(count)]
            parts: List[Formula] = [Eq(word, concat(*copies))]
            for i, copy_word in enumerate(copies):
                is_last = i == count - 1
                copy_caps = self._iteration_caps(cap_map, groups, is_last)
                copy_lctx = concat(lctx, *copies[:i])
                copy_rctx = concat(*copies[i + 1:], rctx)
                child = self._visit(
                    node.child,
                    path + (0,),
                    copy_word,
                    copy_lctx,
                    copy_rctx,
                    copy_caps,
                )
                parts.append(child.positive())
            branches.append(conj(parts))
        return Translation(semantic=[disj(branches)])

    def _iteration_caps(
        self,
        cap_map: Dict[int, StrVar],
        groups: List[int],
        is_last: bool,
    ) -> Dict[int, StrVar]:
        """Capture variables for one unrolled iteration.

        The last copy binds the pattern's capture variables (the value the
        regex reports).  Earlier copies get fresh per-iteration variables
        under the EXACT policy (Table 3 row 4) and the shared variables
        under IMMUTABLE (row 5 — forcing all iterations to agree, which is
        the paper's deliberately unsound simplification)."""
        if is_last or self.config.policy is MutableBackrefPolicy.IMMUTABLE:
            if not is_last:
                self.underapproximate = True
            return cap_map
        overlay = dict(cap_map)
        for g in groups:
            overlay[g] = fresh_var(f"C{g}_iter")
        return overlay

    # -- backreferences -----------------------------------------------------------

    def _visit_backref(
        self, node: ast.Backreference, path, word, lctx, rctx, cap_map
    ) -> Translation:
        info = self.backref_types.get(path)
        if (
            info is not None and info.type is BackrefType.EMPTY
        ) or node.index not in cap_map:
            # Table 3 row 1: empty backreferences match ε exactly.
            return Translation(semantic=[Eq(word, _EPS)])
        cap = cap_map[node.index]
        # Table 3 row 2: ⊥ ⇒ ε, otherwise the captured word.
        return Translation(
            semantic=[
                implies(Eq(cap, Undef()), Eq(word, _EPS)),
                implies(neg(Eq(cap, Undef())), Eq(word, cap)),
            ]
        )

    # -- assertions ---------------------------------------------------------------

    def _visit_lookahead(
        self, node: ast.Lookahead, path, word, lctx, rctx, cap_map
    ) -> Translation:
        # Table 2 treats ``(?=t1)t2`` as an intersection on the remaining
        # word: here the remaining word is the right context, split into a
        # prefix matching t1 and an arbitrary tail (the ``.*`` of the rule).
        if not node.negative and ast.is_purely_regular(node.child):
            # Fast path mirroring Table 2 verbatim: the remaining word is
            # in L(t1 .*) — one membership on the right context.
            rest = fresh_var("look")
            target = ast.concat([node.child, _ANY_STAR])
            return Translation(
                structural=[Eq(word, _EPS), Eq(rest, rctx)],
                semantic=[InRe(rest, target)],
            )
        la_word = fresh_var("look")
        la_tail = fresh_var("look")
        rest = fresh_var("look")
        result = Translation(
            structural=[
                Eq(word, _EPS),
                Eq(rest, rctx),
                Eq(rest, concat(la_word, la_tail)),
            ]
        )
        if not node.negative:
            # Positive lookahead: captures within persist (ES6 semantics).
            child = self._visit(
                node.child, path + (0,), la_word, lctx, la_tail, cap_map
            )
            result.merge(child)
            return result
        # Negative lookahead: rest ∉ Lc(t1.*).  Inner captures come out
        # undefined in ES6; the negated body uses local variables.
        inner_groups = sorted(set(ast.groups_in(node.child)))
        if ast.is_purely_regular(node.child):
            rest = fresh_var("look")
            result.structural = [Eq(word, _EPS), Eq(rest, rctx)]
            target = ast.concat([erase_captures(node.child), _ANY_STAR])
            result.semantic.append(neg(InRe(rest, target)))
            # (the ``.*`` tail here may legitimately reach the ⟩ marker,
            # hence _ANY_STAR: rctx includes the right meta-character)
        else:
            overlay = dict(cap_map)
            for g in inner_groups:
                overlay[g] = fresh_var(f"C{g}_neg")
            child = self._visit(
                node.child, path + (0,), la_word, lctx, la_tail, overlay
            )
            result.semantic.append(child.negative())
        for g in inner_groups:
            if g in cap_map:
                result.structural.append(Eq(cap_map[g], Undef()))
        return result

    def _visit_anchor(
        self, node: ast.Anchor, path, word, lctx, rctx, cap_map
    ) -> Translation:
        result = Translation(structural=[Eq(word, _EPS)])
        if node.kind == "start":
            conditions = [InRe(lctx, _ENDS_META_START)]
            if not _never_empty(lctx):
                conditions.insert(0, Eq(lctx, _EPS))
            if self.config.multiline:
                conditions.append(InRe(lctx, _ENDS_NEWLINE))
        else:
            conditions = [InRe(rctx, _STARTS_META_END)]
            if not _never_empty(rctx):
                conditions.insert(0, Eq(rctx, _EPS))
            if self.config.multiline:
                conditions.append(InRe(rctx, _STARTS_NEWLINE))
        result.semantic.append(disj(conditions))
        return result

    def _visit_boundary(
        self, node: ast.WordBoundary, path, word, lctx, rctx, cap_map
    ) -> Translation:
        """Table 2's ``\\b``/``\\B`` rules over the threaded contexts."""
        ends_word = InRe(lctx, _ENDS_WORD)
        ends_nonword_opts = [InRe(lctx, _ENDS_NONWORD)]
        if not _never_empty(lctx):
            ends_nonword_opts.append(Eq(lctx, _EPS))
        ends_nonword = disj(ends_nonword_opts)
        starts_word = InRe(rctx, _STARTS_WORD)
        starts_nonword_opts = [InRe(rctx, _STARTS_NONWORD)]
        if not _never_empty(rctx):
            starts_nonword_opts.append(Eq(rctx, _EPS))
        starts_nonword = disj(starts_nonword_opts)
        at_boundary = disj(
            [
                conj([ends_word, starts_nonword]),
                conj([ends_nonword, starts_word]),
            ]
        )
        not_boundary = disj(
            [
                conj([ends_word, starts_word]),
                conj([ends_nonword, starts_nonword]),
            ]
        )
        condition = not_boundary if node.negated else at_boundary
        return Translation(
            structural=[Eq(word, _EPS)], semantic=[condition]
        )

    _HANDLERS = {
        ast.Empty: _visit_empty,
        ast.Concat: _visit_concat,
        ast.Alternation: _visit_alternation,
        ast.Group: _visit_group,
        ast.NonCapGroup: _visit_noncap,
        ast.Quantifier: _visit_quantifier,
        ast.Backreference: _visit_backref,
        ast.Lookahead: _visit_lookahead,
        ast.Anchor: _visit_anchor,
        ast.WordBoundary: _visit_boundary,
    }


def _never_empty(term: Term) -> bool:
    """Static check: can this context term possibly denote ε?

    Context terms built by Algorithm 2 start/end with the ``⟨``/``⟩``
    constants, so their emptiness disjuncts are statically false — pruning
    them keeps the solver from exploring impossible cores."""
    if isinstance(term, StrConst):
        return bool(term.value)
    from repro.constraints import Concat as _ConcatTerm

    if isinstance(term, _ConcatTerm):
        return any(_never_empty(p) for p in term.parts)
    return False


def _max_group_index(node: ast.Node) -> int:
    indices = ast.groups_in(node)
    return max(indices) if indices else 0


def model_membership(
    body: ast.Node,
    word: Term,
    captures: Dict[int, StrVar],
    positive: bool = True,
    config: Optional[ModelConfig] = None,
) -> Formula:
    """Convenience wrapper: model ``(word, C...) ⊡ Lc(body)``."""
    return Translator(body, captures, config).membership(word, positive)
