"""Preprocessing of ES6 regexes before modeling (§4.1, Table 1).

The paper rewrites every pattern into atomic terms joined by alternation,
concatenation and Kleene star, relating capture groups between the
original and rewritten expressions.  This module provides those
rewritings:

- :func:`rewrite_lazy_to_greedy` — models are agnostic to matching
  precedence (refinement handles it), so lazy quantifiers are dropped;
- :func:`expand_repetition` — ``r{m,n} → rⁿ|...|rᵐ`` and ``r+ → r*r``
  (Table 1), with the §4.1 capture-correspondence handled structurally:
  the *last* copy of each duplicated group carries the pattern's capture
  index, earlier copies are erased to non-capturing form (this is exactly
  the ``Ci = Ci,x,m+x−1`` correspondence, folded into the tree);
- :func:`wildcard` / :func:`wrap_for_exec` — the
  ``(?:.|\\n)*?(R)(?:.|\\n)*?`` wrapping of Algorithm 2, including the
  outer capture group ``C0`` and the ``⟨``/``⟩`` input meta-characters.

The translation itself (:mod:`repro.model.translate`) consumes general
:class:`~repro.regex.ast.Quantifier` nodes directly via a generalized
form of Table 2's quantification rule, so expansion is only *required*
for bodies containing backreferences (where bounded unrolling is the
model, Table 3); for everything else the rules coincide.
"""

from __future__ import annotations

from repro.regex import ast
from repro.regex.charclass import CharSet, MAX_CODEPOINT
from repro.automata.build import erase_captures

#: Start/end-of-input meta-characters (§6.1): reserved code points used by
#: Algorithm 2 to mark word boundaries of the subject inside the model.
META_START = "〈"  # ⟨
META_END = "〉"  # ⟩

#: Any character at all — used in *context* languages (``Σ*⟨`` etc.),
#: where the meta-characters legitimately appear.
ANY_CHAR = ast.CharMatch(CharSet(((0, MAX_CODEPOINT),)), "[^]")

#: Any character an *input* may contain: everything except the reserved
#: meta-characters.  The wrapper wildcard and lookahead tails absorb
#: portions of the input, so they must not invent ``⟨``/``⟩``.
INPUT_CHAR = ast.CharMatch(
    CharSet(((0, MAX_CODEPOINT),)).difference(
        CharSet.of(META_START + META_END)
    ),
    "[^〈〉]",
)

#: ``[^〈〉]*`` — the language of well-formed inputs (sanity constraint
#: conjoined to every API model).
INPUT_LANG = ast.Quantifier(INPUT_CHAR, 0, None)


def wildcard() -> ast.Node:
    """``(?:.|\\n)*?`` — the implicit-wildcard padding around a match."""
    return ast.Quantifier(INPUT_CHAR, 0, None, lazy=True)


def wrap_for_exec(body: ast.Node) -> ast.Node:
    """Algorithm 2 line 5: ``(?:.|\\n)*?(`` body ``)(?:.|\\n)*?``.

    The inner group gets index 0 — the whole-match capture ``C0`` that
    JavaScript reports at index 0 of the exec array.
    """
    return ast.concat([wildcard(), ast.Group(body, 0), wildcard()])


def rewrite_lazy_to_greedy(node: ast.Node) -> ast.Node:
    """Drop laziness flags (§4.1): the model ignores matching precedence."""
    if isinstance(node, ast.Quantifier):
        return ast.Quantifier(
            rewrite_lazy_to_greedy(node.child), node.min, node.max, lazy=False
        )
    return _map_children(node, rewrite_lazy_to_greedy)


def expand_repetition(node: ast.Node, star_threshold: int = 8) -> ast.Node:
    """Table 1: expand ``+``, ``?``, ``{m,n}`` into ``*``/alternation form.

    Capture correspondence (§4.1): when a body with capture groups is
    duplicated, only the copy matched *last* keeps the capture indices;
    leading mandatory copies are capture-erased.  This realises
    ``∀i: Ci = Ci,2`` (Kleene plus) and ``Ci = Ci,x,m+x−1`` (repetition)
    without index bookkeeping.  For capture-free bodies the erasure is a
    no-op.

    Repetitions with huge bounds are left as bounded quantifiers above
    ``star_threshold`` to avoid exponential blow-up; the translation
    handles them natively.
    """
    node = _map_children(node, lambda n: expand_repetition(n, star_threshold))
    if not isinstance(node, ast.Quantifier):
        return node
    body = node.child
    low, high = node.min, node.max
    if (low, high) == (0, None):
        return node
    if (low, high) == (1, None):
        # r+ → r̂* r  (last copy keeps captures)
        return ast.concat(
            [ast.Quantifier(erase_captures(body), 0, None), body]
        )
    if (low, high) == (0, 1):
        # r? → r|ε
        return ast.alternation([body, ast.Empty()])
    if high is None:
        # r{m,} → r̂^(m-1) … r̂* r
        copies = [erase_captures(body)] * max(low - 1, 0)
        return ast.concat(
            copies + [ast.Quantifier(erase_captures(body), 0, None), body]
        )
    if high > star_threshold:
        return node
    # r{m,n} → rⁿ | rⁿ⁻¹ | ... | rᵐ  (Table 1 lists them descending).
    options = []
    for count in range(high, low - 1, -1):
        if count == 0:
            options.append(ast.Empty())
        else:
            copies = [erase_captures(body)] * (count - 1) + [body]
            options.append(ast.concat(copies))
    return ast.alternation(options)


def preprocess(node: ast.Node) -> ast.Node:
    """The full §4.1 pipeline used before translation."""
    return expand_repetition(rewrite_lazy_to_greedy(node))


def _map_children(node: ast.Node, fn) -> ast.Node:
    if isinstance(node, ast.Concat):
        return ast.concat([fn(p) for p in node.parts])
    if isinstance(node, ast.Alternation):
        return ast.alternation([fn(o) for o in node.options])
    if isinstance(node, ast.Quantifier):
        return ast.Quantifier(fn(node.child), node.min, node.max, node.lazy)
    if isinstance(node, ast.Group):
        return ast.Group(fn(node.child), node.index)
    if isinstance(node, ast.NonCapGroup):
        return ast.NonCapGroup(fn(node.child))
    if isinstance(node, ast.Lookahead):
        return ast.Lookahead(fn(node.child), node.negative)
    return node
