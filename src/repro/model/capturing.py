"""Capturing languages (Definition 1) — reference enumeration.

``Lc(R)`` is the set of tuples ``(w, C0, ..., Cn)`` of a word together
with the capture assignment an ES6 engine produces.  This module builds
(finite slices of) capturing languages *from the concrete matcher*, which
gives tests an independent ground truth to validate the constraint model
against: every tuple the model+CEGAR pipeline produces must be in the
enumerated set, and vice versa for small bounds.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence, Tuple

from repro.regex.matcher import RegExp

CaptureTuple = Tuple[Optional[str], ...]


def words_over(alphabet: str, max_length: int) -> Iterator[str]:
    """All words over ``alphabet`` up to ``max_length``, in length order."""
    for length in range(max_length + 1):
        for letters in itertools.product(alphabet, repeat=length):
            yield "".join(letters)


def capturing_tuples(
    source: str,
    flags: str = "",
    alphabet: str = "ab",
    max_length: int = 4,
) -> Iterator[Tuple[str, CaptureTuple]]:
    """Enumerate ``(w, (C0..Cn))`` for every matching word up to a bound.

    The tuple layout matches Definition 1: ``C0`` is the whole match and
    ``Ci`` the last value of capture group ``i`` (``None`` for ⊥).
    """
    for word in words_over(alphabet, max_length):
        result = RegExp(source, flags).exec(word)
        if result is not None:
            yield word, tuple(result)


def language_slice(
    source: str,
    flags: str = "",
    alphabet: str = "ab",
    max_length: int = 4,
) -> frozenset:
    """The set of matching words up to a bound (capture-free view)."""
    return frozenset(
        word for word, _ in capturing_tuples(source, flags, alphabet, max_length)
    )


def is_member(
    source: str, word: str, flags: str = ""
) -> Optional[CaptureTuple]:
    """Concrete membership check: captures if ``word`` matches, else None."""
    result = RegExp(source, flags).exec(word)
    return None if result is None else tuple(result)
