"""The paper's core: capturing-language models, CEGAR, and the regex API.

- :mod:`repro.model.preprocess` — §4.1 rewritings (Table 1);
- :mod:`repro.model.backrefs` — Definition 2 backreference typing;
- :mod:`repro.model.translate` — Tables 2–3 translation + §4.4 negation;
- :mod:`repro.model.cegar` — Algorithm 1 (matching-precedence refinement);
- :mod:`repro.model.api` — Algorithm 2 (symbolic ``exec``/``test``);
- :mod:`repro.model.capturing` — Definition 1 reference enumeration.
"""

from repro.model.api import (
    ExecModel,
    SymbolicRegExp,
    find_matching_input,
    find_non_matching_input,
)
from repro.model.backrefs import BackrefType, classify_backrefs
from repro.model.cegar import CapturingConstraint, CegarResult, CegarSolver
from repro.model.translate import (
    ModelConfig,
    MutableBackrefPolicy,
    Translator,
    model_membership,
)

__all__ = [
    "BackrefType",
    "CapturingConstraint",
    "CegarResult",
    "CegarSolver",
    "ExecModel",
    "ModelConfig",
    "MutableBackrefPolicy",
    "SymbolicRegExp",
    "Translator",
    "classify_backrefs",
    "find_matching_input",
    "find_non_matching_input",
    "model_membership",
]
