"""Symbolic models of the ES6 RegExp API — Algorithm 2 (§6.1).

:class:`SymbolicRegExp` pairs a concrete :class:`~repro.regex.matcher.RegExp`
with the capturing-language model of its pattern.  ``exec_model`` builds
the symbolic description of one ``exec`` call: the membership formula for
the match branch, the non-membership formula for the failure branch, the
capture variables, and the :class:`CapturingConstraint` the CEGAR loop
validates against the concrete matcher.

Flag handling follows Algorithm 2:

- ``i`` — the parser folds every character class (``rewriteForIgnoreCase``);
- ``m`` — anchors accept line terminators via the model config;
- ``y``/``g`` — matching starts at ``lastIndex``; the sticky wrapper omits
  the leading wildcard so the match must begin exactly there;
- ``⟨``/``⟩`` — input meta-characters appear only as *context terms*
  around the translated pattern, never inside the modelled word, so the
  input variable stays directly solvable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.regex import ast
from repro.regex.flags import Flags
from repro.regex.matcher import ExecResult, RegExp
from repro.constraints import (
    Formula,
    InRe,
    StrConst,
    StrVar,
    Term,
    concat,
    conj,
)
from repro.model.cegar import CapturingConstraint, CegarResult, CegarSolver
from repro.model.preprocess import (
    INPUT_LANG,
    META_END,
    META_START,
    wildcard,
)
from repro.model.translate import ModelConfig, Translator
from repro.solver import Model, SAT

_exec_ids = itertools.count()


def _strip_edge_anchors(
    body: ast.Node, multiline: bool
) -> Tuple[ast.Node, bool, bool]:
    """Strip a leading ``^`` / trailing ``$`` from the pattern top level.

    Only valid without the multiline flag (where anchors also match at
    line breaks) and only at the top-level concatenation — anchors inside
    alternations/groups keep their context-based translation.
    Returns ``(stripped_body, anchored_start, anchored_end)``.
    """
    if multiline:
        return body, False, False
    anchored_start = anchored_end = False
    parts = list(body.parts) if isinstance(body, ast.Concat) else [body]
    if parts and parts[0] == ast.Anchor("start"):
        anchored_start = True
        parts = parts[1:]
    if parts and parts[-1] == ast.Anchor("end"):
        anchored_end = True
        parts = parts[:-1]
    if not anchored_start and not anchored_end:
        return body, False, False
    return ast.concat(parts), anchored_start, anchored_end


@dataclass
class ExecModel:
    """Symbolic description of one ``RegExp.exec(input)`` call."""

    match_formula: Formula
    no_match_formula: Formula
    captures: Dict[int, StrVar]
    constraint: CapturingConstraint
    negative_constraint: CapturingConstraint

    @property
    def whole_match(self) -> StrVar:
        return self.captures[0]


class SymbolicRegExp:
    """A RegExp with both concrete and symbolic semantics.

    >>> r = SymbolicRegExp(r"<(\\w+)>([0-9]*)</\\1>")
    >>> model = r.exec_model(StrVar("arg"))
    >>> # model.match_formula constrains arg to contain a tag pair, with
    >>> # model.captures[1]/[2] bound to the tag name and the number.
    """

    def __init__(
        self,
        source: str,
        flags: str = "",
        config: Optional[ModelConfig] = None,
    ):
        self.source = source
        self.flags = Flags.parse(flags) if isinstance(flags, str) else flags
        self.concrete = RegExp(source, self.flags)
        self.config = config or ModelConfig(multiline=self.flags.multiline)
        if self.flags.multiline:
            self.config.multiline = True
        self.last_index = 0

    @property
    def group_count(self) -> int:
        return self.concrete.group_count

    # -- symbolic models -------------------------------------------------------

    def exec_model(
        self,
        input_term: Term,
        last_index: int = 0,
    ) -> ExecModel:
        """Algorithm 2, symbolically: model both outcomes of one exec call.

        ``last_index`` is the concrete ``lastIndex`` in effect (sticky and
        global matching); the model then applies to the suffix of the
        input from that offset, which the caller encodes in ``input_term``.
        """
        uid = next(_exec_ids)
        captures = {
            i: StrVar(f"C{i}!{uid}")
            for i in range(self.group_count + 1)
        }
        body = self.concrete.pattern.body
        sticky = self.flags.sticky
        # Pattern-edge anchors absorb the adjacent wildcard entirely (a
        # statically-resolved instance of Table 2's anchor rules); interior
        # anchors are handled by the context terms during translation.
        stripped, anchored_start, anchored_end = _strip_edge_anchors(
            body, multiline=self.config.multiline
        )
        pieces = []
        if not sticky and not anchored_start:
            pieces.append(wildcard())
        pieces.append(ast.Group(stripped, 0))
        if not anchored_end:
            pieces.append(wildcard())
        wrapped = ast.concat(pieces)

        translator = Translator(wrapped, captures, self.config)
        lctx = StrConst(META_START)
        rctx = StrConst(META_END)
        # Inputs never contain the reserved meta-characters (§6.1); the
        # sanity conjunct keeps the solver from inventing them.
        sane_input = InRe(input_term, INPUT_LANG)
        match_formula = conj(
            [
                translator.membership(
                    input_term, positive=True, lctx=lctx, rctx=rctx
                ),
                sane_input,
            ]
        )

        # §4.4 fast path: when the capture-erased pattern is classical, the
        # non-membership constraint is *exactly* the complement automaton —
        # no capture variables are involved in a failed match.
        from repro.automata.build import erase_captures
        from repro.regex.ast import is_purely_regular
        from repro.constraints import Not as _Not

        erased_pieces = [
            erase_captures(p if not isinstance(p, ast.Group) else p.child)
            for p in pieces
        ]
        neg_target = ast.concat(erased_pieces)
        if is_purely_regular(neg_target):
            no_match_formula = conj(
                [_Not(InRe(input_term, neg_target)), sane_input]
            )
        else:
            neg_translator = Translator(wrapped, captures, self.config)
            no_match_formula = conj(
                [
                    neg_translator.membership(
                        input_term, positive=False, lctx=lctx, rctx=rctx
                    ),
                    sane_input,
                ]
            )

        flag_string = str(self.flags)
        constraint = CapturingConstraint(
            source=self.source,
            flags=flag_string,
            word=input_term,
            captures=captures,
            positive=True,
            last_index=last_index,
            sticky=sticky,
        )
        negative_constraint = CapturingConstraint(
            source=self.source,
            flags=flag_string,
            word=input_term,
            captures={},
            positive=False,
            last_index=last_index,
            sticky=sticky,
        )
        return ExecModel(
            match_formula=match_formula,
            no_match_formula=no_match_formula,
            captures=captures,
            constraint=constraint,
            negative_constraint=negative_constraint,
        )

    def test_model(self, input_term: Term, last_index: int = 0) -> ExecModel:
        """``test`` is ``exec(s) !== undefined`` (§6.1)."""
        return self.exec_model(input_term, last_index)

    # -- concrete twin -----------------------------------------------------------

    def exec(self, subject: str) -> Optional[ExecResult]:
        self.concrete.last_index = self.last_index
        result = self.concrete.exec(subject)
        self.last_index = self.concrete.last_index
        return result

    def test(self, subject: str) -> bool:
        return self.exec(subject) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymbolicRegExp(/{self.source}/{self.flags})"


def find_matching_input(
    source: str,
    flags: str = "",
    extra: Tuple[Formula, ...] = (),
    config: Optional[ModelConfig] = None,
    cegar: Optional[CegarSolver] = None,
    backend: Optional[str] = None,
) -> Optional[Tuple[str, Dict[int, Optional[str]]]]:
    """Solve for an input that the regex matches (CEGAR-validated).

    Returns ``(input, {i: capture_i})`` or ``None``.  The workhorse of the
    quickstart example and of tests: a one-call version of the paper's
    pipeline (model → solve → refine).  ``backend`` is a solver backend
    spec (ignored when an explicit ``cegar`` is supplied)."""
    regexp = SymbolicRegExp(source, flags, config)
    input_var = StrVar("input!gen")
    model = regexp.exec_model(input_var)
    problem = conj([model.match_formula, *extra])
    solver = cegar or CegarSolver(backend=backend)
    result = solver.solve(problem, [model.constraint])
    if result.status != SAT:
        return None
    word = result.model.eval_term(input_var)
    captures = {
        i: result.model[var] for i, var in sorted(model.captures.items())
    }
    return word, captures


def find_non_matching_input(
    source: str,
    flags: str = "",
    extra: Tuple[Formula, ...] = (),
    config: Optional[ModelConfig] = None,
    cegar: Optional[CegarSolver] = None,
    backend: Optional[str] = None,
) -> Optional[str]:
    """Solve for an input the regex does *not* match (CEGAR-validated)."""
    regexp = SymbolicRegExp(source, flags, config)
    input_var = StrVar("input!gen")
    model = regexp.exec_model(input_var)
    problem = conj([model.no_match_formula, *extra])
    solver = cegar or CegarSolver(backend=backend)
    result = solver.solve(problem, [model.negative_constraint])
    if result.status != SAT:
        return None
    return result.model.eval_term(input_var)
