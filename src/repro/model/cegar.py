"""Matching-precedence refinement — Algorithm 1 (§5).

The models of §4 ignore greediness, so a satisfying assignment may give
capture groups values no real ES6 engine would produce (§3.4's
``("aa", "aa", "a") ∈ Lc(/^a*(a)?$/)`` example).  Algorithm 1 repairs
this with counterexample-guided abstraction refinement:

1. solve the constraint problem ``P``;
2. for every capturing-language constraint, run the *concrete matcher*
   on the word from the model;
3. if the concrete capture assignment disagrees (or the word's
   (non-)membership itself disagrees), add a refinement constraint and
   re-solve;
4. stop when the model validates, the problem becomes unsatisfiable, or
   the refinement limit is hit (→ ``unknown``, §5.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.constraints import (
    Eq,
    Formula,
    StrConst,
    StrVar,
    Term,
    Undef,
    conj,
    implies,
    neg,
)
from repro.regex.matcher import RegExp
from repro.solver import Model, SAT, Solver, SolverStats, UNKNOWN, UNSAT
from repro.solver.stats import QueryRecord


@dataclass
class CapturingConstraint:
    """One ``(w_j, C_0,j .. C_n,j) ⊡_j Lc(R_j)`` from the path condition.

    Stores what Algorithm 1 needs to validate a model against the
    concrete matcher: the regex source/flags, the input term, the capture
    variables of the model, the polarity, and the concrete ``lastIndex``
    in effect when the call was made (sticky/global matching)."""

    source: str
    flags: str
    word: Term
    captures: Dict[int, StrVar]
    positive: bool = True
    last_index: int = 0
    sticky: bool = False

    def concrete_match(self, subject: str):
        """``ConcreteMatch`` of Algorithm 1 — an ES6-compliant exec."""
        regexp = RegExp(self.source, self.flags)
        regexp.last_index = self.last_index
        return regexp.exec(subject)


@dataclass
class CegarResult:
    """Outcome of the refinement loop (Algorithm 1's return value)."""

    status: str  # sat / unsat / unknown
    model: Optional[Model] = None
    refinements: int = 0
    hit_limit: bool = False

    def __bool__(self) -> bool:
        return self.status == SAT


@dataclass
class CegarSolver:
    """Algorithm 1: a satisfiability checker for problems containing
    capturing-language constraints, built on the base string solver and
    the concrete matcher."""

    solver: Solver = field(default_factory=Solver)
    refinement_limit: int = 20
    stats: Optional[SolverStats] = None
    #: Optional hook: a zero-argument callable returning the solver to
    #: use (e.g. a ``repro.service.cache.CachedSolver`` sharing a query
    #: cache across many CEGAR instances).  Overrides ``solver``.
    solver_factory: Optional[Callable[[], Solver]] = None
    #: Solver backend spec (see :func:`repro.solver.backends.make_backend`),
    #: e.g. ``"portfolio:native+smtlib"``.  Overrides ``solver`` but not
    #: ``solver_factory``; per-backend tallies land in ``stats``.
    backend: Optional[str] = None
    #: Optional :class:`repro.solver.backends.QueryCache` memoizing the
    #: refinement stream: every query of the loop — the initial one
    #: *and* each refined one — is keyed on its canonical fingerprint,
    #: so refinement prefixes repeated across flips replay from
    #: memory/disk instead of re-entering the solver.  Ignored when the
    #: solver chain already carries its own cache decorator (a
    #: ``cached:`` level keys the refined stream the same way).
    query_cache: Optional[object] = None

    def __post_init__(self) -> None:
        if self.solver_factory is not None:
            self.solver = self.solver_factory()
        elif self.backend is not None:
            from repro.solver.backends import make_backend

            self.solver = make_backend(self.backend, stats=self.stats)
        if self.query_cache is not None:
            from repro.solver.backends import CachedBackend
            from repro.solver.backends.cached import CachedSolver

            if not isinstance(self.solver, CachedSolver):
                self.solver = CachedBackend(
                    self.solver,
                    cache=self.query_cache,
                    tally_stats=self.stats,
                    stats=self.stats,
                )

    def _solve_query(self, problem: Formula, refinements: int):
        """One ``Solve(P)`` of Algorithm 1, fast-path aware.

        The initial query goes through the ordinary ``solve``; from the
        first refinement on, the query is dispatched through the solver
        chain's ``solve_refined`` when it has one — the cache decorator
        keys each refined query's own canonical fingerprint, and the
        router re-classifies the refined formula (refinements are
        always classical, so the stream migrates to the incremental
        session mid-loop even when the initial query routed native).
        """
        if refinements > 0:
            refined = getattr(self.solver, "solve_refined", None)
            if callable(refined):
                return refined(problem)
        return self.solver.solve(problem)

    def solve(
        self,
        problem: Formula,
        constraints: Sequence[CapturingConstraint] = (),
    ) -> CegarResult:
        start = time.perf_counter()
        refinements = 0
        had_captures = any(len(c.captures) > 1 for c in constraints)
        result = CegarResult(UNKNOWN)

        solve_attrs = {}
        if obs.enabled():
            from repro.constraints.printer import canonical_fingerprint

            solve_attrs["fingerprint"] = canonical_fingerprint(problem)[0]
            solve_attrs["backend"] = getattr(
                self.solver, "name", None
            ) or type(self.solver).__name__
        with obs.span("cegar:solve", **solve_attrs) as solve_span:
            while True:
                with obs.span(
                    "cegar:iter", iteration=refinements
                ) as iter_span:
                    solved = self._solve_query(problem, refinements)
                    iter_span.set(status=solved.status)
                # A router annotates the innermost open span with its
                # decision; hoist it so the slow-query log (which keeps
                # only ``cegar:solve``-family spans) sees the route.
                for key in ("route", "target", "cache"):
                    if key in iter_span.attrs:
                        solve_span.set(**{key: iter_span.attrs[key]})
                if solved.status != SAT:
                    result = CegarResult(
                        solved.status, None, refinements, False
                    )
                    break

                model = solved.model
                failed = False
                for constraint in constraints:
                    refinement = self._validate(constraint, model)
                    if refinement is not None:
                        # Prepend: refinements must branch *before* the
                        # model's own disjunctions so the pinned-word
                        # branch is explored against every model core
                        # first.
                        problem = conj([refinement, problem])
                        failed = True
                if not failed:
                    result = CegarResult(SAT, model, refinements, False)
                    break
                refinements += 1
                if refinements > self.refinement_limit:
                    result = CegarResult(UNKNOWN, None, refinements, True)
                    break
            solve_span.set(
                status=result.status,
                refinements=refinements,
                hit_limit=result.hit_limit,
            )

        if self.stats is not None:
            self.stats.record(
                QueryRecord(
                    seconds=time.perf_counter() - start,
                    status=result.status,
                    had_regex=bool(constraints),
                    had_captures=had_captures,
                    refinements=refinements,
                    hit_refinement_limit=result.hit_limit,
                )
            )
        return result

    def _validate(
        self, constraint: CapturingConstraint, model: Model
    ) -> Optional[Formula]:
        """Lines 8–22 of Algorithm 1: check one constraint against the
        concrete matcher; return a refinement formula or None if OK."""
        word_value = model.eval_term(constraint.word)
        if word_value is None:
            return None  # an undefined word cannot be validated
        concrete = constraint.concrete_match(word_value)

        if concrete is not None:
            if not constraint.positive:
                # Modeled as a non-member but matches concretely: forbid
                # this word (line 18).
                return neg(Eq(constraint.word, StrConst(word_value)))
            # Compare capture assignments (lines 12–15).
            pins: List[Formula] = []
            mismatch = False
            for index, var in sorted(constraint.captures.items()):
                concrete_value = (
                    concrete[index] if index < len(concrete) else None
                )
                model_value = model[var]
                target = (
                    Undef()
                    if concrete_value is None
                    else StrConst(concrete_value)
                )
                pins.append(Eq(var, target))
                if model_value != concrete_value:
                    mismatch = True
            if not mismatch:
                return None
            # Line 15's refinement  w = M[w] ⟹ ∧ Ci = Ci♮ , phrased with
            # the pinned-word branch first so the solver prefers *fixing
            # the captures for this word* over wandering to a new word —
            # this is what makes refinement converge in a few iterations
            # (§7.4 reports a mean of 2.9).
            from repro.constraints import disj

            return disj(
                [
                    conj([Eq(constraint.word, StrConst(word_value))] + pins),
                    neg(Eq(constraint.word, StrConst(word_value))),
                ]
            )

        if constraint.positive:
            # Modeled as a member but does not match concretely: forbid
            # this word (line 22).
            return neg(Eq(constraint.word, StrConst(word_value)))
        return None


def refinement_stream_fingerprint(
    problem: Formula, constraints: Sequence[CapturingConstraint]
) -> Optional[str]:
    """Canonical identity of the whole CEGAR query *stream*.

    The initial formula's canonical fingerprint identifies only
    ``Solve(P)`` of iteration 0; the refinements that follow are driven
    by the concrete matcher, i.e. by the :class:`CapturingConstraint`\\ s
    (regex source/flags, polarity, ``lastIndex``, sticky mode, capture
    variables).  Two problems with equal initial fingerprints but
    different constraint sets can diverge from the first refinement on —
    e.g. language-equal regexes with different group structure — so
    anything keyed on the refined stream (scheduler dedup of solve
    jobs) must include both.

    Returns ``None`` when no constraint carries real capture groups
    (beyond the whole-match ``C0``): the refinements of a
    membership-only run pin words drawn from the canonical model, so
    the initial fingerprint already identifies the stream, and callers
    fall back to it — language-equal spelling variants (laziness,
    class spelling, non-capturing groups) keep coalescing.  Capture
    pins are different: two language-equal patterns can assign ``C1``
    differently (``(a+)b`` vs ``(a+?)b``), so their streams diverge
    from the first refinement and must not share a key.
    """
    if not any(len(c.captures) > 1 for c in constraints):
        return None
    from repro.constraints.printer import canonical_fingerprint

    fingerprint, renaming = canonical_fingerprint(problem)

    def term_text(term: Term) -> str:
        if isinstance(term, StrVar):
            return renaming.get(term, f"!{term.name}")
        if isinstance(term, StrConst):
            return repr(term.value)
        parts = getattr(term, "parts", None)
        if parts is not None:
            return "(++" + ",".join(term_text(p) for p in parts) + ")"
        return repr(term)

    parts: List[str] = [fingerprint]
    for c in constraints:
        captures = ",".join(
            f"{index}={renaming.get(var, '!' + var.name)}"
            for index, var in sorted(c.captures.items())
        )
        parts.append(
            "\x00".join(
                [
                    c.source,
                    c.flags,
                    str(int(c.positive)),
                    str(c.last_index),
                    str(int(c.sticky)),
                    term_text(c.word),
                    captures,
                ]
            )
        )
    return "\x01".join(parts)
