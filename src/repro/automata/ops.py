"""High-level automata operations used by the model and the solver.

The central entry point is :func:`dfa_for`, which compiles a purely
regular AST node to a (cached, minimized) DFA.  Caching matters: DSE
re-solves path conditions containing the same regexes thousands of times.

Caching is layered (fastest first):

1. a node-keyed dict (structural hash of the AST object) — the hot path
   for repeated literals inside one solver run;
2. the fingerprint-keyed :class:`~repro.automata.cache.AutomataInterner`,
   canonical across group/laziness syntax and across AST identities;
3. an optional on-disk :class:`~repro.automata.cache.DfaDiskStore`
   (attach with :func:`configure_automata_cache`) shared across
   processes and batch invocations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.regex import ast
from repro.regex.parser import parse_pattern
from repro.automata.build import NotRegularError, erase_captures, to_nfa
from repro.automata.cache import AutomataInterner, node_fingerprint
from repro.automata.dfa import Dfa, determinize
from repro.automata.lazy import LazyProduct, lazy_intersect_all
from repro.automata.nfa import Nfa

_INTERNER = AutomataInterner()
_DFA_CACHE: Dict[ast.Node, Dfa] = {}
_COMPLEMENT_CACHE: Dict[ast.Node, Dfa] = {}


def clear_caches() -> None:
    """Drop every memoized DFA and reset the interner.

    Also detaches any configured on-disk store (handle included), so
    benchmarks measuring cold compilation and tests get a pristine
    state; re-attach with :func:`configure_automata_cache` if disk
    persistence should survive the clear.
    """
    _DFA_CACHE.clear()
    _COMPLEMENT_CACHE.clear()
    _INTERNER.reset()


def configure_automata_cache(path: Optional[str]) -> None:
    """Attach (``path``) or detach (``None``) the on-disk automata store.

    Process-global: every subsequent compilation through
    :func:`dfa_for` reads from and writes to the store.  The CLI's
    ``--automata-cache`` and the service layer's ``automata_cache``
    knobs land here.
    """
    _INTERNER.attach_store(path)


def automata_cache_counters() -> dict:
    """Hit/miss/disk counters of the compilation cache (cumulative)."""
    return _INTERNER.counters()


def nfa_for(node: ast.Node) -> Nfa:
    """Thompson NFA for a purely regular node (captures erased first)."""
    return to_nfa(erase_captures(node))


def dfa_for(node: ast.Node, minimize: bool = True) -> Dfa:
    """Compile ``node`` (purely regular, captures allowed and erased) to a DFA."""
    cached = _DFA_CACHE.get(node)
    if cached is not None:
        _INTERNER.hits += 1
        return cached
    erased = erase_captures(node)
    fingerprint = node_fingerprint(erased)

    def compile_fn() -> Dfa:
        dfa = determinize(to_nfa(erased))
        if minimize and dfa.n_states <= 512:
            dfa = dfa.minimize()
        return dfa

    dfa = _INTERNER.dfa(fingerprint, compile_fn)
    _DFA_CACHE[node] = dfa
    return dfa


def complement_dfa_for(node: ast.Node) -> Dfa:
    """The complement automaton (drives ``∉ L(r)`` constraints of §4.4)."""
    cached = _COMPLEMENT_CACHE.get(node)
    if cached is not None:
        _INTERNER.hits += 1
        return cached
    fingerprint = node_fingerprint(erase_captures(node))
    dfa = _INTERNER.complement(
        fingerprint, lambda: dfa_for(node).complement()
    )
    _COMPLEMENT_CACHE[node] = dfa
    return dfa


def dfa_for_pattern(source: str, flags: str = "") -> Dfa:
    """Parse classical regex text and compile it — convenience for tests."""
    pattern = parse_pattern(source, flags if flags else "")
    return dfa_for(pattern.body)


def intersect_all(dfas: Iterable[Dfa]) -> Optional[Dfa]:
    """Eager intersection of a collection of DFAs (``None`` for empty input).

    Short-circuits as soon as an intermediate product is empty — no
    further component can revive an empty language, so the (possibly
    large) remaining products are never built.  For query-only use
    prefer :func:`repro.automata.lazy.lazy_intersect_all`, which never
    materializes the product at all.
    """
    result: Optional[Dfa] = None
    for dfa in dfas:
        result = dfa if result is None else result.intersect(dfa)
        if result.is_empty():
            return result
    return result


def membership_witness(node: ast.Node) -> Optional[str]:
    """A shortest word in ``L(node)``, or ``None`` if the language is empty."""
    return dfa_for(node).shortest_word()
