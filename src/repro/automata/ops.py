"""High-level automata operations used by the model and the solver.

The central entry point is :func:`dfa_for`, which compiles a purely
regular AST node to a (cached, minimized) DFA.  Caching matters: DSE
re-solves path conditions containing the same regexes thousands of times.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.regex import ast
from repro.regex.parser import parse_pattern
from repro.automata.build import NotRegularError, erase_captures, to_nfa
from repro.automata.dfa import Dfa, determinize
from repro.automata.nfa import Nfa

_DFA_CACHE: Dict[ast.Node, Dfa] = {}
_COMPLEMENT_CACHE: Dict[ast.Node, Dfa] = {}


def clear_caches() -> None:
    """Drop memoized DFAs (used by benchmarks measuring cold compilation)."""
    _DFA_CACHE.clear()
    _COMPLEMENT_CACHE.clear()


def nfa_for(node: ast.Node) -> Nfa:
    """Thompson NFA for a purely regular node (captures erased first)."""
    return to_nfa(erase_captures(node))


def dfa_for(node: ast.Node, minimize: bool = True) -> Dfa:
    """Compile ``node`` (purely regular, captures allowed and erased) to a DFA."""
    cached = _DFA_CACHE.get(node)
    if cached is not None:
        return cached
    dfa = determinize(nfa_for(node))
    if minimize and dfa.n_states <= 512:
        dfa = dfa.minimize()
    _DFA_CACHE[node] = dfa
    return dfa


def complement_dfa_for(node: ast.Node) -> Dfa:
    """The complement automaton (drives ``∉ L(r)`` constraints of §4.4)."""
    cached = _COMPLEMENT_CACHE.get(node)
    if cached is not None:
        return cached
    dfa = dfa_for(node).complement()
    _COMPLEMENT_CACHE[node] = dfa
    return dfa


def dfa_for_pattern(source: str, flags: str = "") -> Dfa:
    """Parse classical regex text and compile it — convenience for tests."""
    pattern = parse_pattern(source, flags if flags else "")
    return dfa_for(pattern.body)


def intersect_all(dfas: Iterable[Dfa]) -> Optional[Dfa]:
    """Intersection of a collection of DFAs (``None`` for an empty input)."""
    result: Optional[Dfa] = None
    for dfa in dfas:
        result = dfa if result is None else result.intersect(dfa)
    return result


def membership_witness(node: ast.Node) -> Optional[str]:
    """A shortest word in ``L(node)``, or ``None`` if the language is empty."""
    return dfa_for(node).shortest_word()
