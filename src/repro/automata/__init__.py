"""Classical regular-language engine (the paper's base-case substrate).

Purely regular regex fragments — the leaves the model translation of §4
bottoms out in — are compiled here to automata supporting membership,
complement (for §4.4 non-membership), intersection, emptiness and
length-ordered word enumeration (which powers the string solver's
candidate generation).
"""

from repro.automata.build import NotRegularError, erase_captures, to_nfa
from repro.automata.cache import (
    AutomataInterner,
    DfaDiskStore,
    node_fingerprint,
)
from repro.automata.dfa import Dfa, determinize
from repro.automata.lazy import (
    LazyProduct,
    LazyUnion,
    lazy_intersect_all,
    lazy_union_all,
)
from repro.automata.nfa import Nfa
from repro.automata.ops import (
    automata_cache_counters,
    clear_caches,
    complement_dfa_for,
    configure_automata_cache,
    dfa_for,
    dfa_for_pattern,
    intersect_all,
    membership_witness,
    nfa_for,
)
from repro.automata.visualize import to_dot

__all__ = [
    "AutomataInterner",
    "Dfa",
    "DfaDiskStore",
    "LazyProduct",
    "LazyUnion",
    "Nfa",
    "NotRegularError",
    "automata_cache_counters",
    "clear_caches",
    "complement_dfa_for",
    "configure_automata_cache",
    "determinize",
    "dfa_for",
    "dfa_for_pattern",
    "erase_captures",
    "intersect_all",
    "lazy_intersect_all",
    "lazy_union_all",
    "membership_witness",
    "nfa_for",
    "node_fingerprint",
    "to_dot",
    "to_nfa",
]
