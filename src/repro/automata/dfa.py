"""Deterministic finite automata: subset construction and boolean algebra.

DFAs are *complete* — every state has outgoing transitions covering the
entire code-point universe (a dead state absorbs the remainder).  That
makes complement a matter of flipping accepting states, which is what the
model's non-membership constraints (§4.4) compile to.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.regex.charclass import CharSet, partition
from repro.automata.nfa import Nfa

#: Per-state step index: parallel sorted arrays (lows, highs, targets).
_StateIndex = Tuple[List[int], List[int], List[int]]


@dataclass
class Dfa:
    """A complete DFA over interval-labelled transitions.

    ``transitions[s]`` is a list of ``(label, target)`` whose labels
    partition the universe.  ``accepts`` is a frozenset of states.
    """

    n_states: int
    start: int
    accepts: FrozenSet[int]
    transitions: Dict[int, List[Tuple[CharSet, int]]]
    #: Lazily-built per-state sorted-range index for :meth:`step` (bisect
    #: over interval bounds instead of a linear label scan).  Views that
    #: share ``transitions`` (complement, quotients) share the index too.
    _step_index: Dict[int, _StateIndex] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Memoized :meth:`live_states` result.  Depends on ``accepts`` as
    #: well as ``transitions``, so views with different accepting sets
    #: (complement, right quotients) must NOT share it — they start
    #: fresh; left quotients keep both and may inherit the memo.
    _live_states: Optional[FrozenSet[int]] = field(
        default=None, repr=False, compare=False
    )

    # -- core queries --------------------------------------------------------

    def _state_index(self, state: int) -> _StateIndex:
        index = self._step_index.get(state)
        if index is None:
            flat = [
                (lo, hi, target)
                for label, target in self.transitions[state]
                for lo, hi in label.intervals
            ]
            flat.sort()
            index = (
                [lo for lo, _, _ in flat],
                [hi for _, hi, _ in flat],
                [target for _, _, target in flat],
            )
            self._step_index[state] = index
        return index

    def step(self, state: int, ch: str) -> int:
        lows, highs, targets = self._state_index(state)
        cp = ord(ch)
        i = bisect_right(lows, cp) - 1
        if i >= 0 and cp <= highs[i]:
            return targets[i]
        raise AssertionError("complete DFA is missing a transition")

    def accepts_word(self, word: str) -> bool:
        state = self.start
        for ch in word:
            state = self.step(state, ch)
        return state in self.accepts

    def live_states(self) -> FrozenSet[int]:
        """States from which some accepting state is reachable.

        Memoized per instance: emptiness checks, ``words`` enumerations,
        and repeated CEGAR candidate proposals all re-ask this of the
        same (immutable once built) automaton, and the backward
        reachability sweep is O(states + edges) each time.
        """
        if self._live_states is not None:
            return self._live_states
        reverse: Dict[int, set] = {s: set() for s in range(self.n_states)}
        for src, edges in self.transitions.items():
            for _, dst in edges:
                reverse[dst].add(src)
        alive = set(self.accepts)
        stack = list(self.accepts)
        while stack:
            state = stack.pop()
            for pred in reverse[state]:
                if pred not in alive:
                    alive.add(pred)
                    stack.append(pred)
        self._live_states = frozenset(alive)
        return self._live_states

    def is_empty(self) -> bool:
        return self.start not in self.live_states()

    def shortest_word(self) -> Optional[str]:
        """A shortest accepted word, or ``None`` for the empty language."""
        for word in self.words(max_count=1):
            return word
        return None

    # -- quotients -------------------------------------------------------------

    def quotient_left(self, prefix: str) -> "Dfa":
        """The language ``{ x : prefix ++ x ∈ L(self) }``."""
        state = self.start
        for ch in prefix:
            state = self.step(state, ch)
        return Dfa(
            n_states=self.n_states,
            start=state,
            accepts=self.accepts,
            transitions=self.transitions,
            _step_index=self._step_index,
            _live_states=self._live_states,
        )

    def quotient_right(self, suffix: str) -> "Dfa":
        """The language ``{ x : x ++ suffix ∈ L(self) }``."""
        accepts = frozenset(
            state
            for state in range(self.n_states)
            if self._runs_to_accept(state, suffix)
        )
        return Dfa(
            n_states=self.n_states,
            start=self.start,
            accepts=accepts,
            transitions=self.transitions,
            _step_index=self._step_index,
        )

    def _runs_to_accept(self, state: int, word: str) -> bool:
        for ch in word:
            state = self.step(state, ch)
        return state in self.accepts

    # -- totality ------------------------------------------------------------

    def is_total(self) -> bool:
        """True iff every state's outgoing labels cover the universe.

        All construction paths in this package produce total DFAs, but
        hand-built (or deserialized) automata may be partial — and
        complementing a partial DFA by flipping accepting states is
        unsound (words that "fall off" a missing transition are rejected
        by both the automaton and its naive complement).
        """
        for state in range(self.n_states):
            covered = CharSet.empty()
            for label, _ in self.transitions.get(state, ()):
                covered = covered.union(label)
            if not covered.complement().is_empty():
                return False
        return True

    def completed(self) -> "Dfa":
        """A total DFA for the same language (self when already total).

        Missing transitions are routed to a fresh absorbing dead state,
        which makes the boolean algebra (complement in particular) sound
        on partial automata.
        """
        gaps: Dict[int, CharSet] = {}
        for state in range(self.n_states):
            covered = CharSet.empty()
            for label, _ in self.transitions.get(state, ()):
                covered = covered.union(label)
            missing = covered.complement()
            if not missing.is_empty():
                gaps[state] = missing
        if not gaps:
            return self
        dead = self.n_states
        transitions = {
            state: list(self.transitions.get(state, ()))
            for state in range(self.n_states)
        }
        for state, missing in gaps.items():
            transitions[state].append((missing, dead))
        transitions[dead] = [(CharSet.any(), dead)]
        return Dfa(
            n_states=self.n_states + 1,
            start=self.start,
            accepts=self.accepts,
            transitions=transitions,
        )

    # -- boolean algebra -----------------------------------------------------

    def complement(self) -> "Dfa":
        base = self.completed()
        return Dfa(
            n_states=base.n_states,
            start=base.start,
            accepts=frozenset(range(base.n_states)) - base.accepts,
            transitions=base.transitions,
            _step_index=base._step_index,
        )

    def intersect(self, other: "Dfa") -> "Dfa":
        return _product(self, other, lambda a, b: a and b)

    def union(self, other: "Dfa") -> "Dfa":
        return _product(self, other, lambda a, b: a or b)

    def difference(self, other: "Dfa") -> "Dfa":
        return _product(self, other, lambda a, b: a and not b)

    def equivalent(self, other: "Dfa") -> bool:
        return (
            self.difference(other).is_empty()
            and other.difference(self).is_empty()
        )

    # -- enumeration ---------------------------------------------------------

    def words(
        self,
        max_count: Optional[int] = None,
        max_length: int = 64,
        samples_per_edge: int = 3,
        frontier_cap: int = 4096,
    ):
        """Yield accepted words in non-decreasing length order.

        Explores a bounded breadth-first unrolling; for each transition,
        up to ``samples_per_edge`` representative characters are tried so
        the stream has variety without enumerating astronomic alphabets.
        ``frontier_cap`` bounds memory on wide automata (the exploration
        then under-approximates, which the solver compensates for with
        iterative deepening).  Used by the string solver to propose
        candidate assignments.
        """
        emitted = 0
        alive = self.live_states()
        if self.start not in alive:
            return
        # Frontier prefixes are tuples of characters, joined only when a
        # word is yielded — extending a string prefix per edge re-copies
        # the whole prefix for every sampled character (quadratic in the
        # word length across a BFS level).
        frontier: List[Tuple[int, Tuple[str, ...]]] = [(self.start, ())]
        if self.start in self.accepts:
            yield ""
            emitted += 1
            if max_count is not None and emitted >= max_count:
                return
        for _ in range(max_length):
            next_frontier: List[Tuple[int, Tuple[str, ...]]] = []
            for state, prefix in frontier:
                for label, target in self.transitions[state]:
                    if target not in alive:
                        continue
                    for ch in label.sample_chars(samples_per_edge):
                        extended = prefix + (ch,)
                        if target in self.accepts:
                            yield "".join(extended)
                            emitted += 1
                            if max_count is not None and emitted >= max_count:
                                return
                        if len(next_frontier) < frontier_cap:
                            next_frontier.append((target, extended))
            frontier = next_frontier
            if not frontier:
                return

    # -- minimization --------------------------------------------------------

    def minimize(self) -> "Dfa":
        """Moore partition refinement (keeps labels as minterms)."""
        labels = _minterms_of(self)
        # Initial partition: accepting vs non-accepting.
        block_of = [1 if s in self.accepts else 0 for s in range(self.n_states)]
        n_blocks = 2 if self.accepts and len(self.accepts) < self.n_states else 1
        if n_blocks == 1:
            block_of = [0] * self.n_states
        changed = True
        while changed:
            changed = False
            signatures: Dict[tuple, int] = {}
            new_block_of = [0] * self.n_states
            for state in range(self.n_states):
                sig = (block_of[state],) + tuple(
                    block_of[_step_minterm(self, state, label)]
                    for label in labels
                )
                if sig not in signatures:
                    signatures[sig] = len(signatures)
                new_block_of[state] = signatures[sig]
            if new_block_of != block_of:
                block_of = new_block_of
                changed = True
        n_blocks = max(block_of) + 1
        transitions: Dict[int, List[Tuple[CharSet, int]]] = {}
        for state in range(self.n_states):
            block = block_of[state]
            if block in transitions:
                continue
            transitions[block] = _merge_labels(
                [
                    (label, block_of[_step_minterm(self, state, label)])
                    for label in labels
                ]
            )
        return Dfa(
            n_states=n_blocks,
            start=block_of[self.start],
            accepts=frozenset(
                block_of[s] for s in self.accepts
            ),
            transitions=transitions,
        )


def _step_minterm(dfa: Dfa, state: int, label: CharSet) -> int:
    ch = chr(label.min_codepoint())
    return dfa.step(state, ch)


def _minterms_of(dfa: Dfa) -> List[CharSet]:
    seen: list[CharSet] = []
    for edges in dfa.transitions.values():
        for label, _ in edges:
            if label not in seen:
                seen.append(label)
    return partition(seen)


def _merge_labels(
    edges: List[Tuple[CharSet, int]]
) -> List[Tuple[CharSet, int]]:
    """Merge edges to a common target into a single labelled edge."""
    by_target: Dict[int, CharSet] = {}
    for label, target in edges:
        by_target[target] = by_target.get(target, CharSet.empty()).union(label)
    return [(label, target) for target, label in sorted(by_target.items())]


def determinize(nfa: Nfa) -> Dfa:
    """Subset construction over the NFA's minterm alphabet."""
    minterms = partition(nfa.alphabet_labels())
    start_set = nfa.epsilon_closure({nfa.start})
    index: Dict[FrozenSet[int], int] = {start_set: 0}
    order: List[FrozenSet[int]] = [start_set]
    transitions: Dict[int, List[Tuple[CharSet, int]]] = {}
    work = [start_set]
    while work:
        subset = work.pop()
        state = index[subset]
        edges: List[Tuple[CharSet, int]] = []
        for minterm in minterms:
            probe = minterm.min_codepoint()
            targets = {
                dst
                for src in subset
                for label, dst in nfa.moves.get(src, ())
                if probe in label
            }
            closure = nfa.epsilon_closure(targets) if targets else frozenset()
            if closure not in index:
                index[closure] = len(order)
                order.append(closure)
                work.append(closure)
            edges.append((minterm, index[closure]))
        transitions[state] = _merge_labels(edges)
    # Any never-expanded subsets (unreachable) are impossible by construction;
    # the empty subset acts as the (complete) dead state when it appears.
    for subset, state in index.items():
        if state not in transitions:
            transitions[state] = [(CharSet.any(), state)]
    accepts = frozenset(
        index[subset]
        for subset in order
        if subset & nfa.accepts
    )
    return Dfa(
        n_states=len(order),
        start=0,
        accepts=accepts,
        transitions=transitions,
    )


def _product(left: Dfa, right: Dfa, combine) -> Dfa:
    """Lazy product construction; labels refined pairwise on demand."""
    index: Dict[Tuple[int, int], int] = {(left.start, right.start): 0}
    order: List[Tuple[int, int]] = [(left.start, right.start)]
    transitions: Dict[int, List[Tuple[CharSet, int]]] = {}
    work = [(left.start, right.start)]
    while work:
        pair = work.pop()
        state = index[pair]
        lp, rp = pair
        edges: List[Tuple[CharSet, int]] = []
        for l_label, l_dst in left.transitions[lp]:
            for r_label, r_dst in right.transitions[rp]:
                overlap = l_label.intersect(r_label)
                if overlap.is_empty():
                    continue
                succ = (l_dst, r_dst)
                if succ not in index:
                    index[succ] = len(order)
                    order.append(succ)
                    work.append(succ)
                edges.append((overlap, index[succ]))
        transitions[state] = _merge_labels(edges)
    accepts = frozenset(
        index[(lp, rp)]
        for (lp, rp) in order
        if combine(lp in left.accepts, rp in right.accepts)
    )
    return Dfa(
        n_states=len(order),
        start=0,
        accepts=accepts,
        transitions=transitions,
    )
