"""Thompson construction: purely regular regex ASTs → ε-NFA.

Only the classical fragment is accepted (no captures, backreferences,
lookarounds, boundaries or anchors) — richer constructs are decomposed by
the model translation (§4) *before* automata are built.  Capture groups
that survive in an otherwise-regular subtree can be erased first with
:func:`erase_captures` (the paper's ``t̂`` operation from the
backreference-free quantification rule of Table 2).
"""

from __future__ import annotations

from repro.regex import ast
from repro.automata.nfa import Nfa


class NotRegularError(TypeError):
    """Raised when a non-classical construct reaches the automata layer."""


def erase_captures(node: ast.Node) -> ast.Node:
    """Rewrite capture groups to non-capturing groups (the ``t̂`` of §4.2)."""
    if isinstance(node, ast.Group):
        return ast.NonCapGroup(erase_captures(node.child))
    if isinstance(node, ast.NonCapGroup):
        return ast.NonCapGroup(erase_captures(node.child))
    if isinstance(node, ast.Quantifier):
        return ast.Quantifier(
            erase_captures(node.child), node.min, node.max, node.lazy
        )
    if isinstance(node, ast.Concat):
        return ast.Concat(tuple(erase_captures(p) for p in node.parts))
    if isinstance(node, ast.Alternation):
        return ast.Alternation(tuple(erase_captures(o) for o in node.options))
    if isinstance(node, ast.Lookahead):
        return ast.Lookahead(erase_captures(node.child), node.negative)
    return node


def to_nfa(node: ast.Node) -> Nfa:
    """Compile a purely regular AST to an ε-NFA (Thompson construction)."""
    nfa = Nfa()
    start = nfa.new_state()
    accept = nfa.new_state()
    _compile(node, nfa, start, accept)
    nfa.start = start
    nfa.accepts = {accept}
    return nfa


def _compile(node: ast.Node, nfa: Nfa, entry: int, exit_: int) -> None:
    if isinstance(node, ast.Empty):
        nfa.add_epsilon(entry, exit_)
    elif isinstance(node, ast.CharMatch):
        nfa.add_move(entry, node.charset, exit_)
    elif isinstance(node, ast.Concat):
        current = entry
        for part in node.parts[:-1]:
            nxt = nfa.new_state()
            _compile(part, nfa, current, nxt)
            current = nxt
        _compile(node.parts[-1], nfa, current, exit_)
    elif isinstance(node, ast.Alternation):
        for option in node.options:
            o_in, o_out = nfa.new_state(), nfa.new_state()
            nfa.add_epsilon(entry, o_in)
            nfa.add_epsilon(o_out, exit_)
            _compile(option, nfa, o_in, o_out)
    elif isinstance(node, ast.Quantifier):
        _compile_quantifier(node, nfa, entry, exit_)
    elif isinstance(node, (ast.NonCapGroup,)):
        _compile(node.child, nfa, entry, exit_)
    elif isinstance(node, ast.Group):
        raise NotRegularError(
            "capture group reached the automata layer; erase_captures first"
        )
    else:
        raise NotRegularError(
            f"{type(node).__name__} is not a classical regular construct"
        )


def _compile_quantifier(
    node: ast.Quantifier, nfa: Nfa, entry: int, exit_: int
) -> None:
    # Language-wise greediness is irrelevant; matching precedence is
    # handled by the CEGAR loop, so ``lazy`` is ignored here (§4.1).
    low, high = node.min, node.max
    current = entry
    for _ in range(low):
        nxt = nfa.new_state()
        _compile(node.child, nfa, current, nxt)
        current = nxt
    if high is None:
        # Kleene closure of the remainder.
        hub = nfa.new_state()
        nfa.add_epsilon(current, hub)
        body_in, body_out = nfa.new_state(), nfa.new_state()
        nfa.add_epsilon(hub, body_in)
        nfa.add_epsilon(body_out, hub)
        _compile(node.child, nfa, body_in, body_out)
        nfa.add_epsilon(hub, exit_)
    else:
        nfa.add_epsilon(current, exit_)
        for _ in range(high - low):
            nxt = nfa.new_state()
            _compile(node.child, nfa, current, nxt)
            nfa.add_epsilon(nxt, exit_)
            current = nxt
