"""Nondeterministic finite automata with interval-labelled transitions.

NFAs are produced from *purely regular* regex AST subtrees (the base case
of the paper's Table 2) by Thompson construction in
:mod:`repro.automata.build`.  Transition labels are
:class:`~repro.regex.charclass.CharSet` values, so the alphabet is the
full code-point universe without blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.regex.charclass import CharSet


@dataclass
class Nfa:
    """An ε-NFA. States are dense integers ``0 .. n_states-1``."""

    n_states: int = 0
    start: int = 0
    accepts: Set[int] = field(default_factory=set)
    #: state -> list of (label, target)
    moves: Dict[int, List[Tuple[CharSet, int]]] = field(default_factory=dict)
    #: state -> set of ε-successors
    epsilon: Dict[int, Set[int]] = field(default_factory=dict)

    def new_state(self) -> int:
        state = self.n_states
        self.n_states += 1
        return state

    def add_move(self, src: int, label: CharSet, dst: int) -> None:
        if label.is_empty():
            return
        self.moves.setdefault(src, []).append((label, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, set()).add(dst)

    # -- simulation ----------------------------------------------------------

    def epsilon_closure(self, states: Set[int]) -> frozenset[int]:
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for succ in self.epsilon.get(state, ()):
                if succ not in closure:
                    closure.add(succ)
                    stack.append(succ)
        return frozenset(closure)

    def accepts_word(self, word: str) -> bool:
        """Direct NFA simulation — used to cross-check the DFA pipeline."""
        current = self.epsilon_closure({self.start})
        for ch in word:
            nxt: Set[int] = set()
            for state in current:
                for label, dst in self.moves.get(state, ()):
                    if ch in label:
                        nxt.add(dst)
            if not nxt:
                return False
            current = self.epsilon_closure(nxt)
        return bool(current & self.accepts)

    def alphabet_labels(self) -> List[CharSet]:
        """All distinct transition labels (for minterm computation)."""
        seen: list[CharSet] = []
        for edges in self.moves.values():
            for label, _ in edges:
                if label not in seen:
                    seen.append(label)
        return seen
