"""Interned automata compilation with optional on-disk persistence.

DSE re-solves path conditions containing the same regexes thousands of
times, and the batch runner multiplies that across worker processes:
every process used to recompile the same corpus patterns from scratch.
This module provides the two layers that stop that:

- :class:`AutomataInterner` — an in-process map from a *structural
  fingerprint* of the (capture-erased) regex AST to its compiled DFA.
  Fingerprints are canonical modulo language-preserving syntax: group
  transparency and greedy/lazy markers are erased, character classes are
  keyed by their normalized code-point intervals.  Two different AST
  objects (or the same pattern parsed in two processes) intern to one
  automaton.

- :class:`DfaDiskStore` — a versioned directory of compiled DFAs keyed
  by fingerprint, so separate batch invocations (and separate worker
  processes pointed at the same path) share compilation work.  Entries
  are written atomically (temp file + ``os.replace``) and read
  defensively: a truncated, corrupted, or version-mismatched entry is
  treated as a miss and removed, never an error.

:func:`repro.automata.ops.dfa_for` consults the interner (and through
it the store); ``--automata-cache PATH`` on the CLI and the service
layer's ``automata_cache`` knobs attach a store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import weakref
from typing import Callable, Dict, List, Optional

from repro import faults
from repro.obs import metrics as _metrics
from repro.regex import ast
from repro.regex.charclass import CharSet
from repro.automata.build import NotRegularError
from repro.automata.dfa import Dfa

#: Bump when the fingerprint serialization changes meaning.
FINGERPRINT_VERSION = 1
#: Bump when the on-disk blob layout changes; old entries are ignored.
STORE_VERSION = 1
_MAGIC = "repro-automata"

#: Every live store handle in this process (weak), for the aggregate
#: corruption counters in ``obs.snapshot()`` / the daemon ``health`` op.
_OPEN_STORES: "weakref.WeakSet" = weakref.WeakSet()


def dfa_store_counters() -> Dict[str, int]:
    """Aggregate counters over every live automata store in this
    process; ``corrupt_evictions`` counts entries the defensive read
    path evicted as garbled rather than served."""
    totals = {
        "open_stores": 0,
        "loads": 0,
        "stores": 0,
        "failures": 0,
        "corrupt_evictions": 0,
    }
    for store in list(_OPEN_STORES):
        totals["open_stores"] += 1
        totals["loads"] += store.loads
        totals["stores"] += store.stores
        totals["failures"] += store.failures
        totals["corrupt_evictions"] += store.corrupt_evictions
    return totals


# -- structural fingerprints --------------------------------------------------


def node_fingerprint(node: ast.Node) -> str:
    """A canonical structural fingerprint of a purely regular AST.

    Injective modulo language-preserving normalisations: capture and
    non-capturing groups are transparent, quantifier laziness is erased
    (neither changes ``L(R)``), and character matchers are keyed by
    their normalized interval sets rather than surface syntax — so
    ``[a-c]`` and ``[cba]`` intern to the same automaton.
    """
    out: List[str] = [f"v{FINGERPRINT_VERSION}:"]
    _serialize(node, out)
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()


def _serialize(node: ast.Node, out: List[str]) -> None:
    if isinstance(node, ast.Empty):
        out.append("E")
    elif isinstance(node, ast.CharMatch):
        out.append("C[")
        out.append(
            ",".join(f"{lo}-{hi}" for lo, hi in node.charset.intervals)
        )
        out.append("]")
    elif isinstance(node, (ast.Group, ast.NonCapGroup)):
        _serialize(node.child, out)
    elif isinstance(node, ast.Concat):
        out.append("(.")
        for part in node.parts:
            _serialize(part, out)
        out.append(")")
    elif isinstance(node, ast.Alternation):
        out.append("(|")
        for option in node.options:
            _serialize(option, out)
        out.append(")")
    elif isinstance(node, ast.Quantifier):
        upper = "" if node.max is None else str(node.max)
        out.append(f"(q{node.min},{upper}:")
        _serialize(node.child, out)
        out.append(")")
    else:
        raise NotRegularError(
            f"{type(node).__name__} is not a classical regular construct"
        )


# -- DFA <-> primitive blobs --------------------------------------------------


def dfa_to_blob(dfa: Dfa) -> tuple:
    """A primitive-only, version-tagged form of ``dfa`` for serialization."""
    return (
        _MAGIC,
        STORE_VERSION,
        dfa.n_states,
        dfa.start,
        tuple(sorted(dfa.accepts)),
        tuple(
            (
                state,
                tuple(
                    (label.intervals, target)
                    for label, target in edges
                ),
            )
            for state, edges in sorted(dfa.transitions.items())
        ),
    )


def dfa_from_blob(blob: tuple) -> Dfa:
    """Rebuild a :class:`Dfa` from :func:`dfa_to_blob` output.

    Raises on any structural mismatch (wrong magic, version, or shape);
    callers treat that as a cache miss.
    """
    magic, version, n_states, start, accepts, transitions = blob
    if magic != _MAGIC or version != STORE_VERSION:
        raise ValueError(f"unsupported automata blob {magic!r} v{version!r}")
    rebuilt: Dict[int, List] = {}
    for state, edges in transitions:
        rebuilt[int(state)] = [
            (CharSet(tuple((int(lo), int(hi)) for lo, hi in intervals)),
             int(target))
            for intervals, target in edges
        ]
    return Dfa(
        n_states=int(n_states),
        start=int(start),
        accepts=frozenset(int(s) for s in accepts),
        transitions=rebuilt,
    )


# -- the on-disk store --------------------------------------------------------


class DfaDiskStore:
    """Fingerprint-keyed directory of compiled DFAs.

    Layout: ``<path>/v<STORE_VERSION>/<fingerprint>.dfa`` — the version
    segment means a format bump simply stops seeing old entries instead
    of tripping over them.  All I/O is best-effort: the store is a
    cache, so an unwritable directory or a corrupt entry degrades to
    compilation, never to failure.
    """

    def __init__(self, path: str):
        self.root = path
        self.path = os.path.join(path, f"v{STORE_VERSION}")
        os.makedirs(self.path, exist_ok=True)
        self.loads = 0
        self.stores = 0
        self.failures = 0
        #: Entries evicted by the defensive read path specifically.
        self.corrupt_evictions = 0
        _OPEN_STORES.add(self)

    def _entry(self, fingerprint: str) -> str:
        return os.path.join(self.path, f"{fingerprint}.dfa")

    def get(self, fingerprint: str) -> Optional[Dfa]:
        entry = self._entry(fingerprint)
        # Chaos hook: an installed fault plan may scribble over the
        # entry here, exercising the defensive read path below.
        faults.corrupt_file("dfa_store:get", entry, fingerprint=fingerprint)
        try:
            with open(entry, "rb") as handle:
                blob = pickle.load(handle)
            dfa = dfa_from_blob(blob)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, foreign file, stale format: drop and recompile.
            self.failures += 1
            self.corrupt_evictions += 1
            _metrics.count("automata_store_total", op="failure")
            try:
                os.unlink(entry)
            except OSError:
                pass
            return None
        self.loads += 1
        _metrics.count("automata_store_total", op="load")
        return dfa

    def put(self, fingerprint: str, dfa: Dfa) -> None:
        entry = self._entry(fingerprint)
        tmp = f"{entry}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(dfa_to_blob(dfa), handle, protocol=4)
            os.replace(tmp, entry)  # atomic: readers never see a partial file
            self.stores += 1
            _metrics.count("automata_store_total", op="store")
        except OSError:
            self.failures += 1
            _metrics.count("automata_store_total", op="failure")
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.path) if name.endswith(".dfa")
            )
        except OSError:
            return 0


# -- the interner -------------------------------------------------------------


class AutomataInterner:
    """Fingerprint → compiled DFA, with an optional disk store behind it.

    ``hits`` counts every lookup satisfied from memory (including the
    callers' node-keyed fast paths in :mod:`repro.automata.ops`),
    ``disk_hits`` loads from the store, ``misses`` actual compilations.
    """

    def __init__(self):
        self._dfas: Dict[str, Dfa] = {}
        self._complements: Dict[str, Dfa] = {}
        self.store: Optional[DfaDiskStore] = None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # -- configuration -------------------------------------------------------

    def attach_store(self, path: Optional[str]) -> None:
        """Attach (or with ``None`` detach) an on-disk store.

        Re-attaching the same path keeps the existing handle so its
        load/store counters survive across jobs in one process.  An
        unusable path (unwritable, parent is a file, ...) degrades to
        memory-only interning — the store is a cache, never a failure
        source (a batch worker must not crash on a bad cache dir).  A
        non-string ``path`` is used directly as a store-shaped object
        (cluster worker nodes pass a
        :class:`~repro.cluster.remotestore.RemoteDfaStore` here).
        """
        if path is None:
            self.store = None
        elif not isinstance(path, str):
            self.store = path
        elif self.store is None or self.store.root != path:
            try:
                self.store = DfaDiskStore(path)
            except OSError:
                self.store = None

    def reset(self) -> None:
        """Forget everything: memory, counters, and the disk handle."""
        self._dfas.clear()
        self._complements.clear()
        self.store = None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # -- lookups -------------------------------------------------------------

    def dfa(self, fingerprint: str, compile_fn: Callable[[], Dfa]) -> Dfa:
        dfa = self._dfas.get(fingerprint)
        if dfa is not None:
            self.hits += 1
            _metrics.count("automata_interner_total", outcome="hit")
            return dfa
        if self.store is not None:
            dfa = self.store.get(fingerprint)
            if dfa is not None:
                self.disk_hits += 1
                _metrics.count(
                    "automata_interner_total", outcome="disk_hit"
                )
                self._dfas[fingerprint] = dfa
                return dfa
        self.misses += 1
        _metrics.count("automata_interner_total", outcome="miss")
        dfa = compile_fn()
        self._dfas[fingerprint] = dfa
        if self.store is not None:
            self.store.put(fingerprint, dfa)
        return dfa

    def complement(
        self, fingerprint: str, derive_fn: Callable[[], Dfa]
    ) -> Dfa:
        """Memoize the complement per fingerprint.

        Complements are *derived* (an O(1) view over the base DFA), so
        they are interned in memory only — persisting them would store
        the shared transition table twice.
        """
        dfa = self._complements.get(fingerprint)
        if dfa is not None:
            self.hits += 1
            return dfa
        dfa = derive_fn()
        self._complements[fingerprint] = dfa
        return dfa

    # -- reporting -----------------------------------------------------------

    def counters(self) -> dict:
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_stores": self.store.stores if self.store else 0,
            "disk_failures": self.store.failures if self.store else 0,
            "disk_corrupt_evictions": (
                self.store.corrupt_evictions if self.store else 0
            ),
            "memory_size": len(self._dfas),
        }
        return out


def counters_delta(before: dict, after: dict) -> dict:
    """The per-run share of two :meth:`AutomataInterner.counters` snapshots."""
    return {
        key: after.get(key, 0) - before.get(key, 0)
        for key in ("hits", "misses", "disk_hits", "disk_stores")
    }
