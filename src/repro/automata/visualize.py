"""Graphviz DOT export for automata (debugging/teaching aid).

``to_dot(dfa)`` renders any NFA/DFA with interval labels compressed to
readable class syntax; useful when investigating why a model constraint
admits or rejects a word.
"""

from __future__ import annotations

from typing import Union

from repro.regex.charclass import CharSet
from repro.automata.dfa import Dfa
from repro.automata.nfa import Nfa


def label_of(charset: CharSet, max_parts: int = 4) -> str:
    """A compact, printable label for an interval set."""
    if charset == CharSet.any():
        return "Σ"
    parts = []
    for lo, hi in charset.intervals[:max_parts]:
        parts.append(_show(lo) if lo == hi else f"{_show(lo)}-{_show(hi)}")
    if len(charset.intervals) > max_parts:
        parts.append("…")
    return "[" + " ".join(parts) + "]"


def _show(cp: int) -> str:
    ch = chr(cp)
    if ch.isprintable() and ch not in '\\"[]':
        return ch
    if cp == 0x0A:
        return "\\\\n"
    return f"u{cp:04x}"


def to_dot(automaton: Union[Dfa, Nfa], name: str = "automaton") -> str:
    """Render as a Graphviz digraph."""
    lines = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        '  node [shape=circle, fontname="monospace"];',
        '  __start [shape=point, label=""];',
    ]
    if isinstance(automaton, Dfa):
        accepts = automaton.accepts
        lines.append(f"  __start -> s{automaton.start};")
        for state in range(automaton.n_states):
            shape = "doublecircle" if state in accepts else "circle"
            lines.append(f"  s{state} [shape={shape}];")
        for src, edges in sorted(automaton.transitions.items()):
            for charset, dst in edges:
                lines.append(
                    f'  s{src} -> s{dst} [label="{label_of(charset)}"];'
                )
    else:
        accepts = automaton.accepts
        lines.append(f"  __start -> s{automaton.start};")
        for state in range(automaton.n_states):
            shape = "doublecircle" if state in accepts else "circle"
            lines.append(f"  s{state} [shape={shape}];")
        for src, edges in sorted(automaton.moves.items()):
            for charset, dst in edges:
                lines.append(
                    f'  s{src} -> s{dst} [label="{label_of(charset)}"];'
                )
        for src, targets in sorted(automaton.epsilon.items()):
            for dst in sorted(targets):
                lines.append(f'  s{src} -> s{dst} [label="ε", style=dashed];')
    lines.append("}")
    return "\n".join(lines)
