"""Lazy DFA algebra: product automata whose states materialize on demand.

The solver's per-class automata (§4.4, §5.3) are intersections of every
positive membership with the complements of the negative ones.  Building
that product eagerly multiplies state counts before the first query runs,
even though the queries themselves — emptiness, shortest witness, bounded
word enumeration — only ever touch the states a BFS actually reaches.

Two combinators share one state-space core (:class:`_LazySpace`):

- :class:`LazyProduct` — the *intersection* of its components: a state
  is accepting when every component accepts, hopeless as soon as any
  component can no longer reach an accepting state;
- :class:`LazyUnion` — the *union*: accepting when any component
  accepts, hopeless only when no component can still accept.  This is
  the subset construction the eager path pays for up front when it
  determinizes an alternation — alternation-heavy refinements never
  need most of that space.

Both represent a state as the tuple of component states and refine
transitions pairwise *per expanded state*; nothing global is ever
constructed, and :attr:`_LazySpace.states_visited` counts exactly the
product states the traversals discovered (benchmarks assert it never
exceeds what an eager construction would have materialized).  Per-state
transition rows — the dominant per-state memo, each holding a refined
``CharSet`` edge list — live in a bounded LRU (``max_cached_states``),
so a pattern set thrashing a traversal re-derives rows instead of
holding every row at once.  (The small boolean memos and the
visited-state set still grow with distinct states visited: the LRU
bounds the heavyweight cost per state, not the traversal itself —
traversals are separately bounded by their own budgets, e.g. the
enumeration frontier cap.)

Components may be :class:`~repro.automata.dfa.Dfa` instances *or other
lazy spaces*: a :class:`LazyUnion` can sit inside a
:class:`LazyProduct` (``(A ∪ B) ∩ C``), which is how the solver
intersects an alternation-heavy membership with the class's other
constraints without materializing the union.

Complement needs no lazy machinery of its own: :meth:`Dfa.complement`
is already a view — it shares the transition table (and the per-state
step index) of the completed automaton and only flips the accepting set —
so negative memberships enter a product as cheaply as positive ones.
(The solver additionally rewrites ``∉ L(r1|...|rn)`` into the
per-option complements ``∩ ¬L(ri)`` — de Morgan — so even negated
alternations never determinize the union.)

The classes mirror the :class:`~repro.automata.dfa.Dfa` query surface
the solver relies on (``accepts_word`` / ``is_empty`` /
``shortest_word`` / ``words``), so :func:`lazy_intersect_all` and
:func:`lazy_union_all` are drop-ins on that surface.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.obs import metrics as _metrics
from repro.regex.charclass import CharSet
from repro.automata.dfa import Dfa, _merge_labels

_State = Tuple[object, ...]

#: Default bound on memoized per-state transition rows (the dominant
#: per-state memo).  Far above what healthy traversals touch; a cap hit
#: means re-deriving rows, never wrong answers.
DEFAULT_STATE_CACHE = 65536


class _DfaPart:
    """Component adapter over a plain :class:`Dfa`."""

    __slots__ = ("dfa", "_live")

    def __init__(self, dfa: Dfa):
        self.dfa = dfa
        self._live: Optional[frozenset] = None

    @property
    def start(self):
        return self.dfa.start

    def edges(self, state) -> List[Tuple[CharSet, object]]:
        return self.dfa.transitions[state]

    def step(self, state, ch: str):
        return self.dfa.step(state, ch)

    def accepting(self, state) -> bool:
        return state in self.dfa.accepts

    def live(self, state) -> bool:
        if self._live is None:
            self._live = self.dfa.live_states()
        return state in self._live


class _SpacePart:
    """Component adapter over a nested lazy space (e.g. a union inside
    a product).  Liveness delegates to the space's own may-accept
    filter, which is sound for the composition."""

    __slots__ = ("space",)

    def __init__(self, space: "_LazySpace"):
        self.space = space

    @property
    def start(self):
        return self.space.start

    def edges(self, state) -> List[Tuple[CharSet, object]]:
        return self.space.edges_from(state)

    def step(self, state, ch: str):
        return self.space.step(state, ch)

    def accepting(self, state) -> bool:
        return self.space.is_accepting(state)

    def live(self, state) -> bool:
        return self.space.plausible(state)


def _part(component) -> object:
    if isinstance(component, _LazySpace):
        return _SpacePart(component)
    return _DfaPart(component)


class _LazySpace:
    """Shared on-demand state-space machinery (see module docstring).

    Subclasses define the boolean combination: :meth:`_combine` folds
    per-component acceptance, :meth:`_combine_live` folds per-component
    liveness into the sound may-accept filter :meth:`plausible`.
    """

    #: ``all`` for intersections, ``any`` for unions.
    _combine = staticmethod(all)
    _combine_live = staticmethod(all)
    #: Metrics label for exploration counters (see ``_record_exploration``).
    kind = "space"

    def __init__(
        self,
        components: Sequence,
        max_cached_states: Optional[int] = DEFAULT_STATE_CACHE,
    ):
        if not components:
            raise ValueError(
                f"{type(self).__name__} needs at least one component"
            )
        #: The raw components (Dfa or nested lazy spaces), as given.
        self.components: List = list(components)
        self._parts = [_part(c) for c in self.components]
        self.start: _State = tuple(p.start for p in self._parts)
        self.max_cached_states = max_cached_states
        #: Distinct product states discovered by structured traversals
        #: (BFS / enumeration / materialization) — the "materialized
        #: state" count the benchmarks compare against the eager space.
        self._seen: Set[_State] = set()
        self._empty: Optional[bool] = None
        #: Per-state memos: a BFS frontier revisits the same product
        #: state at many prefixes, so edges are refined (and liveness /
        #: acceptance decided) once per *state*, not once per visit.
        #: The edge rows — the heavy memo — are a bounded LRU.
        self._edges: "OrderedDict[_State, List[Tuple[CharSet, _State]]]" = (
            OrderedDict()
        )
        self._accepting: Dict[_State, bool] = {}
        self._plausible: Dict[_State, bool] = {}
        self._co_accessible: Dict[_State, bool] = {}
        #: Transition rows dropped by the LRU bound (instrumentation).
        self.states_evicted = 0

    # -- instrumentation -----------------------------------------------------

    @property
    def states_visited(self) -> int:
        return len(self._seen)

    def _record_exploration(self, seen_before: int) -> None:
        """Mirror a traversal's newly discovered states into metrics."""
        delta = len(self._seen) - seen_before
        if delta:
            _metrics.count(
                "lazy_states_visited_total", delta, kind=self.kind
            )

    # -- state-local queries -------------------------------------------------

    def is_accepting(self, state: _State) -> bool:
        cached = self._accepting.get(state)
        if cached is None:
            cached = self._combine(
                p.accepting(s) for p, s in zip(self._parts, state)
            )
            self._accepting[state] = cached
        return cached

    def plausible(self, state: _State) -> bool:
        """Sound may-accept filter over per-component liveness."""
        cached = self._plausible.get(state)
        if cached is None:
            cached = self._combine_live(
                p.live(s) for p, s in zip(self._parts, state)
            )
            self._plausible[state] = cached
        return cached

    def step(self, state: _State, ch: str) -> _State:
        return tuple(
            p.step(s, ch) for p, s in zip(self._parts, state)
        )

    def accepts_word(self, word: str) -> bool:
        state = self.start
        for ch in word:
            state = self.step(state, ch)
        return self.is_accepting(state)

    def edges_from(self, state: _State) -> List[Tuple[CharSet, _State]]:
        """Outgoing product edges; labels partition the universe.

        Labels are refined left to right against the running overlap, so
        a character class that already vanished against the first
        components never multiplies against the rest.  Edges to a common
        target are merged, and the result is memoized per state in the
        bounded LRU — this *is* the on-demand materialization: a state's
        transition row exists exactly while it is hot.
        """
        cached = self._edges.get(state)
        if cached is not None:
            self._edges.move_to_end(state)
            return cached
        parts: List[Tuple[CharSet, _State]] = [(CharSet.any(), ())]
        for part, s in zip(self._parts, state):
            refined: List[Tuple[CharSet, _State]] = []
            for label, targets in parts:
                for c_label, c_target in part.edges(s):
                    overlap = label.intersect(c_label)
                    if not overlap.is_empty():
                        refined.append((overlap, targets + (c_target,)))
            parts = refined
        by_target: Dict[_State, CharSet] = {}
        for label, target in parts:
            existing = by_target.get(target)
            by_target[target] = (
                label if existing is None else existing.union(label)
            )
        edges = [(label, target) for target, label in by_target.items()]
        if (
            self.max_cached_states is not None
            and len(self._edges) >= self.max_cached_states
        ):
            self._edges.popitem(last=False)
            self.states_evicted += 1
        self._edges[state] = edges
        return edges

    def co_accessible(self, state: _State) -> bool:
        """Exact may-accept: some accepting product state is reachable.

        The component-wise :meth:`plausible` filter is sound but not
        complete — e.g. every intersection component can be live while
        their *product* is dead (incompatible parities), and word
        enumeration pruned only component-wise would walk such dead
        regions, wasting the bounded frontier.  This check is exact and
        amortized: a refuted search marks its entire closure dead
        (nothing in a closed accept-free region reaches an accept), a
        successful one marks the discovery path live.
        """
        cached = self._co_accessible.get(state)
        if cached is not None:
            return cached
        if not self.plausible(state):
            self._co_accessible[state] = False
            return False
        parents: Dict[_State, _State] = {}
        visited: Set[_State] = {state}
        queue: deque = deque([state])
        found: Optional[_State] = None
        while queue and found is None:
            current = queue.popleft()
            if self.is_accepting(current) or self._co_accessible.get(
                current
            ):
                found = current
                break
            for _, target in self.edges_from(current):
                if target in visited:
                    continue
                if self._co_accessible.get(target) is False:
                    continue
                if not self.plausible(target):
                    continue
                visited.add(target)
                self._seen.add(target)
                parents[target] = current
                queue.append(target)
        if found is None:
            # The whole explored closure is accept-free and closed under
            # (plausible, not-known-dead) successors: all of it is dead.
            for dead in visited:
                self._co_accessible[dead] = False
            return False
        while found != state:
            self._co_accessible[found] = True
            found = parents[found]
        self._co_accessible[state] = True
        return True

    # -- language queries ----------------------------------------------------

    def shortest_word(self) -> Optional[str]:
        """A shortest accepted word, or ``None`` for the empty language.

        BFS over the product space with per-component liveness pruning;
        terminates on the first accepting state (or after exhausting the
        finitely many reachable product states), materializing only what
        it visits.
        """
        seen0 = len(self._seen)
        try:
            return self._shortest_word()
        finally:
            self._record_exploration(seen0)

    def _shortest_word(self) -> Optional[str]:
        if self._empty:
            return None
        start = self.start
        if not self.plausible(start):
            self._empty = True
            return None
        self._seen.add(start)
        if self.is_accepting(start):
            self._empty = False
            return ""
        parents: Dict[_State, Tuple[_State, str]] = {}
        queue: deque = deque([start])
        visited: Set[_State] = {start}
        while queue:
            state = queue.popleft()
            for label, target in self.edges_from(state):
                if target in visited or not self.plausible(target):
                    continue
                visited.add(target)
                self._seen.add(target)
                parents[target] = (state, chr(label.min_codepoint()))
                if self.is_accepting(target):
                    chars: List[str] = []
                    cursor = target
                    while cursor != start:
                        cursor, ch = parents[cursor]
                        chars.append(ch)
                    self._empty = False
                    return "".join(reversed(chars))
                queue.append(target)
        self._empty = True
        return None

    def is_empty(self) -> bool:
        if self._empty is None:
            self.shortest_word()
        return bool(self._empty)

    def words(
        self,
        max_count: Optional[int] = None,
        max_length: int = 64,
        samples_per_edge: int = 3,
        frontier_cap: int = 4096,
    ) -> Iterator[str]:
        """Accepted words in non-decreasing length order.

        Same contract (length order, per-edge character sampling,
        bounded frontier) as :meth:`Dfa.words`, run over the lazy
        space.  The exact emptiness BFS runs first so a dead language
        never pays the bounded unrolling.
        """
        seen0 = len(self._seen)
        try:
            yield from self._words(
                max_count, max_length, samples_per_edge, frontier_cap
            )
        finally:
            self._record_exploration(seen0)

    def _words(
        self,
        max_count: Optional[int],
        max_length: int,
        samples_per_edge: int,
        frontier_cap: int,
    ) -> Iterator[str]:
        if self.is_empty():
            return
        emitted = 0
        frontier: List[Tuple[_State, Tuple[str, ...]]] = [(self.start, ())]
        self._seen.add(self.start)
        if self.is_accepting(self.start):
            yield ""
            emitted += 1
            if max_count is not None and emitted >= max_count:
                return
        # Frontier entries revisit states (and hence labels) at many
        # prefixes within one enumeration; sample each label once.
        samples: Dict[CharSet, List[str]] = {}
        for _ in range(max_length):
            next_frontier: List[Tuple[_State, Tuple[str, ...]]] = []
            for state, prefix in frontier:
                for label, target in self.edges_from(state):
                    # Exact pruning (parity with Dfa.words' live-state
                    # filter): dead regions must not displace live
                    # states within the bounded frontier.
                    if not self.co_accessible(target):
                        continue
                    self._seen.add(target)
                    accepting = self.is_accepting(target)
                    chars = samples.get(label)
                    if chars is None:
                        chars = label.sample_chars(samples_per_edge)
                        samples[label] = chars
                    for ch in chars:
                        extended = prefix + (ch,)
                        if accepting:
                            yield "".join(extended)
                            emitted += 1
                            if max_count is not None and emitted >= max_count:
                                return
                        if len(next_frontier) < frontier_cap:
                            next_frontier.append((target, extended))
            frontier = next_frontier
            if not frontier:
                return

    # -- escape hatch --------------------------------------------------------

    def materialize(self) -> Dfa:
        """The eager DFA (used by tests and visualization).

        Explores every reachable product state — after this call
        ``states_visited`` equals the eager construction's state count.
        """
        seen0 = len(self._seen)
        try:
            return self._materialize()
        finally:
            self._record_exploration(seen0)

    def _materialize(self) -> Dfa:
        index: Dict[_State, int] = {self.start: 0}
        order: List[_State] = [self.start]
        transitions: Dict[int, List[Tuple[CharSet, int]]] = {}
        self._seen.add(self.start)
        work: List[_State] = [self.start]
        while work:
            state = work.pop()
            edges: List[Tuple[CharSet, int]] = []
            for label, target in self.edges_from(state):
                if target not in index:
                    index[target] = len(order)
                    order.append(target)
                    work.append(target)
                    self._seen.add(target)
                edges.append((label, index[target]))
            transitions[index[state]] = _merge_labels(edges)
        accepts = frozenset(
            index[state] for state in order if self.is_accepting(state)
        )
        return Dfa(
            n_states=len(order),
            start=0,
            accepts=accepts,
            transitions=transitions,
        )


class LazyProduct(_LazySpace):
    """The intersection of several automata, explored on the fly.

    A product state is the tuple of component states; it exists only
    while some traversal holds it.  Pruning uses per-component liveness
    (a product state is hopeless as soon as *any* component can no
    longer reach an accepting state), which is sound for intersections
    and avoids computing the product's exact live set.
    """

    _combine = staticmethod(all)
    _combine_live = staticmethod(all)
    kind = "product"


class LazyUnion(_LazySpace):
    """The union of several automata, explored on the fly.

    The lazy counterpart of determinizing an alternation: a union state
    tracks where every option is simultaneously (exactly the subset
    construction's bookkeeping), but states exist only while a traversal
    holds them, and the transition-row LRU bounds residency.  A state is
    accepting when *any* component accepts, and hopeless only when *no*
    component can still reach an accepting state.
    """

    _combine = staticmethod(any)
    _combine_live = staticmethod(any)
    kind = "union"


def lazy_intersect_all(components: Sequence):
    """Lazy intersection of a collection of automata.

    ``None`` for an empty input (no constraint), the single component
    itself for one element, a :class:`LazyProduct` otherwise.
    Components may be :class:`Dfa`\\ s or lazy spaces (e.g. a
    :class:`LazyUnion`); the result supports the query surface the
    solver needs (``accepts_word``, ``is_empty``, ``shortest_word``,
    ``words``) without ever building the eager product.
    """
    components = list(components)
    if not components:
        return None
    if len(components) == 1:
        return components[0]
    return LazyProduct(components)


def lazy_union_all(components: Sequence):
    """Lazy union of a collection of automata (``None`` for no input).

    The drop-in for determinizing an alternation eagerly: one component
    is returned unchanged, several become a :class:`LazyUnion`.
    """
    components = list(components)
    if not components:
        return None
    if len(components) == 1:
        return components[0]
    return LazyUnion(components)
