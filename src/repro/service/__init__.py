"""Batch analysis service: parallel DSE job running + shared query cache.

The orchestration layer the paper's evaluation implies (1,131 packages,
1-hour budgets, fleets of machines): a JSON-serializable job model, a
``multiprocessing`` worker-pool runner, a solver query cache keyed on
canonical formula fingerprints, and corpus-level report aggregation.
"""

from repro.service.cache import (
    CachedResult,
    CachedSolver,
    QueryCache,
    QueryDiskStore,
    SharedQueryCache,
)
from repro.service.jobs import (
    AnalyzeJob,
    FuzzJob,
    JobResult,
    SolveJob,
    SurveyJob,
    analyze_jobs_from_files,
    fuzz_workload,
    job_from_spec,
    survey_workload,
)
from repro.service.report import (
    BatchReport,
    format_analyze_table,
    format_backend_table,
    format_batch_report,
    format_route_table,
    format_session_table,
    format_soundness_table,
    merge_analyze,
    merge_automata_counters,
    merge_backend_tallies,
    merge_disagreement_tallies,
    merge_fuzz,
    merge_route_tallies,
    merge_session_tallies,
    merge_solve,
    merge_survey,
)
from repro.service.runner import BatchRunner, RunnerConfig

__all__ = [
    "AnalyzeJob",
    "BatchReport",
    "BatchRunner",
    "CachedResult",
    "CachedSolver",
    "FuzzJob",
    "JobResult",
    "QueryCache",
    "QueryDiskStore",
    "RunnerConfig",
    "SharedQueryCache",
    "SolveJob",
    "SurveyJob",
    "analyze_jobs_from_files",
    "format_analyze_table",
    "format_backend_table",
    "format_batch_report",
    "format_route_table",
    "format_session_table",
    "format_soundness_table",
    "fuzz_workload",
    "job_from_spec",
    "merge_analyze",
    "merge_automata_counters",
    "merge_backend_tallies",
    "merge_disagreement_tallies",
    "merge_fuzz",
    "merge_route_tallies",
    "merge_session_tallies",
    "merge_solve",
    "merge_survey",
    "survey_workload",
]
