"""The worker-pool batch runner.

Runs many jobs concurrently across ``multiprocessing`` workers, the way
the paper's evaluation fanned 1,131 packages across machines.  Design
points:

- **Process workers, persistent caches.**  Each worker process builds
  one :class:`~repro.service.cache.QueryCache` in its initializer and
  keeps it alive across every job it executes, so duplicated queries
  from different jobs hit.  With ``shared_cache=True`` a single
  manager-backed :class:`~repro.service.cache.SharedQueryCache` is
  shared by *all* workers instead.  With ``automata_cache=PATH`` every
  worker also attaches the persistent on-disk automata compilation
  store, so corpus regexes are compiled once per *path*, not once per
  process per invocation.
- **Scheduler-level dedup.**  With ``dedup=True`` jobs are coalesced
  *before* dispatch by their :meth:`~repro.service.jobs._JobBase.dedup_key`
  (for solve jobs: the canonical fingerprint of the query they pose) —
  N submitted jobs sharing a key become one single-flight execution
  whose result is fanned back out to every submitter.  This removes
  whole solves the query cache would otherwise still have to replay
  per job, and it works across workers without shared state.
- **Graceful failure capture.**  Jobs trap their own exceptions
  (``Job.run``) and come back as ``status="error"`` results; a lost or
  overdue worker task becomes ``status="timeout"``.  One bad program
  never takes down the batch.
- **Deterministic ordering.**  Results are collected per-submission-slot
  and reported in submission order no matter which worker finished
  first.
- **Bounded jobs.**  Per-job wall budgets are enforced inside the job
  (engine time budgets, solver timeouts); ``job_timeout`` is the outer
  backstop while waiting on a worker.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs.export import ObsRun
from repro.service.cache import QueryCache, SharedQueryCache
from repro.service.jobs import JobResult, _JobBase, job_from_spec
from repro.solver.backends import CachedBackend, make_backend

#: Per-worker-process state, installed by the pool initializer and
#: reused by every job the worker executes.
_WORKER_CACHE: Optional[object] = None


def _worker_init(
    use_cache: bool,
    cache_size: int,
    shared_cache,
    automata_cache,
    query_cache=None,
    query_cache_max=None,
    obs_config=None,
) -> None:
    global _WORKER_CACHE
    if shared_cache is not None:
        _WORKER_CACHE = shared_cache
    elif use_cache or query_cache:
        _WORKER_CACHE = QueryCache(maxsize=cache_size)
    else:
        _WORKER_CACHE = None
    if query_cache and _WORKER_CACHE is not None:
        _WORKER_CACHE.attach_store(query_cache, max_entries=query_cache_max)
    if automata_cache:
        from repro.automata import configure_automata_cache

        configure_automata_cache(automata_cache)
    obs.configure_worker(obs_config)


def _make_solver_factory(cache) -> Callable[..., object]:
    """The factory handed to every job: backend spec in, solver out.

    The job's ``backend`` spec resolves through the registry
    (``native`` when unset); when the worker keeps a query cache, the
    resolved backend is decorated with a :class:`CachedBackend` sharing
    that cache across every job the worker executes.  A *job-level*
    ``query_cache`` directory stays job-private: the runner-wide cache
    is shared by unrelated jobs, so one job's persistence request must
    not silently leak answers to (or from) the rest — unless the runner
    itself was configured with the same directory, in which case the
    worker store already covers it.
    """

    def factory(
        timeout: float = 20.0,
        backend=None,
        stats=None,
        query_cache=None,
        query_cache_max=None,
    ):
        spec = backend
        if (
            cache is not None
            and isinstance(spec, str)
            and spec.startswith("cached:")
        ):
            # The worker's (shared) cache *is* the decoration an outer
            # ``cached:`` asks for — strip it instead of stacking a
            # second, job-private cache in front of it.
            spec = spec[len("cached:"):]
        base = make_backend(
            spec,
            timeout=timeout,
            stats=stats,
            query_cache=query_cache,
            query_cache_max=query_cache_max,
        )
        worker_store = getattr(cache, "store", None)
        if query_cache and (
            worker_store is None or worker_store.root != query_cache
        ):
            had_cached_spec = isinstance(backend, str) and backend.startswith(
                "cached:"
            )
            if cache is not None or not had_cached_spec:
                # A job-private persistent tier (under the worker
                # decoration, when there is one).  Skipped only when the
                # job's own ``cached:`` level already carries the store
                # (no worker cache stripped it away).
                base = CachedBackend(
                    base,
                    cache=QueryCache(
                        store_path=query_cache,
                        store_max_entries=query_cache_max,
                    ),
                    tally_stats=stats,
                )
        if cache is None:
            return base
        return CachedBackend(base, cache=cache, tally_stats=stats)

    return factory


def _run_spec(spec: dict) -> dict:
    """Worker-side job execution (module-level so it pickles)."""
    job = job_from_spec(spec)
    result = job.run(solver_factory=_make_solver_factory(_WORKER_CACHE))
    # Ship this worker's cumulative metrics through the spool at every
    # job boundary; the runner's merge keeps the latest per pid.
    obs.checkpoint()
    return result.to_spec()


@dataclass
class RunnerConfig:
    """Knobs of the batch runner."""

    workers: int = 2  # 0 = run inline in this process (no pool)
    job_timeout: float = 300.0  # outer backstop per job, seconds
    use_cache: bool = True
    cache_size: int = 4096
    shared_cache: bool = False  # one manager-backed cache for all workers
    #: Directory of the persistent automata compilation store; attached
    #: in every worker (and inline) so batch invocations pointed at the
    #: same path share compiled DFAs across processes and runs.
    automata_cache: Optional[str] = None
    #: Directory of the persistent solver *query* store; attached to
    #: every worker's query cache (and the inline cache) so definitive
    #: answers survive across batch invocations pointed at the same
    #: path — the warm second batch replays solves from disk.
    query_cache: Optional[str] = None
    #: Entry cap of the persistent query store (age-based GC evicts the
    #: oldest-mtime entries past it); ``None`` leaves it unbounded.
    query_cache_max: Optional[int] = None
    #: Coalesce jobs with identical ``dedup_key()`` into single-flight
    #: executions before dispatch (scheduler-level query dedup).
    dedup: bool = False
    #: Observability (all off by default — the strictly-disabled path):
    #: merged trace output file, its format (``jsonl`` | ``chrome``),
    #: batch-level metrics JSON, and the slow-query threshold in ms.
    trace: Optional[str] = None
    trace_format: str = "jsonl"
    metrics_json: Optional[str] = None
    slow_query_ms: Optional[float] = None


class BatchRunner:
    """Run a batch of service jobs and collect ordered results."""

    def __init__(self, config: Optional[RunnerConfig] = None, **kwargs):
        self.config = config or RunnerConfig(**kwargs)
        if self.config.workers < 0:
            raise ValueError("workers must be >= 0")
        self._obs_run: Optional[ObsRun] = None

    def run(self, jobs: Sequence[_JobBase]) -> "BatchReport":
        from repro.service.report import BatchReport

        started = time.monotonic()
        jobs = list(jobs)
        obs_run = ObsRun.start(
            trace=self.config.trace,
            trace_format=self.config.trace_format,
            metrics_json=self.config.metrics_json,
            slow_query_ms=self.config.slow_query_ms,
        )
        self._obs_run = obs_run
        try:
            with obs.span(
                "batch:run",
                jobs=len(jobs),
                workers=self.config.workers,
            ):
                if self.config.dedup:
                    unique_jobs, assignment = _coalesce(jobs)
                else:
                    unique_jobs, assignment = jobs, list(range(len(jobs)))
                if self.config.workers == 0:
                    executed = self._run_inline(unique_jobs)
                else:
                    executed = self._run_pool(unique_jobs)
            results = _fan_out(jobs, unique_jobs, executed, assignment)
        except BaseException:
            if obs_run is not None:
                obs_run.abort()
            raise
        finally:
            self._obs_run = None
        summary = obs_run.finish() if obs_run is not None else None
        report = BatchReport(
            results=results,
            wall_time=time.monotonic() - started,
            workers=self.config.workers,
            jobs_submitted=len(jobs),
            jobs_executed=len(unique_jobs),
        )
        if summary is not None:
            report.trace_path = summary.trace_path
            report.metrics_path = summary.metrics_path
            report.slow_queries = summary.slow_queries
            report.obs_pids = summary.pids
        return report

    # -- execution strategies ------------------------------------------------

    def _run_inline(self, jobs: Sequence[_JobBase]) -> List[JobResult]:
        if self.config.automata_cache:
            from repro.automata import configure_automata_cache

            configure_automata_cache(self.config.automata_cache)
        cache = (
            QueryCache(maxsize=self.config.cache_size)
            if self.config.use_cache or self.config.query_cache
            else None
        )
        if cache is not None and self.config.query_cache:
            cache.attach_store(
                self.config.query_cache,
                max_entries=self.config.query_cache_max,
            )
        factory = _make_solver_factory(cache)
        return [job.run(solver_factory=factory) for job in jobs]

    def _run_pool(self, jobs: Sequence[_JobBase]) -> List[JobResult]:
        specs = [job.to_spec() for job in jobs]
        manager = None
        shared = None
        if self.config.shared_cache and self.config.use_cache:
            manager = multiprocessing.Manager()
            shared = SharedQueryCache.create(
                manager, maxsize=self.config.cache_size
            )
        try:
            with multiprocessing.Pool(
                processes=self.config.workers,
                initializer=_worker_init,
                initargs=(
                    self.config.use_cache,
                    self.config.cache_size,
                    shared,
                    self.config.automata_cache,
                    self.config.query_cache,
                    self.config.query_cache_max,
                    self._obs_run.worker_config()
                    if self._obs_run is not None
                    else None,
                ),
            ) as pool:
                pending = [
                    pool.apply_async(_run_spec, (spec,)) for spec in specs
                ]
                results: List[JobResult] = []
                for job, handle in zip(jobs, pending):
                    try:
                        results.append(
                            JobResult.from_spec(
                                handle.get(timeout=self.config.job_timeout)
                            )
                        )
                    except multiprocessing.TimeoutError:
                        results.append(
                            JobResult(
                                job_id=job.job_id,
                                kind=job.KIND,
                                status="timeout",
                                seconds=self.config.job_timeout,
                                error=(
                                    "job exceeded the runner's "
                                    f"{self.config.job_timeout}s backstop"
                                ),
                            )
                        )
                    except Exception as exc:  # worker died, unpicklable, ...
                        results.append(
                            JobResult(
                                job_id=job.job_id,
                                kind=job.KIND,
                                status="error",
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        )
                return results
        finally:
            if manager is not None:
                manager.shutdown()


# -- scheduler-level dedup ----------------------------------------------------


def _coalesce(
    jobs: Sequence[_JobBase],
) -> Tuple[List[_JobBase], List[int]]:
    """Group jobs by ``dedup_key``; return (representatives, assignment).

    ``assignment[i]`` is the representative index executing submitted
    job ``i``.  Jobs whose key is ``None`` always represent themselves.
    """
    by_key: Dict[str, int] = {}
    unique: List[_JobBase] = []
    assignment: List[int] = []
    for job in jobs:
        key = job.dedup_key()
        slot = by_key.get(key) if key is not None else None
        if slot is None:
            slot = len(unique)
            unique.append(job)
            if key is not None:
                by_key[key] = slot
        assignment.append(slot)
    return unique, assignment


def _fan_out(
    jobs: Sequence[_JobBase],
    unique_jobs: Sequence[_JobBase],
    executed: Sequence[JobResult],
    assignment: Sequence[int],
) -> List[JobResult]:
    """Expand representative results back to submission order.

    A coalesced job receives a copy of its representative's result with
    its own ``job_id``, zeroed work counters (it performed no solves of
    its own — that is the point), and a ``deduped_from`` marker so the
    report can tell replayed results from executed ones.
    """
    results: List[JobResult] = []
    for job, slot in zip(jobs, assignment):
        rep_result = executed[slot]
        if unique_jobs[slot] is job:
            results.append(rep_result)
            continue
        payload = dict(rep_result.payload)
        payload["deduped_from"] = unique_jobs[slot].job_id
        if "name" in payload:
            # Analyze payloads carry a display name derived from the
            # job's own path; a replayed copy must not keep the
            # representative's (reports would list one program twice).
            payload["name"] = getattr(job, "path", None) or job.job_id
        for zeroed, value in (
            ("solver_queries", 0),
            ("solver_seconds", 0.0),
            ("backend_tallies", {}),
            ("session_tallies", {}),
            ("route_tallies", {}),
            ("automata_cache", {}),
        ):
            if zeroed in payload:
                payload[zeroed] = value
        results.append(
            JobResult(
                job_id=job.job_id,
                kind=rep_result.kind,
                status=rep_result.status,
                seconds=0.0,
                payload=payload,
                error=rep_result.error,
                cache_hits=0,
                cache_misses=0,
            )
        )
    return results
