"""The worker-pool batch runner.

Runs many jobs concurrently across ``multiprocessing`` workers, the way
the paper's evaluation fanned 1,131 packages across machines.  Design
points:

- **Process workers, persistent caches.**  Each worker process builds
  one :class:`~repro.service.cache.QueryCache` in its initializer and
  keeps it alive across every job it executes, so duplicated queries
  from different jobs hit.  With ``shared_cache=True`` a single
  manager-backed :class:`~repro.service.cache.SharedQueryCache` is
  shared by *all* workers instead.  With ``automata_cache=PATH`` every
  worker also attaches the persistent on-disk automata compilation
  store, so corpus regexes are compiled once per *path*, not once per
  process per invocation.
- **Scheduler-level dedup.**  With ``dedup=True`` jobs are coalesced
  *before* dispatch by their :meth:`~repro.service.jobs._JobBase.dedup_key`
  (for solve jobs: the canonical fingerprint of the query they pose) —
  N submitted jobs sharing a key become one single-flight execution
  whose result is fanned back out to every submitter.  This removes
  whole solves the query cache would otherwise still have to replay
  per job, and it works across workers without shared state.
- **Graceful failure capture.**  Jobs trap their own exceptions
  (``Job.run``) and come back as ``status="error"`` results; a lost or
  overdue worker task becomes ``status="timeout"``.  One bad program
  never takes down the batch.
- **Self-healing workers.**  Every pool dispatch is tracked (a worker
  announces job start/end on a side-channel queue), and a monitor
  thread watches for two failure shapes: a *dead* worker (its job is
  synthesized into a ``WorkerCrashed`` error the moment the process is
  gone — no waiting out the backstop) and a *wedged* worker (past
  ``job_timeout`` it is SIGKILLed so the pool respawns it and the slot
  is never permanently lost).  Either way the dispatch record is
  consumed exactly once: a late result from a healed slot is dropped,
  never double-delivered.
- **Bounded retries + quarantine.**  With ``retry_max > 0`` the
  :class:`~repro.faults.RetryPolicy` re-drives crashed/timed-out jobs
  with exponential backoff and deterministic jitter; a poison job that
  keeps killing workers is quarantined (``status="quarantined"``)
  instead of crash-looping the pool.
- **Deterministic ordering.**  Results are collected per-submission-slot
  and reported in submission order no matter which worker finished
  first.
- **Bounded jobs.**  Per-job wall budgets are enforced inside the job
  (engine time budgets, solver timeouts); ``job_timeout`` is the outer
  backstop while waiting on a worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_module
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import faults, obs
from repro.faults.retry import RetryPolicy, crash_result
from repro.obs import metrics as _metrics
from repro.obs.export import ObsRun
from repro.service.cache import QueryCache, SharedQueryCache
from repro.service.jobs import JobResult, _JobBase, job_from_spec
from repro.solver.backends import CachedBackend, make_backend

#: Per-worker-process state, installed by the pool initializer and
#: reused by every job the worker executes.
_WORKER_CACHE: Optional[object] = None
#: The runner's start/end side channel (a ``multiprocessing.Queue``)
#: the self-healing monitor reads; ``None`` outside a tracked pool.
_WORKER_EVENTS = None


def _worker_init(
    use_cache: bool,
    cache_size: int,
    shared_cache,
    automata_cache,
    query_cache=None,
    query_cache_max=None,
    obs_config=None,
    session_idle_s=None,
    fault_plan=None,
    events=None,
) -> None:
    global _WORKER_CACHE, _WORKER_EVENTS
    if shared_cache is not None:
        _WORKER_CACHE = shared_cache
    elif use_cache or query_cache:
        _WORKER_CACHE = QueryCache(maxsize=cache_size)
    else:
        _WORKER_CACHE = None
    if query_cache and _WORKER_CACHE is not None:
        _WORKER_CACHE.attach_store(query_cache, max_entries=query_cache_max)
    if automata_cache:
        from repro.automata import configure_automata_cache

        configure_automata_cache(automata_cache)
    if session_idle_s:
        from repro.solver.backends import get_session_pool

        get_session_pool().set_idle_timeout(session_idle_s)
    obs.configure_worker(obs_config)
    # With no plan given this *clears* any plan inherited via fork and
    # falls back to REPRO_FAULT_PLAN — worker fault state is always
    # deterministic, and a respawned worker restarts its hit counters.
    faults.install(fault_plan)
    _WORKER_EVENTS = events


def _make_solver_factory(cache) -> Callable[..., object]:
    """The factory handed to every job: backend spec in, solver out.

    The job's ``backend`` spec resolves through the registry
    (``native`` when unset); when the worker keeps a query cache, the
    resolved backend is decorated with a :class:`CachedBackend` sharing
    that cache across every job the worker executes.  A *job-level*
    ``query_cache`` directory stays job-private: the runner-wide cache
    is shared by unrelated jobs, so one job's persistence request must
    not silently leak answers to (or from) the rest — unless the runner
    itself was configured with the same directory, in which case the
    worker store already covers it.
    """

    def factory(
        timeout: float = 20.0,
        backend=None,
        stats=None,
        query_cache=None,
        query_cache_max=None,
    ):
        spec = backend
        if (
            cache is not None
            and isinstance(spec, str)
            and spec.startswith("cached:")
        ):
            # The worker's (shared) cache *is* the decoration an outer
            # ``cached:`` asks for — strip it instead of stacking a
            # second, job-private cache in front of it.
            spec = spec[len("cached:"):]
        base = make_backend(
            spec,
            timeout=timeout,
            stats=stats,
            query_cache=query_cache,
            query_cache_max=query_cache_max,
        )
        worker_store = getattr(cache, "store", None)
        if query_cache and (
            worker_store is None or worker_store.root != query_cache
        ):
            had_cached_spec = isinstance(backend, str) and backend.startswith(
                "cached:"
            )
            if cache is not None or not had_cached_spec:
                # A job-private persistent tier (under the worker
                # decoration, when there is one).  Skipped only when the
                # job's own ``cached:`` level already carries the store
                # (no worker cache stripped it away).
                base = CachedBackend(
                    base,
                    cache=QueryCache(
                        store_path=query_cache,
                        store_max_entries=query_cache_max,
                    ),
                    tally_stats=stats,
                )
        if cache is None:
            return base
        return CachedBackend(base, cache=cache, tally_stats=stats)

    return factory


def _run_spec(spec: dict) -> dict:
    """Worker-side job execution (module-level so it pickles)."""
    job = job_from_spec(spec)
    result = job.run(solver_factory=_make_solver_factory(_WORKER_CACHE))
    # Ship this worker's cumulative metrics through the spool at every
    # job boundary; the runner's merge keeps the latest per pid.
    obs.checkpoint()
    return result.to_spec()


def _run_spec_tracked(spec: dict, token: int) -> dict:
    """:func:`_run_spec` plus start/end events for the healing monitor.

    The ``start`` event binds the dispatch token to this worker's pid
    *before* anything can crash, so a SIGKILL mid-job (real or from the
    ``worker:job`` fault site) is attributable to exactly one job.  The
    ``end`` event clears the wedge/crash suspicion; a worker that dies
    after it delivers is nobody's fault.
    """
    events = _WORKER_EVENTS
    pid = os.getpid()
    if events is not None:
        try:
            events.put(("start", token, pid))
        except Exception:
            pass
    try:
        faults.crash_point("worker:job", job_id=spec.get("job_id", ""))
        return _run_spec(spec)
    finally:
        if events is not None:
            try:
                events.put(("end", token, pid))
            except Exception:
                pass


@dataclass
class _Dispatch:
    """One in-flight pool dispatch, consumed exactly once."""

    job_id: str
    kind: str
    deliver: Callable[[JobResult], None]
    submitted_at: float
    pid: Optional[int] = None
    started_at: Optional[float] = None
    ended: bool = False
    #: The pool's ``AsyncResult`` — kept so a monitor-settled job can be
    #: struck from the pool's pending-task cache (a task lost to a dead
    #: worker otherwise pins ``Pool.join`` forever).
    handle: Optional[object] = None


@dataclass
class RunnerConfig:
    """Knobs of the batch runner."""

    workers: int = 2  # 0 = run inline in this process (no pool)
    #: Thread count of the *persistent* inline executor
    #: (:meth:`BatchRunner.start` with ``workers == 0``) — lets an
    #: inline serve daemon overlap jobs without process workers.  The
    #: threads share one query cache (thread-safe); classic
    #: :meth:`BatchRunner.run` inline batches stay strictly serial.
    inline_concurrency: int = 1
    job_timeout: float = 300.0  # outer backstop per job, seconds
    use_cache: bool = True
    cache_size: int = 4096
    shared_cache: bool = False  # one manager-backed cache for all workers
    #: Directory of the persistent automata compilation store; attached
    #: in every worker (and inline) so batch invocations pointed at the
    #: same path share compiled DFAs across processes and runs.
    automata_cache: Optional[str] = None
    #: Directory of the persistent solver *query* store; attached to
    #: every worker's query cache (and the inline cache) so definitive
    #: answers survive across batch invocations pointed at the same
    #: path — the warm second batch replays solves from disk.
    query_cache: Optional[str] = None
    #: Entry cap of the persistent query store (age-based GC evicts the
    #: oldest-mtime entries past it); ``None`` leaves it unbounded.
    query_cache_max: Optional[int] = None
    #: Coalesce jobs with identical ``dedup_key()`` into single-flight
    #: executions before dispatch (scheduler-level query dedup).
    dedup: bool = False
    #: Close pooled incremental solver sessions idle for this many
    #: seconds (armed in every worker and inline; ``None`` keeps the
    #: PR 5 behaviour of pinning idle sessions until process exit).
    #: The serve daemon's ``--session-idle-s`` lands here so a quiet
    #: daemon does not hold solver processes forever.
    session_idle_s: Optional[float] = None
    #: Fault tolerance: bounded retries per job for crashed-worker and
    #: backstop-timeout results (0 = the pre-existing fail-fast
    #: behaviour), their base backoff, and the poison-job fuse — after
    #: ``quarantine_after`` worker kills a job is permanently failed as
    #: ``status="quarantined"`` (default ``retry_max + 1``).
    retry_max: int = 0
    retry_backoff_s: float = 0.25
    quarantine_after: Optional[int] = None
    #: Fault-injection plan spec (``FaultPlan.to_spec()`` shape),
    #: installed in every worker — chaos testing only, never set by
    #: default.  ``None`` leaves workers to the ``REPRO_FAULT_PLAN``
    #: environment variable (unset ⇒ no faults).
    fault_plan: Optional[dict] = None
    #: Cadence of the self-healing monitor that detects dead/wedged
    #: pool workers (pool mode only).
    heal_interval_s: float = 0.2
    #: Observability (all off by default — the strictly-disabled path):
    #: merged trace output file, its format (``jsonl`` | ``chrome``),
    #: batch-level metrics JSON, and the slow-query threshold in ms.
    trace: Optional[str] = None
    trace_format: str = "jsonl"
    metrics_json: Optional[str] = None
    slow_query_ms: Optional[float] = None

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.retry_max,
            backoff_s=self.retry_backoff_s,
            quarantine_after=self.quarantine_after,
        )


class BatchRunner:
    """Run a batch of service jobs and collect ordered results.

    Two execution modes share the worker plumbing:

    - :meth:`run` — the classic batch call: a pool is created for the
      call, every job joins in submission order, one report comes back.
    - :meth:`start` / :meth:`submit` / :meth:`run_iter` / :meth:`close`
      — the as-completed seam the serve daemon multiplexes clients
      onto: one *persistent* pool outlives any single batch, jobs are
      submitted individually, and each result is delivered the moment
      it lands (a completion callback for ``submit``, an as-completed
      iterator for ``run_iter``) instead of joining per-slot.
    """

    def __init__(self, config: Optional[RunnerConfig] = None, **kwargs):
        self.config = config or RunnerConfig(**kwargs)
        if self.config.workers < 0:
            raise ValueError("workers must be >= 0")
        self.retry = self.config.retry_policy()
        self._obs_run: Optional[ObsRun] = None
        self._pool = None
        self._manager = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inline_factory: Optional[Callable[..., object]] = None
        self._started = False
        # -- self-healing state (pool mode) ---------------------------------
        self._events = None
        self._tokens = itertools.count(1)
        self._dispatches: Dict[int, _Dispatch] = {}
        self._dispatch_lock = threading.Lock()
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        # -- recovery accounting (cumulative over the runner's life) --------
        self.worker_crashes = 0
        self.heals = 0
        self.retries = 0
        self.quarantined = 0
        self.late_drops = 0

    def run(self, jobs: Sequence[_JobBase]) -> "BatchReport":
        from repro.service.report import BatchReport

        started = time.monotonic()
        jobs = list(jobs)
        if self.config.fault_plan is not None:
            faults.install(self.config.fault_plan)
        obs_run = ObsRun.start(
            trace=self.config.trace,
            trace_format=self.config.trace_format,
            metrics_json=self.config.metrics_json,
            slow_query_ms=self.config.slow_query_ms,
        )
        self._obs_run = obs_run
        try:
            with obs.span(
                "batch:run",
                jobs=len(jobs),
                workers=self.config.workers,
            ):
                if self.config.dedup:
                    unique_jobs, assignment = _coalesce(jobs)
                else:
                    unique_jobs, assignment = jobs, list(range(len(jobs)))
                if self.config.workers == 0:
                    executed = self._run_inline(unique_jobs)
                else:
                    executed = self._run_pool(unique_jobs)
            results = _fan_out(jobs, unique_jobs, executed, assignment)
        except BaseException:
            if obs_run is not None:
                obs_run.abort()
            raise
        finally:
            self._obs_run = None
        summary = obs_run.finish() if obs_run is not None else None
        report = BatchReport(
            results=results,
            wall_time=time.monotonic() - started,
            workers=self.config.workers,
            jobs_submitted=len(jobs),
            jobs_executed=len(unique_jobs),
        )
        if summary is not None:
            report.trace_path = summary.trace_path
            report.metrics_path = summary.metrics_path
            report.slow_queries = summary.slow_queries
            report.obs_pids = summary.pids
        return report

    # -- persistent pool lifecycle (the serve daemon's seam) -----------------

    @property
    def started(self) -> bool:
        return self._started

    def start(self, obs_run: Optional[ObsRun] = None) -> "BatchRunner":
        """Bring up a persistent worker pool for :meth:`submit`.

        With ``workers == 0`` jobs execute on one internal thread in
        this process (same inline cache semantics as :meth:`run`);
        otherwise a ``multiprocessing.Pool`` is created once and reused
        across every submitted job.  ``obs_run`` is the optional
        observability run whose worker config the pool initializer
        forwards.  Idempotent; pair with :meth:`close`.
        """
        if self._started:
            return self
        self._obs_run = obs_run or self._obs_run
        if self.config.fault_plan is not None:
            faults.install(self.config.fault_plan)
        if self.config.session_idle_s:
            from repro.solver.backends import get_session_pool

            get_session_pool().set_idle_timeout(self.config.session_idle_s)
        if self.config.workers == 0:
            self._inline_factory = self._build_inline_factory()
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, self.config.inline_concurrency),
                thread_name_prefix="repro-inline-job",
            )
        else:
            shared = None
            if self.config.shared_cache and self.config.use_cache:
                self._manager = multiprocessing.Manager()
                shared = SharedQueryCache.create(
                    self._manager, maxsize=self.config.cache_size
                )
            # SimpleQueue, not Queue: its put() is a synchronous locked
            # pipe write, so a worker's "start" event survives the
            # worker being SIGKILLed immediately afterwards (Queue's
            # feeder thread would race the kill and lose the event —
            # and with it the monitor's ability to settle the job).
            self._events = multiprocessing.SimpleQueue()
            self._pool = multiprocessing.Pool(
                processes=self.config.workers,
                initializer=_worker_init,
                initargs=self._worker_initargs(shared),
            )
            self._monitor_stop.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="repro-pool-monitor",
                daemon=True,
            )
            self._monitor.start()
        self._started = True
        return self

    def close(self, graceful: bool = True) -> None:
        """Tear the persistent pool down.

        ``graceful`` joins workers after their in-flight jobs finish
        (so worker ``atexit`` hooks close pooled solver sessions — no
        leaked ``Popen``); ``graceful=False`` terminates them.
        """
        if not self._started:
            return
        self._started = False
        pool, self._pool = self._pool, None
        executor, self._executor = self._executor, None
        manager, self._manager = self._manager, None
        events, self._events = self._events, None
        monitor, self._monitor = self._monitor, None
        self._inline_factory = None
        if monitor is not None:
            self._monitor_stop.set()
            monitor.join(timeout=5.0)
        if pool is not None:
            if graceful:
                pool.close()
            else:
                pool.terminate()
            pool.join()
        if executor is not None:
            executor.shutdown(wait=graceful)
        if manager is not None:
            manager.shutdown()
        if events is not None:
            events.close()
        with self._dispatch_lock:
            self._dispatches.clear()

    def __enter__(self) -> "BatchRunner":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def submit(
        self, job: _JobBase, on_done: Callable[[JobResult], None]
    ) -> Optional[int]:
        """Submit one job to the started pool; deliver as it completes.

        ``on_done`` receives the :class:`JobResult` from an internal
        thread (the pool's result handler, the healing monitor, or the
        inline executor thread) — callers that live on an event loop
        must marshal it themselves (``loop.call_soon_threadsafe``).
        Exceptions raised by ``on_done`` are swallowed: a broken
        consumer must not kill the shared result-handler thread the
        rest of the pool needs.  Returns the dispatch token in pool
        mode (``None`` inline) — delivery happens exactly once per
        token, whichever of the worker callback / crash detection /
        wedge heal gets there first.
        """
        if not self._started:
            raise RuntimeError("BatchRunner.submit() before start()")

        def deliver(result: JobResult) -> None:
            try:
                on_done(result)
            except Exception:
                pass

        def failed(exc: BaseException) -> JobResult:
            return JobResult(
                job_id=job.job_id,
                kind=job.KIND,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
            )

        if self._pool is not None:
            token = next(self._tokens)
            record = _Dispatch(
                job_id=job.job_id,
                kind=job.KIND,
                deliver=deliver,
                submitted_at=time.monotonic(),
            )
            with self._dispatch_lock:
                self._dispatches[token] = record
            try:
                record.handle = self._pool.apply_async(
                    _run_spec_tracked,
                    (job.to_spec(), token),
                    callback=lambda spec, token=token: self._settle(
                        token, JobResult.from_spec(spec)
                    ),
                    error_callback=lambda exc, token=token: self._settle(
                        token, failed(exc)
                    ),
                )
            except Exception:
                with self._dispatch_lock:
                    self._dispatches.pop(token, None)
                raise
            return token
        factory = self._inline_factory

        def run_inline() -> None:
            try:
                result = job.run(solver_factory=factory)
            except Exception as exc:  # job.run traps; belt-and-braces
                result = failed(exc)
            deliver(result)

        self._executor.submit(run_inline)
        return None

    # -- self-healing monitor (pool mode) ------------------------------------

    def _settle(self, token: int, result: JobResult) -> None:
        """Deliver a dispatch's result exactly once; drop seconds."""
        with self._dispatch_lock:
            record = self._dispatches.pop(token, None)
        if record is None:
            # Already settled by the healing monitor (backstop timeout
            # or crash): this is the late completion — drop it.
            self.late_drops += 1
            _metrics.count("runner_late_results_dropped_total")
            return
        record.deliver(result)

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.config.heal_interval_s):
            try:
                self._monitor_pass()
            except Exception:
                pass

    def _drain_events(self) -> None:
        events = self._events
        if events is None:
            return
        while True:
            try:
                if events.empty():
                    return
                # Sole consumer (the monitor thread), so a non-empty
                # queue cannot be drained out from under this get().
                kind, token, pid = events.get()
            except (EOFError, OSError, ValueError):
                return
            with self._dispatch_lock:
                record = self._dispatches.get(token)
            if record is None:
                continue
            if kind == "start":
                record.pid = pid
                record.started_at = time.monotonic()
            elif kind == "end":
                record.ended = True

    @staticmethod
    def _forget_pool_task(record: _Dispatch) -> None:
        """Strike a monitor-settled job from the pool's pending cache.

        A task lost to a SIGKILLed worker never produces a result, so
        its ``ApplyResult`` would sit in ``Pool._cache`` forever — and
        the pool's handler threads refuse to exit while that cache is
        non-empty, wedging ``Pool.join`` at teardown.  Removing the
        entry is safe: ``_handle_results`` tolerates unknown job ids,
        so even a miraculously-late genuine result is just ignored.
        """
        handle = record.handle
        try:
            handle._cache.pop(handle._job, None)
        except AttributeError:
            pass

    def _monitor_pass(self) -> None:
        self._drain_events()
        pool = self._pool
        if pool is None:
            return
        try:
            alive = {p.pid for p in pool._pool if p.is_alive()}
        except Exception:
            alive = None
        now = time.monotonic()
        with self._dispatch_lock:
            snapshot = list(self._dispatches.items())
        for token, record in snapshot:
            if record.ended or record.started_at is None:
                continue
            if alive is not None and record.pid not in alive:
                # Dead worker: the pool respawns the process on its
                # own, but the job's result is lost forever — settle it
                # as a crash now instead of waiting out the backstop.
                with self._dispatch_lock:
                    if self._dispatches.pop(token, None) is None:
                        continue
                self._forget_pool_task(record)
                self.worker_crashes += 1
                obs.event(
                    "runner:worker_crash",
                    job_id=record.job_id,
                    pid=record.pid,
                )
                _metrics.count("runner_worker_crashes_total")
                record.deliver(
                    crash_result(
                        record.job_id, record.kind, f"pid {record.pid}"
                    )
                )
            elif now - record.started_at > self.config.job_timeout:
                # Wedged worker: SIGKILL it so the pool respawns the
                # slot, and settle the job as a backstop timeout.  The
                # dispatch record is consumed here, so if the task
                # somehow completes anyway the result is dropped.
                with self._dispatch_lock:
                    if self._dispatches.pop(token, None) is None:
                        continue
                self._forget_pool_task(record)
                try:
                    os.kill(record.pid, signal.SIGKILL)
                except (OSError, TypeError):
                    pass
                self.heals += 1
                obs.event(
                    "runner:worker_heal",
                    job_id=record.job_id,
                    pid=record.pid,
                )
                _metrics.count("runner_worker_heals_total")
                record.deliver(
                    JobResult(
                        job_id=record.job_id,
                        kind=record.kind,
                        status="timeout",
                        seconds=self.config.job_timeout,
                        error=(
                            "job exceeded the runner's "
                            f"{self.config.job_timeout}s backstop"
                        ),
                    )
                )

    def pool_health(self) -> dict:
        """Liveness of the execution backend (the ``health`` op's
        ``runner`` section)."""
        health = {
            "mode": "inline" if self.config.workers == 0 else "pool",
            "started": self._started,
            "workers": self.config.workers,
            "workers_alive": 0,
            "jobs_tracked": len(self._dispatches),
            "worker_crashes": self.worker_crashes,
            "heals": self.heals,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "late_drops": self.late_drops,
        }
        pool = self._pool
        if pool is not None:
            try:
                health["workers_alive"] = sum(
                    1 for p in pool._pool if p.is_alive()
                )
            except Exception:
                pass
        elif self._executor is not None:
            health["workers_alive"] = max(1, self.config.inline_concurrency)
        return health

    def run_iter(
        self, jobs: Sequence[_JobBase]
    ) -> Iterator[Tuple[int, JobResult]]:
        """Yield ``(submission_index, result)`` pairs as jobs complete.

        No per-slot join: the first finished job is yielded first, no
        matter where it was submitted.  Recovery lives here: crashed or
        backstop-timed-out attempts are re-driven under the runner's
        :class:`RetryPolicy` (``retry_max``), poison jobs come back
        ``status="quarantined"``, and a stale attempt's late result is
        dropped — each submission index yields exactly once.  In pool
        mode the healing monitor owns precise backstop timing (from the
        worker's *start* event, so queue wait does not count); the
        local deadline here is an anti-hang fallback with 30s of slack.
        Starts and closes a pool of its own unless the runner was
        already :meth:`start`\\ ed.  No scheduler-level dedup: the
        caller owns coalescing in as-completed mode (the serve daemon's
        single-flight table does exactly that).
        """
        jobs = list(jobs)
        owns_pool = not self._started
        if owns_pool:
            self.start(obs_run=self._obs_run)
        policy = self.retry
        pool_mode = self._pool is not None
        slack = 30.0 if pool_mode else 0.0
        backstop = self.config.job_timeout
        results: "queue_module.Queue[Tuple[int, int, JobResult]]" = (
            queue_module.Queue()
        )
        attempts = [0] * len(jobs)
        crashes = [0] * len(jobs)
        tokens: Dict[int, Optional[int]] = {}
        deadlines: Dict[int, float] = {}
        retry_at: Dict[int, float] = {}

        def dispatch(index: int) -> None:
            attempt = attempts[index]
            deadlines[index] = time.monotonic() + backstop + slack
            tokens[index] = self.submit(
                jobs[index],
                lambda result, index=index, attempt=attempt: results.put(
                    (index, attempt, result)
                ),
            )

        def resolve(index: int, result: JobResult) -> Optional[JobResult]:
            """Terminal result, or ``None`` if the attempt is retried."""
            kind = policy.classify(result)
            if kind == "crash":
                crashes[index] += 1
            if policy.should_retry(kind, attempts[index], crashes[index]):
                attempts[index] += 1
                self.retries += 1
                _metrics.count("runner_retries_total", kind=kind)
                obs.event(
                    "runner:retry",
                    job_id=jobs[index].job_id,
                    attempt=attempts[index],
                    kind=kind,
                )
                retry_at[index] = time.monotonic() + policy.delay(
                    attempts[index], jobs[index].job_id
                )
                return None
            final = policy.finalize(result, attempts[index], crashes[index])
            if final.status == "quarantined":
                self.quarantined += 1
                _metrics.count("runner_quarantined_total")
                obs.event(
                    "runner:quarantine",
                    job_id=jobs[index].job_id,
                    crashes=crashes[index],
                )
            return final

        try:
            pending = set(range(len(jobs)))
            for index in range(len(jobs)):
                dispatch(index)
            while pending:
                now = time.monotonic()
                due = sorted(
                    i for i in pending
                    if i in retry_at and retry_at[i] <= now
                )
                for index in due:
                    del retry_at[index]
                    dispatch(index)
                wake_at = min(
                    retry_at.get(i, deadlines[i]) for i in pending
                )
                try:
                    index, attempt, result = results.get(
                        timeout=max(0.0, wake_at - now)
                    )
                except queue_module.Empty:
                    now = time.monotonic()
                    overdue = sorted(
                        i for i in pending
                        if i not in retry_at and deadlines[i] <= now
                    )
                    for index in overdue:
                        token = tokens.get(index)
                        record = None
                        if token is not None:
                            with self._dispatch_lock:
                                record = self._dispatches.get(token)
                        if record is not None:
                            # Still tracked: queued (not started) or
                            # the monitor hasn't fired yet — re-arm the
                            # local fallback from the true start time.
                            base = record.started_at or now
                            if base + backstop + slack > now:
                                deadlines[index] = base + backstop + slack
                                continue
                            with self._dispatch_lock:
                                self._dispatches.pop(token, None)
                        job = jobs[index]
                        final = resolve(
                            index,
                            JobResult(
                                job_id=job.job_id,
                                kind=job.KIND,
                                status="timeout",
                                seconds=backstop,
                                error=(
                                    "job exceeded the runner's "
                                    f"{backstop}s backstop"
                                ),
                            ),
                        )
                        if final is not None:
                            pending.discard(index)
                            yield index, final
                    continue
                if index not in pending or attempt != attempts[index]:
                    continue  # late completion of a stale attempt
                final = resolve(index, result)
                if final is not None:
                    pending.discard(index)
                    yield index, final
        finally:
            if owns_pool:
                self.close()

    # -- execution strategies ------------------------------------------------

    def _build_inline_factory(self) -> Callable[..., object]:
        if self.config.automata_cache:
            from repro.automata import configure_automata_cache

            configure_automata_cache(self.config.automata_cache)
        cache = (
            QueryCache(maxsize=self.config.cache_size)
            if self.config.use_cache or self.config.query_cache
            else None
        )
        if cache is not None and self.config.query_cache:
            cache.attach_store(
                self.config.query_cache,
                max_entries=self.config.query_cache_max,
            )
        return _make_solver_factory(cache)

    def _worker_initargs(self, shared) -> tuple:
        return (
            self.config.use_cache,
            self.config.cache_size,
            shared,
            self.config.automata_cache,
            self.config.query_cache,
            self.config.query_cache_max,
            self._obs_run.worker_config()
            if self._obs_run is not None
            else None,
            self.config.session_idle_s,
            self.config.fault_plan,
            self._events,
        )

    def _run_inline(self, jobs: Sequence[_JobBase]) -> List[JobResult]:
        factory = self._build_inline_factory()
        return [job.run(solver_factory=factory) for job in jobs]

    def _run_pool(self, jobs: Sequence[_JobBase]) -> List[JobResult]:
        """Pool-mode :meth:`run`: an ordered collect over
        :meth:`run_iter`, which owns the pool lifecycle, the backstop,
        and the retry/quarantine/self-healing machinery."""
        results: List[Optional[JobResult]] = [None] * len(jobs)
        for index, result in self.run_iter(jobs):
            results[index] = result
        return [result for result in results if result is not None]


# -- scheduler-level dedup ----------------------------------------------------


def _coalesce(
    jobs: Sequence[_JobBase],
) -> Tuple[List[_JobBase], List[int]]:
    """Group jobs by ``dedup_key``; return (representatives, assignment).

    ``assignment[i]`` is the representative index executing submitted
    job ``i``.  Jobs whose key is ``None`` always represent themselves.
    """
    by_key: Dict[str, int] = {}
    unique: List[_JobBase] = []
    assignment: List[int] = []
    for job in jobs:
        key = job.dedup_key()
        slot = by_key.get(key) if key is not None else None
        if slot is None:
            slot = len(unique)
            unique.append(job)
            if key is not None:
                by_key[key] = slot
        assignment.append(slot)
    return unique, assignment


def replay_result(
    job: _JobBase, rep_job: _JobBase, rep_result: JobResult
) -> JobResult:
    """The result a coalesced job replays from its representative.

    A copy of the representative's result with the coalesced job's own
    ``job_id``, zeroed work counters (it performed no solves of its own
    — that is the point), and a ``deduped_from`` marker so the report
    can tell replayed results from executed ones.  Shared by the batch
    scheduler's dedup fan-out and the serve daemon's cross-client
    single-flight table.
    """
    payload = dict(rep_result.payload)
    payload["deduped_from"] = rep_job.job_id
    if "name" in payload:
        # Analyze payloads carry a display name derived from the
        # job's own path; a replayed copy must not keep the
        # representative's (reports would list one program twice).
        payload["name"] = getattr(job, "path", None) or job.job_id
    for zeroed, value in (
        ("solver_queries", 0),
        ("solver_seconds", 0.0),
        ("backend_tallies", {}),
        ("session_tallies", {}),
        ("route_tallies", {}),
        ("automata_cache", {}),
    ):
        if zeroed in payload:
            payload[zeroed] = value
    return JobResult(
        job_id=job.job_id,
        kind=rep_result.kind,
        status=rep_result.status,
        seconds=0.0,
        payload=payload,
        error=rep_result.error,
        cache_hits=0,
        cache_misses=0,
        retries=rep_result.retries,
    )


def _fan_out(
    jobs: Sequence[_JobBase],
    unique_jobs: Sequence[_JobBase],
    executed: Sequence[JobResult],
    assignment: Sequence[int],
) -> List[JobResult]:
    """Expand representative results back to submission order."""
    results: List[JobResult] = []
    for job, slot in zip(jobs, assignment):
        rep_result = executed[slot]
        if unique_jobs[slot] is job:
            results.append(rep_result)
        else:
            results.append(
                replay_result(job, unique_jobs[slot], rep_result)
            )
    return results
