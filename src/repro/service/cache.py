"""The shared solver query cache (compatibility re-export).

The cache machinery moved into the pluggable backend package —
:mod:`repro.solver.backends.cached` — where :class:`CachedSolver` was
refitted as the ``cached:<inner>`` backend decorator
(:class:`~repro.solver.backends.cached.CachedBackend`).  This module
keeps the historical ``repro.service.cache`` import path working for
the runner, tests, and downstream users.
"""

from repro.solver.backends.cached import (
    CachedBackend,
    CachedResult,
    CachedSolver,
    QueryCache,
    QueryDiskStore,
    SharedQueryCache,
)

__all__ = [
    "CachedBackend",
    "CachedResult",
    "CachedSolver",
    "QueryCache",
    "QueryDiskStore",
    "SharedQueryCache",
]
