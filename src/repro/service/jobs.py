"""Job model for the batch analysis service.

Three job kinds mirror the three workloads of the paper's evaluation:

- :class:`AnalyzeJob` — run DSE over one mini-JS program (one "package"
  of the §7.2/7.3 experiments);
- :class:`SolveJob` — find a matching (or non-matching) input for one
  regex literal through the full model→solve→refine pipeline;
- :class:`SurveyJob` — extract and classify the regex literals of a
  shard of packages (the §7.1 survey).

A fourth kind turns the paper's *soundness* claim into a workload:

- :class:`FuzzJob` — run a shard of the conformance-fuzzing campaign
  (:mod:`repro.conformance`): generate seeded regex/input pairs,
  cross-check the concrete matcher against solver backends, and triage
  every disagreement into a shrunk, deduped, persisted artifact.

Every job serializes to a JSON-compatible *spec* dict (``to_spec`` /
:func:`job_from_spec`) so the runner can ship it across process
boundaries — or, later, across machines — without pickling live
objects.  Results come back as :class:`JobResult`, also JSON-shaped.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.solver.backends import make_backend
from repro.solver.stats import SolverStats

_PRELOAD_LOCK = threading.Lock()
_PRELOADED = False


def _preload_job_modules() -> None:
    """Import the per-job module graph once, under one coarse lock.

    Job kinds import their dependencies lazily inside ``_run`` so a
    worker process only pays for what it executes — but the serve
    daemon's inline mode runs jobs on *threads*, and two kinds
    importing overlapping module graphs in different orders can trip
    Python's per-module import locks into a spurious circular-import
    ``ImportError`` (one thread is handed a partially initialized
    module when the deadlock is broken).  Importing the whole graph
    here, serially, before the first job runs removes the race; after
    that the imports are ``sys.modules`` hits.
    """
    global _PRELOADED
    if _PRELOADED:
        return
    with _PRELOAD_LOCK:
        if _PRELOADED:
            return
        import repro.conformance  # noqa: F401
        import repro.corpus.survey  # noqa: F401
        import repro.dse.engine  # noqa: F401
        import repro.model.api  # noqa: F401

        _PRELOADED = True


#: (pattern, flags, negate) → canonical query-stream fingerprint (or
#: None for unparsable patterns).  Duplicated solve jobs are the
#: designed dedup case, and the scheduler computes keys serially before
#: dispatch — byte-identical jobs must pay for one model build, not N.
_SOLVE_FINGERPRINTS: Dict[tuple, Optional[str]] = {}


def _solve_query_fingerprint(
    pattern: str, flags: str, negate: bool
) -> Optional[str]:
    """Fingerprint of the CEGAR query *stream* a solve job poses.

    Keys on :func:`repro.model.cegar.refinement_stream_fingerprint`
    (initial formula + the capturing constraints that drive its
    refinements) so two jobs coalesce only when their whole refinement
    streams coincide — the initial-formula fingerprint alone is used
    only when no refinement fingerprint exists (no capturing
    constraints, hence no refinements to diverge on).
    """
    key = (pattern, flags, negate)
    if key in _SOLVE_FINGERPRINTS:
        return _SOLVE_FINGERPRINTS[key]
    try:
        from repro.constraints import StrVar
        from repro.constraints.printer import canonical_fingerprint
        from repro.model.api import SymbolicRegExp
        from repro.model.cegar import refinement_stream_fingerprint

        model = SymbolicRegExp(pattern, flags).exec_model(
            StrVar("input!dedup")
        )
        formula = model.no_match_formula if negate else model.match_formula
        constraint = (
            model.negative_constraint if negate else model.constraint
        )
        fingerprint = refinement_stream_fingerprint(formula, [constraint])
        if fingerprint is None:
            fingerprint, _ = canonical_fingerprint(formula)
    except Exception:
        fingerprint = None
    if len(_SOLVE_FINGERPRINTS) >= 4096:
        _SOLVE_FINGERPRINTS.clear()
    _SOLVE_FINGERPRINTS[key] = fingerprint
    return fingerprint


def default_solver_factory(
    timeout: float = 20.0,
    backend: Optional[str] = None,
    stats: Optional[SolverStats] = None,
    query_cache: Optional[str] = None,
    query_cache_max: Optional[int] = None,
    on_disagreement: Optional[str] = None,
    **kwargs,
):
    """Build a solver through the backend registry (default: native).

    ``backend`` is any :func:`repro.solver.backends.make_backend` spec;
    ``stats`` is the per-backend tally sink; ``query_cache`` is the
    persistent query-store directory threaded into any ``cached:`` level
    of the spec, and ``query_cache_max`` caps that store with age-based
    GC.  ``on_disagreement`` (``"raise"``/``"collect"``) is threaded
    into every ``portfolio`` level of the spec — collect mode records
    the contradiction and resolves with the native-backed member's
    answer instead of failing the job.  Remaining kwargs are
    native-solver options (backward compatibility with the pre-registry
    factory) and are passed structurally — they cannot be combined with
    an explicit ``backend`` spec, whose options belong in the spec
    string itself.
    """
    if kwargs:
        if backend is not None:
            raise TypeError(
                f"solver option(s) {sorted(kwargs)} cannot be combined "
                f"with backend={backend!r}; encode them in the spec "
                "(e.g. 'native?timeout=2')"
            )
        from repro.solver.backends import NativeBackend

        return NativeBackend(stats=stats, timeout=timeout, **kwargs)
    built = make_backend(
        backend,
        timeout=timeout,
        stats=stats,
        query_cache=query_cache,
        query_cache_max=query_cache_max,
        on_disagreement=on_disagreement,
    )
    if query_cache and not (
        isinstance(backend, str) and backend.startswith("cached:")
    ):
        # A query-cache directory without an explicit ``cached:`` level
        # still means "cache persistently": wrap the resolved backend so
        # the store is actually consulted (mirrors the batch runner,
        # which satisfies the outer ``cached:`` with its worker cache).
        from repro.solver.backends import CachedBackend, QueryCache

        built = CachedBackend(
            built,
            cache=QueryCache(
                store_path=query_cache, store_max_entries=query_cache_max
            ),
            tally_stats=stats,
            stats=stats,
        )
    return built


class _RecordingFactory:
    """Wraps a solver factory; sums cache counters over every solver it
    hands out, so a job can report its own hit/miss share."""

    def __init__(self, factory: Callable[..., object]):
        self._factory = factory
        self._instances: List[object] = []

    def __call__(self, *args, **kwargs):
        solver = self._factory(*args, **kwargs)
        self._instances.append(solver)
        return solver

    @property
    def hits(self) -> int:
        return sum(getattr(s, "hits", 0) for s in self._instances)

    @property
    def misses(self) -> int:
        return sum(getattr(s, "misses", 0) for s in self._instances)


@dataclass
class JobResult:
    """Outcome of one job, JSON-shaped for aggregation and transport."""

    job_id: str
    kind: str
    status: str  # "ok" | "error" | "timeout" | "quarantined"
    seconds: float = 0.0
    payload: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: Re-dispatches this job took before its terminal result (stamped
    #: by the runner's / scheduler's RetryPolicy; 0 on the fast path).
    retries: int = 0

    def to_spec(self) -> dict:
        return asdict(self)

    @classmethod
    def from_spec(cls, spec: dict) -> "JobResult":
        return cls(**spec)


@dataclass
class _JobBase:
    """Shared spec/run plumbing; subclasses implement ``_run``.

    Every job kind carries a ``backend`` field — a solver backend spec
    (``native``, ``smtlib:z3``, ``portfolio:native+smtlib``,
    ``cached:native``, ...) that survives the JSON spec round-trip and
    multiprocessing, so a whole batch can be pointed at any registered
    backend.  ``None`` means the runner's default (native).
    """

    job_id: str

    KIND = "?"
    # Fallbacks so ``self.backend``/``self.automata_cache``/
    # ``self.query_cache``/``self.query_cache_max`` always resolve;
    # subclasses declare the real (defaulted, spec-serialized)
    # dataclass fields.
    backend = None
    automata_cache = None
    query_cache = None
    query_cache_max = None

    def to_spec(self) -> dict:
        spec = asdict(self)
        spec["kind"] = self.KIND
        return spec

    def dedup_key(self) -> Optional[str]:
        """A key under which this job may be coalesced with identical ones.

        ``None`` means "never coalesce".  Two jobs returning the same
        key must be *observationally identical*: same kind, same inputs,
        same bounds, same backend — so the runner can execute one and
        fan its result out to the rest (see ``runner.py``).
        """
        return None

    def run(
        self, solver_factory: Optional[Callable[..., object]] = None
    ) -> JobResult:
        """Execute the job, capturing failures instead of raising.

        ``solver_factory`` is the cache injection seam (see
        ``runner.py``); cache hit/miss counts of every solver built for
        this job land on the result.
        """
        _preload_job_modules()
        factory = _RecordingFactory(solver_factory or default_solver_factory)
        started = time.perf_counter()
        with obs.span(
            "job:" + self.KIND,
            job_id=self.job_id,
            backend=self.backend,
        ) as job_span:
            try:
                payload = self._run(factory)
                status, error = "ok", None
            except Exception:
                payload, status = {}, "error"
                error = traceback.format_exc(limit=8)
            job_span.set(status=status)
        return JobResult(
            job_id=self.job_id,
            kind=self.KIND,
            status=status,
            seconds=time.perf_counter() - started,
            payload=payload,
            error=error,
            cache_hits=factory.hits,
            cache_misses=factory.misses,
        )

    def _run(self, solver_factory) -> Dict[str, object]:
        raise NotImplementedError


@dataclass
class AnalyzeJob(_JobBase):
    """Dynamic symbolic execution of one mini-JS program."""

    source: str = ""
    path: Optional[str] = None
    level: str = "refined"
    max_tests: int = 40
    time_budget: float = 10.0
    seed: int = 1909
    backend: Optional[str] = None
    automata_cache: Optional[str] = None
    query_cache: Optional[str] = None
    query_cache_max: Optional[int] = None

    KIND = "analyze"

    def dedup_key(self) -> Optional[str]:
        """Analysis is deterministic in (source, config): exact-field key."""
        return "|".join(
            [
                "analyze",
                self.level,
                str(self.max_tests),
                str(self.time_budget),
                str(self.seed),
                str(self.backend),
                self.source,
            ]
        )

    def _run(self, solver_factory) -> Dict[str, object]:
        from repro.dse.engine import DseEngine, EngineConfig
        from repro.dse.interpreter import RegexSupportLevel

        config = EngineConfig(
            level=RegexSupportLevel[self.level.upper()],
            max_tests=self.max_tests,
            time_budget=self.time_budget,
            seed=self.seed,
            automata_cache=self.automata_cache,
        )

        def engine_factory(timeout):
            if self.backend is None and self.query_cache is None:
                return solver_factory(timeout=timeout)
            return solver_factory(
                timeout=timeout,
                backend=self.backend,
                query_cache=self.query_cache,
                query_cache_max=self.query_cache_max,
            )

        result = DseEngine(
            self.source, config, solver_factory=engine_factory
        ).run()
        refined = [q for q in result.stats.queries if q.refinements > 0]
        return {
            "name": self.path or self.job_id,
            "backend": self.backend or "native",
            "backend_tallies": result.stats.backend_summary(),
            "session_tallies": result.stats.session_summary(),
            "route_tallies": result.stats.route_summary(),
            **(
                {"breaker_tallies": result.stats.breaker_summary()}
                if result.stats.breaker_summary()
                else {}
            ),
            **(
                {
                    "disagreement_tallies": (
                        result.stats.disagreement_summary()
                    )
                }
                if result.stats.disagreement_summary()
                else {}
            ),
            "automata_cache": result.stats.automata_summary(),
            "covered": len(result.covered),
            "statement_count": result.statement_count,
            "coverage": result.coverage,
            "tests_run": result.tests_run,
            "queries": result.queries,
            "sat_queries": result.sat_queries,
            "regex_ops": result.regex_ops,
            "concretizations": result.concretizations,
            "wall_time": result.wall_time,
            "failures": list(result.failures),
            "solver_queries": len(result.stats.queries),
            "solver_seconds": result.stats.total_time(),
            "refined_queries": len(refined),
            "sum_refinements": sum(q.refinements for q in refined),
        }


@dataclass
class SolveJob(_JobBase):
    """Find a matching (or non-matching) input for one regex literal."""

    pattern: str = ""
    flags: str = ""
    negate: bool = False
    solver_timeout: float = 2.0
    refinement_limit: int = 20
    backend: Optional[str] = None
    automata_cache: Optional[str] = None
    query_cache: Optional[str] = None
    query_cache_max: Optional[int] = None

    KIND = "solve"

    def dedup_key(self) -> Optional[str]:
        """Canonical *query* identity, not pattern-text identity.

        Builds the job's initial solver formula and fingerprints it with
        :func:`repro.constraints.printer.canonical_fingerprint` (variables
        α-renamed, language-preserving regex normalisation), so jobs whose
        pattern texts differ only in non-capturing syntax — or whose
        models drew different fresh variable names — still coalesce.
        Unparsable patterns return ``None`` and run individually (the
        worker then reports the parse error per job).
        """
        fingerprint = _solve_query_fingerprint(
            self.pattern, self.flags, self.negate
        )
        if fingerprint is None:
            return None
        return "|".join(
            [
                "solve",
                str(self.negate),
                str(self.solver_timeout),
                str(self.refinement_limit),
                str(self.backend),
                fingerprint,
            ]
        )

    def _run(self, solver_factory) -> Dict[str, object]:
        from repro.automata import (
            automata_cache_counters,
            configure_automata_cache,
        )
        from repro.automata.cache import counters_delta
        from repro.model.api import (
            find_matching_input,
            find_non_matching_input,
        )
        from repro.model.cegar import CegarSolver

        if self.automata_cache:
            configure_automata_cache(self.automata_cache)
        automata0 = automata_cache_counters()
        stats = SolverStats()
        if self.backend is None and self.query_cache is None:
            solver = solver_factory(timeout=self.solver_timeout)
            binder = getattr(solver, "bind_stats", None)
            if callable(binder):
                binder(stats)
        else:
            solver = solver_factory(
                timeout=self.solver_timeout,
                backend=self.backend,
                stats=stats,
                query_cache=self.query_cache,
                query_cache_max=self.query_cache_max,
            )
        cegar = CegarSolver(
            solver=solver,
            refinement_limit=self.refinement_limit,
            stats=stats,
        )
        payload: Dict[str, object] = {
            "pattern": self.pattern,
            "flags": self.flags,
            "negate": self.negate,
            "backend": self.backend or "native",
        }
        if self.negate:
            word = find_non_matching_input(
                self.pattern, self.flags, cegar=cegar
            )
            payload["found"] = word is not None
            payload["word"] = word
        else:
            found = find_matching_input(self.pattern, self.flags, cegar=cegar)
            payload["found"] = found is not None
            if found is not None:
                word, captures = found
                payload["word"] = word
                payload["captures"] = {
                    str(i): v for i, v in captures.items()
                }
        payload["solver_queries"] = len(stats.queries)
        payload["solver_seconds"] = stats.total_time()
        payload["refinements"] = sum(q.refinements for q in stats.queries)
        payload["backend_tallies"] = stats.backend_summary()
        payload["session_tallies"] = stats.session_summary()
        payload["route_tallies"] = stats.route_summary()
        breaker_tallies = stats.breaker_summary()
        if breaker_tallies:
            # Only when a breaker actually transitioned: the common
            # no-trip payload stays byte-identical to earlier releases.
            payload["breaker_tallies"] = breaker_tallies
        disagreement_tallies = stats.disagreement_summary()
        if disagreement_tallies:
            # A collect-mode portfolio caught members contradicting each
            # other mid-solve; surface it for the batch Soundness table.
            payload["disagreement_tallies"] = disagreement_tallies
        stats.record_automata(
            counters_delta(automata0, automata_cache_counters())
        )
        payload["automata_cache"] = stats.automata_summary()
        return payload


@dataclass
class SurveyJob(_JobBase):
    """Extract + classify the regex literals of a shard of packages.

    ``package_files`` is one list of JS source strings per package.  The
    payload carries shard-level counts *and* the per-unique-literal
    feature map so the report layer can merge unique counts exactly
    across shards.
    """

    package_files: List[List[str]] = field(default_factory=list)
    # Unused (no solving/compilation), kept for a uniform spec shape.
    backend: Optional[str] = None
    automata_cache: Optional[str] = None
    query_cache: Optional[str] = None
    query_cache_max: Optional[int] = None

    KIND = "survey"

    def _run(self, solver_factory) -> Dict[str, object]:
        import hashlib

        from repro.corpus.features import RegexFeatures
        from repro.corpus.generator import SyntheticPackage
        from repro.corpus.survey import survey_packages

        packages = [
            SyntheticPackage(name=f"{self.job_id}#{i}", files=list(files))
            for i, files in enumerate(self.package_files)
        ]
        # Per-unique-literal features, for exact cross-shard unique
        # counts in the report's merge.  The payload ships one *hash*
        # per unique literal mapped to a feature *bitmask* (bit i =
        # ``RegexFeatures.feature_names()[i]``) instead of the literal
        # text and its feature-name list: at the paper's 306k uniques
        # the map stays a few MB of digests rather than the corpus's
        # regex text, and cross-shard dedup still works — equal
        # literals hash equally in every shard.
        unique_seen: Dict[tuple, object] = {}
        result = survey_packages(packages, unique_out=unique_seen)
        feature_names = RegexFeatures.feature_names()
        uniques: Dict[str, int] = {
            hashlib.blake2b(
                "\x00".join(key).encode("utf-8"), digest_size=12
            ).hexdigest(): sum(
                1 << i
                for i, name in enumerate(feature_names)
                if getattr(features, name)
            )
            for key, features in unique_seen.items()
        }
        return {
            "n_packages": result.n_packages,
            "with_source": result.with_source,
            "with_regex": result.with_regex,
            "with_captures": result.with_captures,
            "with_backrefs": result.with_backrefs,
            "with_quantified_backrefs": result.with_quantified_backrefs,
            "total_regexes": result.total_regexes,
            "unparsable": result.unparsable,
            "feature_totals": dict(result.feature_totals),
            "uniques": uniques,
        }


@dataclass
class FuzzJob(_JobBase):
    """One shard of a conformance-fuzzing campaign.

    Generates ``budget`` regex/input pairs (deterministic in
    ``(seed, offset + i)``), runs each through the differential oracle,
    and triages every disagreement: shrink by delta debugging, dedupe
    by canonical fingerprint, persist to ``artifact_dir``.

    ``on_disagreement`` decides the failure mode: ``"collect"``
    (default) records the artifact and completes the job — a soundness
    find is the campaign's *product*, not its crash — while ``"raise"``
    fails the job on the first contradiction, for CI gates that must go
    red.  ``oracle_backends`` lists the solver deciders (any
    :func:`make_backend` specs); ``None`` means ``[backend or
    "native"]``.  ``query_cache``/``query_cache_max`` exist for a
    uniform spec shape but are *not* threaded into oracle members —
    a shared query cache would replay one member's answer as another
    member's verdict (see ``_run``).
    """

    budget: int = 50
    seed: int = 1909
    #: Global pair-index offset — see :func:`fuzz_workload`'s sharding.
    offset: int = 0
    oracle_backends: Optional[List[str]] = None
    solver_timeout: float = 2.0
    shrink: bool = True
    artifact_dir: Optional[str] = None
    artifact_max: Optional[int] = None
    on_disagreement: str = "collect"
    backend: Optional[str] = None
    automata_cache: Optional[str] = None
    query_cache: Optional[str] = None
    query_cache_max: Optional[int] = None

    KIND = "fuzz"

    def dedup_key(self) -> Optional[str]:
        """Fuzzing is deterministic in its spec: exact-field key."""
        return "|".join(
            [
                "fuzz",
                str(self.budget),
                str(self.seed),
                str(self.offset),
                str(self.oracle_backends),
                str(self.solver_timeout),
                str(self.shrink),
                str(self.artifact_dir),
                str(self.artifact_max),
                self.on_disagreement,
                str(self.backend),
            ]
        )

    def _run(self, solver_factory) -> Dict[str, object]:
        from repro.automata import (
            automata_cache_counters,
            configure_automata_cache,
        )
        from repro.automata.cache import counters_delta
        from repro.conformance import (
            ArtifactStore,
            DifferentialOracle,
            TriagePipeline,
            artifact_fingerprint,
            coverage_summary,
            generate_pairs,
            register_planted_backend,
        )
        from repro.solver.backends.base import BackendDisagreement

        if self.on_disagreement not in ("raise", "collect"):
            raise ValueError(
                f"on_disagreement must be 'raise' or 'collect', "
                f"got {self.on_disagreement!r}"
            )
        # The ``planted:`` scheme must exist in *this* process before
        # the factory resolves specs (workers start with a bare registry).
        register_planted_backend()
        if self.automata_cache:
            configure_automata_cache(self.automata_cache)
        automata0 = automata_cache_counters()
        stats = SolverStats()
        specs = [
            str(spec)
            for spec in (self.oracle_backends or [self.backend or "native"])
        ]
        # Oracle members bypass ``solver_factory`` on purpose: the
        # runner's seam wraps every solver it builds with the shared
        # worker query cache, which is keyed on the formula alone — a
        # cached layer would replay one member's answer as another
        # member's verdict and the differential check would be vacuous.
        # Each member decides every pinned query independently.
        members = [
            make_backend(spec, timeout=self.solver_timeout, stats=stats)
            for spec in specs
        ]
        oracle = DifferentialOracle(
            members, timeout=self.solver_timeout, stats=stats
        )
        store = (
            ArtifactStore(self.artifact_dir, max_entries=self.artifact_max)
            if self.artifact_dir
            else None
        )
        triage = TriagePipeline(oracle, store, shrink=self.shrink)
        pairs = generate_pairs(
            self.budget, seed=self.seed, offset=self.offset
        )
        artifacts = {"new": 0, "dup": 0, "unstored": 0}
        fingerprints = set()
        for pair in pairs:
            for outcome in oracle.check_pair(pair):
                disagreement = outcome.disagreement
                if disagreement is None:
                    continue
                if self.on_disagreement == "raise":
                    raise BackendDisagreement(
                        f"conformance disagreement on "
                        f"/{disagreement.pattern}/{disagreement.flags} "
                        f"with input {disagreement.word!r}: "
                        f"{disagreement.members[0]} says match, "
                        f"{disagreement.members[1]} says nomatch",
                        members=disagreement.members,
                        statuses=("match", "nomatch"),
                        fingerprint=artifact_fingerprint(
                            disagreement.pattern,
                            disagreement.flags,
                            disagreement.word,
                        ),
                    )
                result = triage.handle(disagreement)
                artifacts[result.status] = artifacts.get(result.status, 0) + 1
                fingerprints.add(result.artifact.fingerprint)
        counters = dict(oracle.counters)
        payload: Dict[str, object] = {
            "backend": self.backend or "native",
            "oracle_backends": specs,
            "budget": self.budget,
            "seed": self.seed,
            "offset": self.offset,
            "pairs": len(pairs),
            "coverage": coverage_summary(pairs),
            "checks": counters.pop("checks"),
            "skipped": counters.pop("skipped"),
            "disagreements": counters.pop("disagreements"),
            "tolerated_overapprox": counters.pop("tolerated_overapprox"),
            "verdicts": counters,  # match / nomatch / unknown / error
            "artifacts_new": artifacts["new"],
            "artifacts_dup": artifacts["dup"],
            "artifacts_unstored": artifacts["unstored"],
            "unique_fingerprints": sorted(fingerprints),
            "shrink_steps": triage.shrink_steps,
            "disagreement_tallies": stats.disagreement_summary(),
            "backend_tallies": stats.backend_summary(),
        }
        if store is not None:
            payload["artifact_dir"] = self.artifact_dir
            payload["artifact_store"] = store.counters()
        stats.record_automata(
            counters_delta(automata0, automata_cache_counters())
        )
        payload["automata_cache"] = stats.automata_summary()
        return payload


_JOB_KINDS = {
    AnalyzeJob.KIND: AnalyzeJob,
    SolveJob.KIND: SolveJob,
    SurveyJob.KIND: SurveyJob,
    FuzzJob.KIND: FuzzJob,
}


def job_from_spec(spec: dict) -> _JobBase:
    """Rebuild a job from its ``to_spec()`` dict."""
    spec = dict(spec)
    kind = spec.pop("kind")
    try:
        cls = _JOB_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown job kind {kind!r}") from None
    return cls(**spec)


def survey_workload(
    n_packages: int = 200,
    seed: int = 1909,
    shards: int = 8,
    solve_cap: int = 48,
    backend: Optional[str] = None,
) -> List[_JobBase]:
    """The batch-mode survey workload: survey shards + solve jobs.

    Generates the synthetic corpus, shards its packages into
    :class:`SurveyJob`\\ s, and turns the first ``solve_cap`` extracted
    regex literals — duplicates included, as in the wild — into
    :class:`SolveJob`\\ s.  The duplication is what exercises the shared
    solver query cache.
    """
    from repro.corpus.extract import extract_regex_literals
    from repro.corpus.generator import CorpusConfig, generate_corpus

    corpus = generate_corpus(
        CorpusConfig(n_packages=n_packages, seed=seed)
    )
    jobs: List[_JobBase] = []
    shards = max(1, min(shards, len(corpus)))
    per_shard = (len(corpus) + shards - 1) // shards
    for shard in range(shards):
        chunk = corpus[shard * per_shard:(shard + 1) * per_shard]
        if not chunk:
            continue
        jobs.append(
            SurveyJob(
                job_id=f"survey-{shard:03d}",
                package_files=[list(p.files) for p in chunk],
            )
        )
    count = 0
    for package in corpus:
        if count >= solve_cap:
            break
        for content in package.files:
            for literal in extract_regex_literals(content):
                if count >= solve_cap:
                    break
                jobs.append(
                    SolveJob(
                        job_id=f"solve-{count:03d}",
                        pattern=literal.source,
                        flags=literal.flags.replace("g", "").replace(
                            "y", ""
                        ),
                        solver_timeout=1.0,
                        backend=backend,
                    )
                )
                count += 1
    return jobs


def fuzz_workload(
    budget: int = 200,
    seed: int = 1909,
    shards: int = 4,
    backend: Optional[str] = None,
    oracle_backends: Optional[List[str]] = None,
    solver_timeout: float = 2.0,
    shrink: bool = True,
    artifact_dir: Optional[str] = None,
    artifact_max: Optional[int] = None,
    on_disagreement: str = "collect",
) -> List[FuzzJob]:
    """Shard one conformance-fuzzing budget into :class:`FuzzJob`\\ s.

    Shards split the budget by *global index range* (``offset``), so
    the campaign checks exactly the pairs a single unsharded run would
    — each pair is seeded by its global index, and the shard count only
    changes which worker checks it.  All shards share ``artifact_dir``;
    the store's atomic per-entry writes make concurrent dedupe safe.
    """
    jobs: List[FuzzJob] = []
    shards = max(1, min(shards, max(1, budget)))
    per_shard = (budget + shards - 1) // shards
    offset = 0
    for shard in range(shards):
        chunk = min(per_shard, budget - offset)
        if chunk <= 0:
            break
        jobs.append(
            FuzzJob(
                job_id=f"fuzz-{shard:03d}",
                budget=chunk,
                seed=seed,
                offset=offset,
                backend=backend,
                oracle_backends=(
                    list(oracle_backends) if oracle_backends else None
                ),
                solver_timeout=solver_timeout,
                shrink=shrink,
                artifact_dir=artifact_dir,
                artifact_max=artifact_max,
                on_disagreement=on_disagreement,
            )
        )
        offset += chunk
    return jobs


def analyze_jobs_from_files(
    paths: Sequence[str],
    level: str = "refined",
    max_tests: int = 40,
    time_budget: float = 10.0,
    seed: int = 1909,
    backend: Optional[str] = None,
) -> List[AnalyzeJob]:
    """One :class:`AnalyzeJob` per mini-JS file."""
    jobs = []
    for i, path in enumerate(paths):
        with open(path) as handle:
            source = handle.read()
        jobs.append(
            AnalyzeJob(
                job_id=f"analyze-{i:03d}",
                source=source,
                path=path,
                level=level,
                max_tests=max_tests,
                time_budget=time_budget,
                seed=seed,
                backend=backend,
            )
        )
    return jobs
