"""Aggregation of batch results into corpus-level reports.

Mirrors ``eval/tables.py``: per-kind merge functions produce structured
rows plus a rendered text table.  Everything consumes the JSON-shaped
:class:`~repro.service.jobs.JobResult` payloads, never live objects, so
the same code paths aggregate in-process, cross-process, and (later)
cross-machine results.

Merging is **order-independent**: every merge function and table
canonicalizes its inputs by job id first (:func:`ordered_results`), so
results collected as-completed from the serve daemon's stream render
byte-identical reports to the batch runner's submission-order joins —
down to float summation order, which would otherwise drift in the last
bits between two arrival orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.service.jobs import JobResult


def ordered_results(results: Sequence[JobResult]) -> List[JobResult]:
    """The canonical aggregation order: sorted by job id.

    Submitted job ids are unique within a batch, so this is a total
    order no matter how the results arrived (submission-order joins,
    the as-completed stream, or a shuffled JSON round-trip).
    """
    return sorted(results, key=lambda result: result.job_id)


@dataclass
class BatchReport:
    """Everything one batch run produced, in submission order."""

    results: List[JobResult] = field(default_factory=list)
    wall_time: float = 0.0
    workers: int = 0
    #: Scheduler-level dedup accounting: how many jobs were submitted
    #: vs actually dispatched (the rest were coalesced onto identical
    #: single-flight executions).  Zero/zero when the runner predates
    #: the counters or dedup never ran.
    jobs_submitted: int = 0
    jobs_executed: int = 0
    #: Observability artifacts, set by the runner when the batch ran
    #: with ``--trace`` / ``--metrics-json`` / ``--slow-query-ms``.
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    slow_queries: List[dict] = field(default_factory=list)
    obs_pids: List[int] = field(default_factory=list)

    # -- batch-level aggregates ---------------------------------------------

    @property
    def jobs_coalesced(self) -> int:
        return max(0, self.jobs_submitted - self.jobs_executed)

    @property
    def jobs_per_minute(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return len(self.results) * 60.0 / self.wall_time

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.results)

    @property
    def cache_misses(self) -> int:
        return sum(r.cache_misses for r in self.results)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def total_retries(self) -> int:
        """Worker-crash/timeout redispatches absorbed across the batch."""
        return sum(getattr(r, "retries", 0) for r in self.results)

    @property
    def quarantined_jobs(self) -> int:
        return sum(
            1 for r in self.results if r.status == "quarantined"
        )

    def by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def of_kind(self, kind: str) -> List[JobResult]:
        """Results of one kind, in canonical (job-id) order."""
        return ordered_results(
            [r for r in self.results if r.kind == kind]
        )

    def to_spec(self) -> dict:
        return {
            "wall_time": self.wall_time,
            "workers": self.workers,
            "jobs_per_minute": self.jobs_per_minute,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "dedup": {
                "submitted": self.jobs_submitted,
                "executed": self.jobs_executed,
                "coalesced": self.jobs_coalesced,
            },
            "automata_cache": merge_automata_counters(self.results),
            "routes": merge_route_tallies(self.results),
            "sessions": merge_session_tallies(self.results),
            "statuses": self.by_status(),
            "recovery": {
                "retries": self.total_retries,
                "quarantined": self.quarantined_jobs,
            },
            "observability": {
                "trace_path": self.trace_path,
                "metrics_path": self.metrics_path,
                "slow_queries": self.slow_queries,
                "pids": self.obs_pids,
            },
            "results": [r.to_spec() for r in self.results],
        }


# -- analyze merge ------------------------------------------------------------


def merge_analyze(results: Sequence[JobResult]) -> dict:
    """Corpus-level coverage/query/timing aggregates over analyze jobs."""
    results = ordered_results(results)
    ok = [r for r in results if r.status == "ok"]
    payloads = [r.payload for r in ok]
    covered = sum(p["covered"] for p in payloads)
    statements = sum(p["statement_count"] for p in payloads)
    refined = sum(p.get("refined_queries", 0) for p in payloads)
    refinements = sum(p.get("sum_refinements", 0) for p in payloads)
    return {
        "packages": len(results),
        "analyzed": len(ok),
        "failed_jobs": len(results) - len(ok),
        "tests_run": sum(p["tests_run"] for p in payloads),
        "covered": covered,
        "statements": statements,
        "coverage": covered / statements if statements else 0.0,
        "queries": sum(p["queries"] for p in payloads),
        "sat_queries": sum(p["sat_queries"] for p in payloads),
        "regex_ops": sum(p["regex_ops"] for p in payloads),
        "solver_queries": sum(p.get("solver_queries", 0) for p in payloads),
        "solver_seconds": sum(p.get("solver_seconds", 0.0) for p in payloads),
        "refined_queries": refined,
        "mean_refinements": refinements / refined if refined else 0.0,
        "wall_time": sum(p["wall_time"] for p in payloads),
        "program_failures": sum(len(p["failures"]) for p in payloads),
    }


def format_analyze_table(results: Sequence[JobResult]) -> str:
    results = ordered_results(results)
    lines = [
        "Program                        Tests  Cov(%)  Queries   SAT  Bugs",
    ]
    for result in results:
        if result.status != "ok":
            lines.append(
                f"{result.job_id:<30} {result.status.upper()}: "
                f"{(result.error or '').splitlines()[-1] if result.error else ''}"
            )
            continue
        p = result.payload
        name = str(p.get("name", result.job_id))
        if len(name) > 30:
            name = "..." + name[-27:]
        lines.append(
            f"{name:<30} {p['tests_run']:>5} {100 * p['coverage']:>7.1f} "
            f"{p['queries']:>8} {p['sat_queries']:>5} "
            f"{len(p['failures']):>5}"
        )
    merged = merge_analyze(results)
    lines.append(
        f"{'TOTAL':<30} {merged['tests_run']:>5} "
        f"{100 * merged['coverage']:>7.1f} {merged['queries']:>8} "
        f"{merged['sat_queries']:>5} {merged['program_failures']:>5}"
    )
    return "\n".join(lines)


# -- solve merge --------------------------------------------------------------


def merge_solve(results: Sequence[JobResult]) -> dict:
    results = ordered_results(results)
    ok = [r for r in results if r.status == "ok"]
    found = [r for r in ok if r.payload.get("found")]
    return {
        "jobs": len(results),
        "solved": len(found),
        "unsolved": len(ok) - len(found),
        "failed_jobs": len(results) - len(ok),
        "solver_queries": sum(
            r.payload.get("solver_queries", 0) for r in ok
        ),
        "solver_seconds": sum(
            r.payload.get("solver_seconds", 0.0) for r in ok
        ),
    }


# -- fuzz merge ---------------------------------------------------------------


def merge_fuzz(results: Sequence[JobResult]) -> dict:
    """Campaign-level aggregates over conformance-fuzz shards.

    Counts sum; unique artifact fingerprints merge as a set union (two
    shards tripping the same bug must report one unique find, not two);
    disagreement tallies merge per contradicting pair.
    """
    results = ordered_results(results)
    ok = [r for r in results if r.status == "ok"]
    payloads = [r.payload for r in ok]
    coverage: Dict[str, int] = {}
    verdicts: Dict[str, int] = {}
    fingerprints: set = set()
    for p in payloads:
        for key, value in (p.get("coverage") or {}).items():
            coverage[key] = coverage.get(key, 0) + value
        for key, value in (p.get("verdicts") or {}).items():
            verdicts[key] = verdicts.get(key, 0) + value
        fingerprints.update(p.get("unique_fingerprints") or ())
    return {
        "jobs": len(results),
        "failed_jobs": len(results) - len(ok),
        "pairs": sum(p.get("pairs", 0) for p in payloads),
        "checks": sum(p.get("checks", 0) for p in payloads),
        "skipped": sum(p.get("skipped", 0) for p in payloads),
        "disagreements": sum(
            p.get("disagreements", 0) for p in payloads
        ),
        "tolerated_overapprox": sum(
            p.get("tolerated_overapprox", 0) for p in payloads
        ),
        "artifacts_new": sum(p.get("artifacts_new", 0) for p in payloads),
        "artifacts_dup": sum(p.get("artifacts_dup", 0) for p in payloads),
        "artifacts_unstored": sum(
            p.get("artifacts_unstored", 0) for p in payloads
        ),
        "unique_fingerprints": len(fingerprints),
        "shrink_steps": sum(p.get("shrink_steps", 0) for p in payloads),
        "coverage": dict(sorted(coverage.items())),
        "verdicts": dict(sorted(verdicts.items())),
        "disagreement_tallies": merge_disagreement_tallies(results),
    }


def merge_disagreement_tallies(
    results: Sequence[JobResult],
) -> Dict[str, int]:
    """Sum backend-disagreement counts across *all* job payloads.

    Fuzz jobs always carry ``payload["disagreement_tallies"]``; solve
    and analyze jobs carry it only when a collect-mode portfolio
    actually tripped — so a non-empty merge is the batch-level
    soundness alarm regardless of which workload rang it.
    """
    totals: Dict[str, int] = {}
    for result in ordered_results(results):
        if result.status != "ok":
            continue
        tallies = result.payload.get("disagreement_tallies") or {}
        for pair, count in tallies.items():
            totals[pair] = totals.get(pair, 0) + count
    return dict(sorted(totals.items()))


def format_soundness_table(tallies: Dict[str, int]) -> str:
    """Who contradicted whom, and how often, across the whole batch."""
    lines = ["Contradicting pair                          Count"]
    for pair, count in sorted(tallies.items()):
        shown = pair if len(pair) <= 40 else "..." + pair[-37:]
        lines.append(f"{shown:<40} {count:>9}")
    return "\n".join(lines)


# -- automata-cache merge -----------------------------------------------------


def merge_automata_counters(results: Sequence[JobResult]) -> dict:
    """Sum per-job automata compilation-cache counters.

    Jobs that compiled anything carry ``payload["automata_cache"]``
    (their run's share of the process-global interner counters);
    coalesced duplicates carry an empty dict and contribute nothing.
    """
    totals = {"hits": 0, "misses": 0, "disk_hits": 0, "disk_stores": 0}
    for result in ordered_results(results):
        if result.status != "ok":
            continue
        counters = result.payload.get("automata_cache") or {}
        for key in totals:
            totals[key] += counters.get(key, 0)
    lookups = totals["hits"] + totals["disk_hits"] + totals["misses"]
    totals["hit_rate"] = (
        (totals["hits"] + totals["disk_hits"]) / lookups if lookups else 0.0
    )
    return totals


# -- backend merge ------------------------------------------------------------


def merge_backend_tallies(results: Sequence[JobResult]) -> Dict[str, dict]:
    """Sum per-backend outcome/latency tallies across job payloads.

    Jobs that solved anything carry ``payload["backend_tallies"]``
    (JSON-shaped :class:`repro.solver.stats.BackendTally` dicts keyed by
    backend name); the merge is a plain per-name sum, so one corpus
    table can compare e.g. ``native`` vs ``cached:native`` traffic.
    """
    from repro.solver.stats import BackendTally

    totals: Dict[str, BackendTally] = {}
    for result in ordered_results(results):
        if result.status != "ok":
            continue
        tallies = result.payload.get("backend_tallies") or {}
        for name, tally in tallies.items():
            agg = totals.setdefault(name, BackendTally())
            agg.merge_dict(tally)
    return {name: tally.as_dict() for name, tally in sorted(totals.items())}


def merge_session_tallies(results: Sequence[JobResult]) -> Dict[str, dict]:
    """Sum incremental-session lifecycle tallies across job payloads.

    Jobs that solved through a ``session:`` (or ``route:``) backend
    carry ``payload["session_tallies"]`` — JSON-shaped
    :class:`repro.solver.stats.SessionTally` dicts keyed by session
    name; the merged ``queries_per_spawn`` is the batch-level
    amortization figure (a one-shot ``smtlib:`` backend would sit at 1).
    """
    from repro.solver.stats import SessionTally

    totals: Dict[str, SessionTally] = {}
    for result in ordered_results(results):
        if result.status != "ok":
            continue
        tallies = result.payload.get("session_tallies") or {}
        for name, tally in tallies.items():
            agg = totals.setdefault(name, SessionTally())
            agg.merge_dict(tally)
    return {name: tally.as_dict() for name, tally in sorted(totals.items())}


def merge_route_tallies(results: Sequence[JobResult]) -> Dict[str, int]:
    """Sum routing decision counts (``feature->target``) across payloads."""
    totals: Dict[str, int] = {}
    for result in ordered_results(results):
        if result.status != "ok":
            continue
        for key, count in (result.payload.get("route_tallies") or {}).items():
            totals[key] = totals.get(key, 0) + count
    return dict(sorted(totals.items()))


def format_session_table(tallies: Dict[str, dict]) -> str:
    """Per-session corpus table: spawns, restarts, pool traffic,
    amortization (``Q/spawn`` spans jobs when sessions are pooled)."""
    lines = [
        "Session                        Queries  Spawns  Restarts  Resets"
        "  Chkouts  Waits  Q/spawn   Life(s)",
    ]
    for name, tally in tallies.items():
        shown = name if len(name) <= 30 else "..." + name[-27:]
        lines.append(
            f"{shown:<30} {tally['queries']:>8} {tally['spawns']:>7} "
            f"{tally['restarts']:>9} {tally['resets']:>7} "
            f"{tally.get('checkouts', 0):>8} {tally.get('waits', 0):>6} "
            f"{tally['queries_per_spawn']:>8.1f} {tally['seconds']:>9.2f}"
        )
    return "\n".join(lines)


def format_route_table(tallies: Dict[str, int]) -> str:
    """Routing decisions: which feature class went to which target."""
    total = sum(tallies.values()) or 1
    lines = ["Route                          Queries   Share"]
    for key, count in tallies.items():
        lines.append(f"{key:<30} {count:>8} {100 * count / total:>6.1f}%")
    return "\n".join(lines)


def format_backend_table(tallies: Dict[str, dict]) -> str:
    """Per-backend corpus table: outcomes, definitive rate, latency."""
    lines = [
        "Backend                        Queries   SAT  UNSAT   UNK  ERR"
        "  Defin.%   Time(s)",
    ]
    for name, tally in tallies.items():
        shown = name if len(name) <= 30 else "..." + name[-27:]
        lines.append(
            f"{shown:<30} {tally['queries']:>8} {tally['sat']:>5} "
            f"{tally['unsat']:>6} {tally['unknown']:>5} "
            f"{tally['errors']:>4} {100 * tally['definitive_rate']:>8.1f} "
            f"{tally['seconds']:>9.2f}"
        )
    return "\n".join(lines)


def format_slow_query_table(entries: Sequence[dict]) -> str:
    """Slowest traced queries, worst first.

    Each entry is a tracer slow-log record: span name, duration, owning
    pid, and the span attrs (fingerprint / route / backend /
    refinements where the instrumented layers annotated them).
    """
    lines = [
        "Span          Time(ms)    PID  Route         Backend"
        "       Refs  Fingerprint",
    ]
    ordered = sorted(entries, key=lambda e: e.get("ms", 0.0), reverse=True)
    for entry in ordered[:20]:
        attrs = entry.get("attrs") or {}
        fingerprint = str(attrs.get("fingerprint", "-"))
        if len(fingerprint) > 16:
            fingerprint = fingerprint[:16]
        lines.append(
            f"{entry.get('name', '?'):<12} {entry.get('ms', 0.0):>9.1f} "
            f"{entry.get('pid', 0):>6}  {str(attrs.get('route', '-')):<12} "
            f"{str(attrs.get('backend', attrs.get('target', '-'))):<12} "
            f"{str(attrs.get('refinements', '-')):>5}  {fingerprint}"
        )
    if len(ordered) > 20:
        lines.append(f"... and {len(ordered) - 20} more")
    return "\n".join(lines)


# -- survey merge -------------------------------------------------------------


def merge_survey(results: Sequence[JobResult]):
    """Exact cross-shard merge back into a ``SurveyResult``.

    Scalar counts sum; unique counts are recomputed from the union of
    the shards' per-unique-literal maps (that is why the payload
    carries them), so sharding never double-counts a literal that
    appears in two shards.  Payload values are feature *bitmasks* over
    ``RegexFeatures.feature_names()`` keyed by literal hashes (the
    compact wire format of :class:`~repro.service.jobs.SurveyJob`);
    feature-name lists from older payloads merge identically.
    """
    from repro.corpus.features import RegexFeatures
    from repro.corpus.survey import SurveyResult

    merged = SurveyResult()
    feature_names = RegexFeatures.feature_names()
    merged.feature_totals = {name: 0 for name in feature_names}
    merged.feature_uniques = {name: 0 for name in feature_names}
    uniques: Dict[str, object] = {}
    for result in ordered_results(results):
        if result.status != "ok":
            continue
        p = result.payload
        merged.n_packages += p["n_packages"]
        merged.with_source += p["with_source"]
        merged.with_regex += p["with_regex"]
        merged.with_captures += p["with_captures"]
        merged.with_backrefs += p["with_backrefs"]
        merged.with_quantified_backrefs += p["with_quantified_backrefs"]
        merged.total_regexes += p["total_regexes"]
        merged.unparsable += p["unparsable"]
        for name, count in p["feature_totals"].items():
            merged.feature_totals[name] = (
                merged.feature_totals.get(name, 0) + count
            )
        uniques.update(p["uniques"])
    merged.unique_regexes = len(uniques)
    for encoded in uniques.values():
        if isinstance(encoded, int):
            names = [
                name
                for i, name in enumerate(feature_names)
                if encoded >> i & 1
            ]
        else:
            names = encoded
        for name in names:
            merged.feature_uniques[name] = (
                merged.feature_uniques.get(name, 0) + 1
            )
    return merged


# -- rendering ----------------------------------------------------------------


def format_batch_report(report: BatchReport) -> str:
    """The full text report ``python -m repro batch`` prints."""
    statuses = report.by_status()
    status_text = ", ".join(
        f"{count} {status}" for status, count in sorted(statuses.items())
    )
    lines = [
        f"jobs:        {len(report.results)} ({status_text})",
        f"workers:     {report.workers or 'inline'}",
        f"wall time:   {report.wall_time:.2f}s "
        f"({report.jobs_per_minute:.1f} jobs/minute)",
        f"query cache: {report.cache_hits} hits / "
        f"{report.cache_misses} misses "
        f"({100 * report.cache_hit_rate:.1f}% hit rate)",
    ]
    automata = merge_automata_counters(report.results)
    if any(automata[key] for key in ("hits", "misses", "disk_hits")):
        lines.append(
            f"automata:    {automata['hits']} hits / "
            f"{automata['misses']} compiles / "
            f"{automata['disk_hits']} disk loads / "
            f"{automata['disk_stores']} disk stores "
            f"({100 * automata['hit_rate']:.1f}% hit rate)"
        )
    if report.jobs_submitted:
        lines.append(
            f"dedup:       {report.jobs_submitted} submitted, "
            f"{report.jobs_executed} executed, "
            f"{report.jobs_coalesced} coalesced"
        )
    if report.total_retries or report.quarantined_jobs:
        lines.append(
            f"recovery:    {report.total_retries} retries, "
            f"{report.quarantined_jobs} quarantined"
        )

    analyze = report.of_kind("analyze")
    if analyze:
        merged = merge_analyze(analyze)
        lines += ["", "== Analysis (DSE) " + "=" * 46]
        lines.append(format_analyze_table(analyze))
        lines.append(
            f"solver: {merged['solver_queries']} queries, "
            f"{merged['solver_seconds']:.2f}s total; "
            f"{merged['refined_queries']} refined "
            f"(mean {merged['mean_refinements']:.1f} refinements)"
        )

    solve = report.of_kind("solve")
    if solve:
        merged = merge_solve(solve)
        lines += ["", "== Solve (model -> solve -> refine) " + "=" * 28]
        lines.append(
            f"{merged['solved']} solved / {merged['unsolved']} unsolved "
            f"/ {merged['failed_jobs']} failed of {merged['jobs']} jobs; "
            f"{merged['solver_queries']} solver queries, "
            f"{merged['solver_seconds']:.2f}s"
        )

    fuzz = report.of_kind("fuzz")
    disagreement_tallies = merge_disagreement_tallies(report.results)
    if fuzz or disagreement_tallies:
        lines += ["", "== Soundness (conformance) " + "=" * 37]
        if fuzz:
            merged = merge_fuzz(fuzz)
            cov = merged["coverage"]
            lines.append(
                f"{merged['pairs']} pairs, {merged['checks']} checks "
                f"({merged['skipped']} skipped); coverage: "
                f"sticky {cov.get('sticky', 0)}, "
                f"unicode {cov.get('unicode', 0)}, "
                f"named groups {cov.get('named_groups', 0)}, "
                f"backrefs {cov.get('backrefs', 0)}, "
                f"lookaheads {cov.get('lookaheads', 0)}"
            )
            lines.append(
                f"{merged['disagreements']} disagreements "
                f"({merged['tolerated_overapprox']} tolerated "
                f"over-approximations); artifacts: "
                f"{merged['artifacts_new']} new / "
                f"{merged['artifacts_dup']} dup, "
                f"{merged['unique_fingerprints']} unique, "
                f"{merged['shrink_steps']} shrink steps"
            )
        if disagreement_tallies:
            lines.append(format_soundness_table(disagreement_tallies))
        else:
            lines.append("no backend disagreements recorded")

    backend_tallies = merge_backend_tallies(report.results)
    if backend_tallies:
        lines += ["", "== Solver backends " + "=" * 45]
        lines.append(format_backend_table(backend_tallies))

    route_tallies = merge_route_tallies(report.results)
    if route_tallies:
        lines += ["", "== Query routing " + "=" * 47]
        lines.append(format_route_table(route_tallies))

    session_tallies = merge_session_tallies(report.results)
    if session_tallies:
        lines += ["", "== Incremental sessions " + "=" * 40]
        lines.append(format_session_table(session_tallies))

    if report.trace_path or report.metrics_path or report.slow_queries:
        lines += ["", "== Observability " + "=" * 47]
        if report.trace_path:
            procs = (
                f" ({len(report.obs_pids)} processes)"
                if report.obs_pids
                else ""
            )
            lines.append(f"trace:       {report.trace_path}{procs}")
        if report.metrics_path:
            lines.append(f"metrics:     {report.metrics_path}")
        if report.slow_queries:
            lines.append(
                f"slow queries: {len(report.slow_queries)} recorded"
            )
            lines.append(format_slow_query_table(report.slow_queries))

    survey = report.of_kind("survey")
    if survey:
        from repro.corpus.survey import format_table4, format_table5

        merged = merge_survey(survey)
        lines += ["", "== Survey (Tables 4/5) " + "=" * 41]
        lines.append(format_table4(merged))
        lines.append("")
        lines.append(format_table5(merged))

    errors = ordered_results(
        [r for r in report.results if r.status != "ok"]
    )
    if errors:
        lines += ["", "== Failed jobs " + "=" * 49]
        for result in errors:
            last = (
                result.error.strip().splitlines()[-1]
                if result.error
                else "?"
            )
            lines.append(f"{result.job_id} [{result.status}]: {last}")
    return "\n".join(lines)
