"""Fault injection, retry/backoff, and circuit breakers.

Three small, composable pieces behind the service's fault-tolerance
story (see the README's "Fault tolerance" section):

- :mod:`repro.faults.plan` — deterministic, seeded fault *injection*
  at named sites, driven by a JSON :class:`FaultPlan` and never active
  by default (the chaos suite's lever);
- :mod:`repro.faults.retry` — :class:`RetryPolicy`: bounded retries
  with deterministic backoff for crashed-worker/timeout results, and
  poison-job quarantine (the *recovery* half);
- :mod:`repro.faults.breaker` — per-command :class:`CircuitBreaker`
  so a broken solver binary short-circuits to the native fallback
  instead of paying spawn-and-fail per query.

The plan engine's module-level functions (``fire`` / ``crash_point`` /
``corrupt_file`` / ``install`` / ``snapshot`` / ``reset``) are
re-exported here; production call sites use
``from repro import faults`` and ``faults.fire("site", ...)``.
"""

from repro.faults.breaker import (
    CircuitBreaker,
    breakers_snapshot,
    get_breaker,
    reset_breakers,
)
from repro.faults.plan import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    corrupt_file,
    crash_point,
    enabled,
    fire,
    install,
    reset,
    snapshot,
)
from repro.faults.retry import (
    CRASH_PREFIX,
    RetryPolicy,
    crash_result,
    lease_lost_result,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "CRASH_PREFIX",
    "CircuitBreaker",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "breakers_snapshot",
    "corrupt_file",
    "crash_point",
    "crash_result",
    "enabled",
    "fire",
    "get_breaker",
    "install",
    "lease_lost_result",
    "reset",
    "reset_breakers",
    "snapshot",
]
