"""Bounded retry with deterministic backoff, and poison-job quarantine.

A :class:`RetryPolicy` decides what happens to a job result that the
runner could not trust: a *crash* (the worker process died mid-job —
error prefixed :data:`CRASH_PREFIX`) or a *timeout* (the backstop
fired).  Deterministic job errors — a parse failure, a bad spec — are
**never** retried: re-running them reproduces the error and wastes a
slot.

Backoff is exponential with *deterministic* jitter: the jitter
fraction is a hash of ``(token, attempt)`` (the token is usually the
job id), so a retry schedule is reproducible run-to-run — the same
property the fault plan has, and what lets the chaos suite assert
byte-identical reports modulo retry counters.

Quarantine is the crash-loop fuse: a job whose execution has killed
``quarantine_after`` workers is permanently failed with
``status="quarantined"`` instead of being fed to (and killing) a
fresh worker forever.  Timeouts never quarantine — they exhaust
``max_retries`` and surface as ordinary timeouts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # deferred: repro.service.runner imports this package
    from repro.service.jobs import JobResult

#: Error-message prefix marking a result synthesized for a job whose
#: worker process died (SIGKILL, OOM, hard crash) before delivering.
CRASH_PREFIX = "WorkerCrashed"


def crash_result(job_id: str, kind: str, detail: str = "") -> "JobResult":
    """The result the runner synthesizes for a dead worker's job."""
    from repro.service.jobs import JobResult

    note = f": {detail}" if detail else ""
    return JobResult(
        job_id=job_id,
        kind=kind,
        status="error",
        error=f"{CRASH_PREFIX}: worker died while running job "
        f"{job_id}{note}",
    )


def lease_lost_result(
    job_id: str, kind: str, worker_id: str, reason: str
) -> "JobResult":
    """The result the cluster coordinator synthesizes for a revoked lease.

    Carries :data:`CRASH_PREFIX` so :meth:`RetryPolicy.classify` treats
    a dead/partitioned *node* exactly like a dead pool worker — one
    recovery path, from SIGKILLed subprocess to unplugged machine.
    """
    return crash_result(
        job_id, kind, f"lease on node {worker_id} revoked ({reason})"
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner and the serve scheduler re-drive failed jobs.

    ``max_retries`` bounds re-dispatches per job (0 = the pre-existing
    fail-fast behavior); ``quarantine_after`` is the crash-loop fuse —
    after that many worker deaths the job is quarantined (default:
    ``max_retries + 1``, i.e. a job is allowed to use all its retries
    on crashes before the fuse blows).
    """

    max_retries: int = 0
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.25
    quarantine_after: Optional[int] = None

    @property
    def crash_limit(self) -> int:
        if self.quarantine_after is not None:
            return max(1, self.quarantine_after)
        return self.max_retries + 1

    # -- classification ------------------------------------------------------

    @staticmethod
    def classify(result: "JobResult") -> Optional[str]:
        """``"crash"`` / ``"timeout"`` when retryable, else ``None``."""
        if result.status == "timeout":
            return "timeout"
        if result.status == "error" and str(result.error or "").startswith(
            CRASH_PREFIX
        ):
            return "crash"
        return None

    def should_retry(self, kind: Optional[str], attempt: int,
                     crashes: int) -> bool:
        """Whether attempt ``attempt`` (0-based) gets another go."""
        if kind is None or attempt >= self.max_retries:
            return False
        if kind == "crash" and crashes >= self.crash_limit:
            return False
        return True

    # -- scheduling ----------------------------------------------------------

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before re-dispatching retry ``attempt`` (1-based)."""
        base = min(
            self.backoff_s * self.backoff_factor ** max(0, attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter <= 0:
            return base
        digest = hashlib.blake2b(
            f"{token}:{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2**64
        return base * (1.0 + self.jitter * fraction)

    # -- terminal results ----------------------------------------------------

    def finalize(self, result: "JobResult", attempts: int,
                 crashes: int) -> "JobResult":
        """Stamp retry accounting on a job's terminal result.

        When the job has hit the crash-loop fuse, the terminal result
        is replaced by a ``status="quarantined"`` tombstone.
        """
        result.retries = attempts
        if crashes >= self.crash_limit and crashes > 0:
            result.status = "quarantined"
            result.error = (
                f"quarantined after killing {crashes} worker"
                f"{'s' if crashes != 1 else ''} "
                f"(last error: {result.error})"
            )
        return result
