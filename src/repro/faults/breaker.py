"""Per-command circuit breakers for external solver processes.

A solver binary that is crashing on every query (bad install, OOM
killer, wedged filesystem) costs a full spawn + timeout per query if
the backends keep trying it.  A :class:`CircuitBreaker` per session
command turns that into one cheap check: repeated failures *open* the
breaker, queries short-circuit to the native fallback for a cool-down
window, then a single *half-open* probe re-admits the binary if it
answers.

Split API, matching how the backends consume it:

- :meth:`allow` **consumes**: it admits the half-open probe (at most
  one outstanding) and counts a short-circuit when it refuses.  Only
  the gating backend (``PooledSessionBackend``) calls it.
- :meth:`peek_open` is **non-consuming**: the router uses it to divert
  classical queries to native while the breaker is open without
  eating the probe slot.

State transitions (``open`` / ``close`` / ``reopen``) are pushed to
``repro.obs`` events and metrics, and to ``SolverStats`` breaker
tallies when a recorder is attached, so trips are visible in
``obs.snapshot()``, the batch report, and the serve ``health`` op.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Callable, Dict, Optional

from repro import obs
from repro.obs import metrics as _metrics

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed → open on ``fail_threshold`` consecutive failures →
    half-open after ``cooldown_s`` → closed on a good probe."""

    def __init__(self, name: str, *, fail_threshold: int = 3,
                 cooldown_s: float = 5.0,
                 clock: Callable[[], float] = monotonic):
        self.name = name
        self.fail_threshold = max(1, fail_threshold)
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive
        self._opened_at = 0.0
        self._probing = False
        self._probe_at = 0.0
        self.trips = 0
        self.short_circuits = 0
        #: optional ``fn(name, transition)`` — bound to
        #: ``SolverStats.record_breaker`` by the session backends.
        self.recorder: Optional[Callable[[str, str], None]] = None

    # -- transitions ---------------------------------------------------------

    def _transition(self, state: str, event: str) -> None:
        self._state = state
        obs.event(
            "breaker:transition", command=self.name, to=state, event=event
        )
        _metrics.count(
            "breaker_transitions_total", command=self.name, event=event
        )
        recorder = self.recorder
        if recorder is not None:
            try:
                recorder(self.name, event)
            except Exception:
                pass

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN:
                self._probing = False
                self._opened_at = self._clock()
                self.trips += 1
                self._transition(OPEN, "reopen")
            elif (
                self._state == CLOSED
                and self._failures >= self.fail_threshold
            ):
                self._opened_at = self._clock()
                self.trips += 1
                self._transition(OPEN, "open")

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state in (OPEN, HALF_OPEN):
                self._probing = False
                self._transition(CLOSED, "close")

    # -- gating --------------------------------------------------------------

    def allow(self) -> bool:
        """May a query run against the binary right now? (consuming)"""
        with self._lock:
            now = self._clock()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if now - self._opened_at >= self.cooldown_s:
                    self._probing = True
                    self._probe_at = now
                    self._transition(HALF_OPEN, "probe")
                    return True
                self.short_circuits += 1
                _metrics.count(
                    "breaker_short_circuits_total", command=self.name
                )
                return False
            # Half-open: one probe outstanding at a time — but a probe
            # whose caller never reported back (e.g. an unprintable
            # formula that touched no process) goes stale after a
            # cooldown and frees the slot, so the breaker can't wedge.
            if (
                not self._probing
                or now - self._probe_at >= self.cooldown_s
            ):
                self._probing = True
                self._probe_at = now
                return True
            self.short_circuits += 1
            _metrics.count(
                "breaker_short_circuits_total", command=self.name
            )
            return False

    def peek_open(self) -> bool:
        """Is the binary currently distrusted? (non-consuming).

        ``False`` once the cooldown has elapsed — the router then
        routes to the session again, whose gate (:meth:`allow`) admits
        exactly one half-open probe; concurrent queries in that window
        still read ``True`` and divert to native.
        """
        with self._lock:
            now = self._clock()
            if self._state == CLOSED:
                return False
            if self._state == OPEN:
                return now - self._opened_at < self.cooldown_s
            # Half-open: distrusted while a fresh probe is in flight.
            return self._probing and now - self._probe_at < self.cooldown_s

    # -- reporting -----------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self.trips,
                "short_circuits": self.short_circuits,
            }


# -- process-global registry (one breaker per session command) ----------------

_BREAKERS: Dict[str, CircuitBreaker] = {}
_REGISTRY_LOCK = threading.Lock()


def get_breaker(name: str, **kwargs) -> CircuitBreaker:
    """The process's breaker for ``name`` (e.g. ``session:z3``),
    created on first use with ``kwargs``."""
    with _REGISTRY_LOCK:
        breaker = _BREAKERS.get(name)
        if breaker is None:
            breaker = CircuitBreaker(name, **kwargs)
            _BREAKERS[name] = breaker
        return breaker


def breakers_snapshot() -> Dict[str, dict]:
    with _REGISTRY_LOCK:
        return {
            name: breaker.snapshot()
            for name, breaker in _BREAKERS.items()
        }


def reset_breakers() -> None:
    """Drop all registered breakers (tests)."""
    with _REGISTRY_LOCK:
        _BREAKERS.clear()
