"""Deterministic fault injection for the analysis service.

Chaos testing needs faults that are *reproducible*: a test asserting
"the second job on this worker dies" must kill exactly that job on
every run, on every machine.  A :class:`FaultPlan` is a small, JSON-
shaped set of :class:`FaultRule`\\ s, each naming an injection *site*
(a string like ``worker:job`` or ``session:query``), an *action*
(``kill`` / ``wedge`` / ``error`` / ``corrupt`` / ``drop`` /
``delay``), and a deterministic trigger — the site's nth hit, every
kth hit, or a seeded pseudo-probability (a hash of ``(seed, site,
hit)``, never ``random``).

The plan is **never active by default**: production code calls
:func:`fire` at each site, and with no plan installed that is one
module-global ``is None`` check — the same strictly-disabled contract
as ``repro.obs`` (bounded in ``BENCH_faults.json``).  A plan is
installed explicitly (:func:`install`) or through the
``REPRO_FAULT_PLAN`` environment variable (inline JSON or a file
path), which is how pool worker processes pick it up: the runner
forwards the plan spec through the pool initializer, and the env var
covers processes the runner did not spawn.

Hit counters are **per process** (each worker counts its own sites) —
that is what makes ``kill`` rules deterministic across respawns: a
replacement worker starts counting from zero, so "kill on the 2nd
job" kills once, not on every retry.

Named sites threaded through the codebase:

==================  =========================================================
``worker:job``      start of a pool worker's job execution (``kill`` /
                    ``wedge`` / ``error``)
``session:spawn``   solver-process spawn (``error`` → spawn failure)
``session:query``   one incremental round trip (``wedge`` swallows the
                    script so the read loop times out; ``kill`` kills the
                    solver process mid-query)
``query_store:get`` persistent query-store read (``corrupt`` garbles the
                    entry file first)
``dfa_store:get``   persistent automata-store read (same)
``serve:frame``     daemon → client frame enqueue (``drop`` / ``delay``)
``cluster:heartbeat``  one worker-node heartbeat tick (``drop`` skips the
                    send, so the coordinator's missed-heartbeat detector
                    revokes the node's leases)
``cluster:partition``  consulted once per heartbeat tick on a worker
                    node; a fired rule silences the node — no heartbeats
                    out, inbound frames dropped — for ``delay_s``
                    (default 30s), simulating a network partition
``node:kill``       worker-node assignment receipt (``kill`` SIGKILLs
                    the whole node process mid-corpus; ``error`` fails
                    the one assignment)
==================  =========================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.obs import metrics as _metrics

#: Environment variable carrying a plan: inline JSON (starts with
#: ``{``) or the path of a JSON file.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_ACTIONS = ("kill", "wedge", "error", "corrupt", "drop", "delay")


class FaultInjected(RuntimeError):
    """Raised by an ``error``-action fault at a crash point."""

    def __init__(self, site: str, action: str = "error"):
        super().__init__(f"fault injected at {site} ({action})")
        self.site = site
        self.action = action


@dataclass
class FaultRule:
    """One deterministic trigger at one site.

    Trigger selectors (the first configured one applies; with none the
    rule fires on *every* hit up to ``count``):

    - ``nth``: fire on exactly the nth hit of the site (1-based,
      per process);
    - ``every``: fire on every ``every``-th hit;
    - ``p``: fire pseudo-randomly with probability ``p``, derived from
      a hash of ``(plan seed, site, hit)`` — deterministic for a seed.

    ``count`` caps total fires of this rule per process (default 1 for
    ``nth`` rules, unlimited otherwise); ``match`` restricts the rule
    to hits whose context values (e.g. ``job_id``) contain the
    substring; ``delay_s`` parameterizes ``wedge``/``delay`` actions.
    """

    site: str
    action: str
    nth: Optional[int] = None
    every: Optional[int] = None
    p: Optional[float] = None
    count: Optional[int] = None
    match: Optional[str] = None
    delay_s: float = 0.0

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {_ACTIONS})"
            )

    @property
    def fire_limit(self) -> Optional[int]:
        if self.count is not None:
            return self.count
        return 1 if self.nth is not None else None

    def to_spec(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v not in (None,)}

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultRule":
        return cls(**spec)


class FaultPlan:
    """A seeded set of rules plus per-process hit/fire accounting."""

    def __init__(self, rules: List[FaultRule], seed: int = 0):
        self.rules = list(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        #: site → how many times :func:`fire` was consulted there.
        self.hits: Dict[str, int] = {}
        #: ``"site:action"`` → how many faults actually fired.
        self.injected: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(self.rules)

    # -- construction --------------------------------------------------------

    def to_spec(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_spec() for rule in self.rules],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        rules = [FaultRule.from_spec(r) for r in spec.get("rules", [])]
        return cls(rules, seed=spec.get("seed", 0))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_spec(json.loads(text))

    # -- triggering ----------------------------------------------------------

    def _chance(self, site: str, hit: int) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}:{site}:{hit}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def fire(self, site: str, **ctx) -> Optional[FaultRule]:
        """One hit of ``site``; returns the rule that fires, if any."""
        with self._lock:
            hit = self.hits.get(site, 0) + 1
            self.hits[site] = hit
            for index, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                limit = rule.fire_limit
                if limit is not None and self._fired[index] >= limit:
                    continue
                if rule.match is not None and not any(
                    rule.match in str(value) for value in ctx.values()
                ):
                    continue
                if rule.nth is not None:
                    selected = hit == rule.nth
                elif rule.every is not None:
                    selected = hit % rule.every == 0
                elif rule.p is not None:
                    selected = self._chance(site, hit) < rule.p
                else:
                    selected = True
                if not selected:
                    continue
                self._fired[index] += 1
                key = f"{site}:{rule.action}"
                self.injected[key] = self.injected.get(key, 0) + 1
                fired = rule
                break
            else:
                return None
        _metrics.count(
            "faults_injected_total", site=site, action=fired.action
        )
        return fired

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": len(self.rules),
                "hits": dict(self.hits),
                "injected": dict(self.injected),
            }


# -- the process-global plan ---------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan=None) -> Optional[FaultPlan]:
    """Install the process's fault plan (or clear it).

    ``plan`` may be a :class:`FaultPlan`, a spec dict, JSON text, or
    ``None`` — in which case the ``REPRO_FAULT_PLAN`` environment
    variable is consulted (inline JSON or a file path) and, when that
    is unset too, any previously installed plan is *cleared*.  Called
    by every worker initializer, so worker state is deterministic no
    matter what a forked parent had installed.
    """
    global _ACTIVE
    if plan is None:
        raw = os.environ.get(FAULT_PLAN_ENV)
        if not raw:
            _ACTIVE = None
            return None
        if not raw.lstrip().startswith("{"):
            with open(raw) as handle:
                raw = handle.read()
        plan = FaultPlan.from_json(raw)
    elif isinstance(plan, str):
        plan = FaultPlan.from_json(plan)
    elif isinstance(plan, dict):
        plan = FaultPlan.from_spec(plan)
    _ACTIVE = plan
    return plan


def reset() -> None:
    """Clear the installed plan (tests)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def fire(site: str, **ctx) -> Optional[FaultRule]:
    """One hit of ``site``; ``None`` (one global load + ``is None``
    comparison) when no plan is installed — the hot-path contract."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, **ctx)


def snapshot() -> dict:
    """JSON-shaped injection accounting (``{}`` with no plan)."""
    plan = _ACTIVE
    return plan.snapshot() if plan is not None else {}


# -- site helpers --------------------------------------------------------------


def crash_point(site: str, **ctx) -> None:
    """A site where the *current process* can be killed or delayed.

    ``kill`` SIGKILLs this process (the pool-worker death fault —
    uncatchable, exactly like an OOM kill); ``error`` raises
    :class:`FaultInjected`; ``wedge``/``delay`` sleep ``delay_s``
    (default: long enough to trip any reasonable backstop).
    """
    rule = fire(site, **ctx)
    if rule is None:
        return
    if rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif rule.action == "error":
        raise FaultInjected(site)
    elif rule.action in ("wedge", "delay"):
        time.sleep(rule.delay_s or 3600.0)


def corrupt_file(site: str, path: str, **ctx) -> bool:
    """A site guarding a disk-store entry read.

    When a ``corrupt`` rule fires, the entry at ``path`` is overwritten
    with garbage bytes (a missing file is left missing), so the store's
    defensive read path — evict and re-solve — is what gets exercised.
    Returns whether a fault fired.
    """
    rule = fire(site, path=path, **ctx)
    if rule is None or rule.action != "corrupt":
        return False
    try:
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\x00repro-fault-garbage")
            handle.truncate()
    except OSError:
        pass
    return True
