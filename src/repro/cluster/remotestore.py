"""Read-through store adapters over the coordinator's cache service.

A worker node's query cache and automata interner normally fall back
to *disk* stores (:class:`~repro.solver.backends.cached.QueryDiskStore`
/ :class:`~repro.automata.cache.DfaDiskStore`).  These adapters present
the same duck interface — ``get``/``put``/counters/``root`` — but are
backed by ``cache_get``/``cache_put`` frames to the coordinator, so a
fresh node warms itself from the fleet's shared answers instead of
re-solving and re-compiling what any other node already paid for.
Canonical fingerprints are host-independent, which is what makes the
keys meaningful across machines.

Everything is best-effort, exactly like the disk stores: a timed-out
or failed round trip is a miss (counted in ``failures``), an
undecodable blob is evicted-as-miss (counted in ``corrupt_evictions``),
and puts are fire-and-forget — the network is a cache tier, never a
failure source.

The channel (``cache_get(store, key)`` / ``cache_put(store, key,
blob)``) is the :class:`~repro.cluster.worker.WorkerNode`'s pending-
request table over its coordinator socket; blobs are raw pickle bytes
(base64 framing is the channel's concern).
"""

from __future__ import annotations

import pickle
from typing import Optional


class _RemoteStoreBase:
    """Shared shape of both adapters (the disk stores' duck type)."""

    store_name = ""

    def __init__(self, channel):
        self._channel = channel
        self.root = f"remote://{self.store_name}"
        self.max_entries = None
        self.loads = 0
        self.stores = 0
        self.failures = 0
        self.evictions = 0
        self.corrupt_evictions = 0

    def _fetch(self, key: str) -> Optional[bytes]:
        try:
            return self._channel.cache_get(self.store_name, key)
        except Exception:
            self.failures += 1
            return None

    def _ship(self, key: str, blob: bytes) -> None:
        try:
            self._channel.cache_put(self.store_name, key, blob)
            self.stores += 1
        except Exception:
            self.failures += 1

    def gc(self) -> int:
        return 0  # the coordinator's store owns eviction

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        # ``len() == 0`` must not read as "no store configured": the
        # runner truth-tests ``config.query_cache`` / ``automata_cache``
        # before attaching, and those slots may hold this adapter.
        return True


class RemoteQueryStore(_RemoteStoreBase):
    """Query-store adapter: entries are ``(status, assignment)`` blobs."""

    store_name = "query"

    def get(self, fingerprint: str):
        blob = self._fetch(fingerprint)
        if blob is None:
            return None
        from repro.solver.backends.cached import CachedResult

        try:
            status, assignment = pickle.loads(blob)
            result = CachedResult(
                str(status),
                None
                if assignment is None
                else tuple((str(n), v) for n, v in assignment),
            )
        except Exception:
            self.corrupt_evictions += 1
            self.failures += 1
            return None
        self.loads += 1
        return result

    def put(self, fingerprint: str, entry) -> None:
        self._ship(
            fingerprint,
            pickle.dumps((entry.status, entry.assignment), protocol=4),
        )


class RemoteDfaStore(_RemoteStoreBase):
    """Automata-store adapter: entries are ``dfa_to_blob`` pickles."""

    store_name = "dfa"

    def get(self, fingerprint: str):
        blob = self._fetch(fingerprint)
        if blob is None:
            return None
        from repro.automata.cache import dfa_from_blob

        try:
            dfa = dfa_from_blob(pickle.loads(blob))
        except Exception:
            self.corrupt_evictions += 1
            self.failures += 1
            return None
        self.loads += 1
        return dfa

    def put(self, fingerprint: str, dfa) -> None:
        from repro.automata.cache import dfa_to_blob

        self._ship(fingerprint, pickle.dumps(dfa_to_blob(dfa), protocol=4))
