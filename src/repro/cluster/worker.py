"""The cluster worker node: ``python -m repro worker --join ADDR``.

One node is one process that dials the coordinator, registers with its
capacity, and then serves ``assign`` frames by running the job specs on
its own local :class:`~repro.service.runner.BatchRunner` — inline
executor threads by default (``workers=0`` with ``inline_concurrency ==
capacity``), or a process pool with ``--workers N``.  Results go back
as ``done`` frames echoing the epoch-tagged lease; the coordinator owns
retries, timeouts, and exactly-once delivery, so the node stays dumb on
purpose: run what you are leased, report what happened, heartbeat.

Liveness is a heartbeat thread shipping the local runner's
``pool_health()`` plus a load sample every ``heartbeat_s`` (assigned by
the coordinator at registration).  A lost connection triggers rejoin
with bounded exponential backoff under a **fresh epoch** — any work the
old incarnation still finishes is dropped coordinator-side as a late
done, which is what makes node restarts safe mid-corpus.

Three chaos sites live here (see :mod:`repro.faults.plan`):

- ``node:kill`` fires on assignment receipt — ``kill`` SIGKILLs the
  whole node process, the cluster twin of the pool-worker death fault;
- ``cluster:heartbeat`` fires per heartbeat tick — ``drop`` skips the
  send so the coordinator's missed-heartbeat detector trips;
- ``cluster:partition`` is consulted per heartbeat tick — a fired rule
  silences the node entirely (no sends, inbound frames dropped) for
  ``delay_s``, simulating a network partition: the coordinator revokes
  and re-dispatches, and the healed node finds its socket closed and
  rejoins under a new epoch.
"""

from __future__ import annotations

import base64
import itertools
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro import faults, obs
from repro.faults.plan import FaultInjected
from repro.serve import protocol
from repro.service.jobs import JobResult, job_from_spec
from repro.service.runner import BatchRunner


def parse_join_address(addr: str) -> Tuple:
    """``unix:PATH`` / ``PATH`` / ``HOST:PORT`` / ``:PORT`` → address.

    Anything that does not look like ``host:port`` is a unix socket
    path, matching how the serve daemon binds.
    """
    if addr.startswith("unix:"):
        return ("unix", addr[len("unix:"):])
    if addr.startswith("tcp:"):
        addr = addr[len("tcp:"):]
    host, sep, port = addr.rpartition(":")
    if sep and port.isdigit():
        return ("tcp", host or "127.0.0.1", int(port))
    return ("unix", addr)


@dataclass
class WorkerConfig:
    """Node knobs (wired from ``python -m repro worker`` flags)."""

    join: str = ""  # coordinator address (parse_join_address forms)
    capacity: int = 1  # concurrent leases this node accepts
    worker_id: Optional[str] = None  # default: coordinator-assigned
    #: Read worker caches through the coordinator's stores when it
    #: offers them (inline runner only — pool workers are separate
    #: processes and keep their configured local stores).
    remote_cache: bool = True
    #: Consecutive failed (re)connects before giving up; ``None``
    #: retries forever (the daemon default — a node should outwait
    #: a coordinator restart).
    reconnect_attempts: Optional[int] = None
    reconnect_backoff_s: float = 0.5
    reconnect_backoff_max_s: float = 10.0
    connect_timeout_s: float = 10.0
    #: Bound on one remote cache round trip; a slow coordinator is a
    #: cache miss, never a stall.
    cache_timeout_s: float = 5.0


class _PendingValue:
    """One in-flight ``cache_get`` awaiting its ``cache_value``."""

    __slots__ = ("event", "blob")

    def __init__(self):
        self.event = threading.Event()
        self.blob: Optional[bytes] = None


class WorkerNode:
    """One node of the fleet: a runner behind a coordinator socket."""

    def __init__(self, runner: BatchRunner, config: WorkerConfig):
        self.runner = runner
        self.config = config
        self.worker_id: Optional[str] = config.worker_id
        self.epoch = 0
        self.quarantined: Set[str] = set()
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._in_flight = 0
        self._partition_until = 0.0
        self._heartbeat_s = 2.0
        self._caches: dict = {}
        self._cache_ids = itertools.count(1)
        self._pending: Dict[str, _PendingValue] = {}
        self._pending_lock = threading.Lock()
        # -- lifetime counters (snapshot()) --------------------------------
        self.registrations = 0
        self.jobs_done = 0
        self.assigns_refused = 0
        self.done_send_failures = 0
        self.frames_dropped_partitioned = 0
        self.heartbeats_sent = 0
        self.heartbeats_dropped = 0
        self.connected = threading.Event()

    # -- public surface --------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._state_lock:
            return self._in_flight

    def run(self) -> None:
        """Serve until :meth:`stop`: connect, register, run leases.

        Blocking; reconnects with backoff on connection loss.  Returns
        once stopped (or once ``reconnect_attempts`` consecutive dials
        failed), after closing the local runner gracefully.
        """
        failures = 0
        try:
            while not self._stop.is_set():
                try:
                    self._connect()
                    self._register()
                except (OSError, ConnectionError, protocol.ProtocolError):
                    self._close_socket()
                    failures += 1
                    attempts = self.config.reconnect_attempts
                    if attempts is not None and failures >= attempts:
                        return
                    backoff = min(
                        self.config.reconnect_backoff_s
                        * 2 ** min(failures - 1, 6),
                        self.config.reconnect_backoff_max_s,
                    )
                    if self._stop.wait(backoff):
                        return
                    continue
                failures = 0
                heartbeat_stop = threading.Event()
                heartbeat = threading.Thread(
                    target=self._heartbeat_loop,
                    args=(heartbeat_stop,),
                    name="repro-worker-heartbeat",
                    daemon=True,
                )
                heartbeat.start()
                try:
                    self._read_frames()
                finally:
                    self.connected.clear()
                    heartbeat_stop.set()
                    self._fail_pending()
                    self._close_socket()
                    heartbeat.join(timeout=self._heartbeat_s + 1.0)
        finally:
            self.runner.close(graceful=True)

    def stop(self) -> None:
        """Non-blocking and signal-safe: unblocks :meth:`run`.

        Only *shuts down* the socket here — closing the buffered
        reader from a signal handler would re-enter the ``readline``
        the read loop is blocked in (``RuntimeError: reentrant call``).
        The run loop's own teardown does the full close.
        """
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def snapshot(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "epoch": self.epoch,
            "connected": self.connected.is_set(),
            "in_flight": self.in_flight,
            "jobs_done": self.jobs_done,
            "registrations": self.registrations,
            "quarantined": len(self.quarantined),
            "assigns_refused": self.assigns_refused,
            "done_send_failures": self.done_send_failures,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_dropped": self.heartbeats_dropped,
            "frames_dropped_partitioned": self.frames_dropped_partitioned,
        }

    # -- connection lifecycle --------------------------------------------------

    def _connect(self) -> None:
        parsed = parse_join_address(self.config.join)
        if parsed[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.config.connect_timeout_s)
            sock.connect(parsed[1])
        else:
            sock = socket.create_connection(
                (parsed[1], parsed[2]),
                timeout=self.config.connect_timeout_s,
            )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _register(self) -> None:
        self._send_frame(
            protocol.register_frame(
                "register",
                {
                    "worker_id": self.worker_id,
                    "capacity": self.config.capacity,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                },
            )
        )
        deadline = time.monotonic() + self.config.connect_timeout_s
        while True:
            if time.monotonic() > deadline:
                raise protocol.ProtocolError(
                    "bad-request", "no 'registered' reply from coordinator"
                )
            frame = self._read_frame()
            if frame is None:
                raise ConnectionError("coordinator closed during register")
            op = frame.get("op")
            if op == "registered":
                break
            if op == "error":
                raise protocol.ProtocolError(
                    frame.get("error", "error"), frame.get("detail", "")
                )
        self.worker_id = frame.get("worker_id") or self.worker_id
        self.epoch = int(frame.get("epoch", 0))
        self._heartbeat_s = float(frame.get("heartbeat_s", 2.0))
        self._caches = frame.get("caches") or {}
        self.quarantined.update(frame.get("quarantined") or ())
        self.registrations += 1
        self._sock.settimeout(None)
        self._ensure_runner()
        self.connected.set()
        obs.event(
            "cluster:joined", worker=self.worker_id, epoch=self.epoch
        )

    def _ensure_runner(self) -> None:
        if self.runner.started:
            return
        if (
            self.config.remote_cache
            and self.runner.config.workers == 0
        ):
            # Read-through the fleet's shared answers.  Inline runner
            # only: the store adapters hold this node's socket channel,
            # which cannot cross into pool worker processes — those
            # keep whatever local store paths they were configured with.
            from repro.cluster.remotestore import (
                RemoteDfaStore,
                RemoteQueryStore,
            )

            if self._caches.get("query") and not self.runner.config.query_cache:
                self.runner.config.query_cache = RemoteQueryStore(self)
            if (
                self._caches.get("dfa")
                and not self.runner.config.automata_cache
            ):
                self.runner.config.automata_cache = RemoteDfaStore(self)
        self.runner.start()

    def _close_socket(self) -> None:
        sock, self._sock = self._sock, None
        reader, self._reader = self._reader, None
        for handle in (reader, sock):
            if handle is None:
                continue
            try:
                handle.close()
            except OSError:
                pass

    # -- frame transport -------------------------------------------------------

    def _send_frame(self, frame: dict) -> None:
        sock = self._sock
        if sock is None:
            raise ConnectionError("not connected")
        data = protocol.encode_frame(frame)
        with self._send_lock:
            sock.sendall(data)

    def _read_frame(self) -> Optional[dict]:
        reader = self._reader
        if reader is None:
            return None
        try:
            line = reader.readline(protocol.MAX_FRAME_BYTES + 2)
        except (OSError, ValueError):
            return None
        if not line:
            return None
        try:
            return protocol.decode_frame(line)
        except protocol.ProtocolError:
            return {}

    def _read_frames(self) -> None:
        while not self._stop.is_set():
            frame = self._read_frame()
            if frame is None:
                return
            if not frame:
                continue
            if self._partitioned():
                # A partitioned node neither hears nor speaks: inbound
                # assigns/acks are lost exactly like the heartbeats.
                self.frames_dropped_partitioned += 1
                continue
            op = frame.get("op")
            if op == "assign":
                self._handle_assign(frame)
            elif op == "cache_value":
                self._handle_cache_value(frame)
            elif op == "quarantine":
                self.quarantined.update(frame.get("keys") or ())
            # heartbeat_ack / error frames carry no state to apply

    # -- partition simulation --------------------------------------------------

    def _partitioned(self) -> bool:
        return time.monotonic() < self._partition_until

    # -- heartbeats ------------------------------------------------------------

    def _heartbeat_loop(self, stop: threading.Event) -> None:
        while not stop.wait(self._heartbeat_s):
            rule = faults.fire("cluster:partition", worker=self.worker_id)
            if rule is not None:
                self._partition_until = time.monotonic() + (
                    rule.delay_s or 30.0
                )
                obs.event(
                    "cluster:partitioned",
                    worker=self.worker_id,
                    seconds=rule.delay_s or 30.0,
                )
            if self._partitioned():
                self.heartbeats_dropped += 1
                continue
            rule = faults.fire("cluster:heartbeat", worker=self.worker_id)
            if rule is not None:
                if rule.action in ("drop", "wedge"):
                    self.heartbeats_dropped += 1
                    continue
                if rule.action == "delay":
                    time.sleep(rule.delay_s or 0.5)
            try:
                self._send_frame(
                    protocol.heartbeat_frame(
                        self.worker_id,
                        self.epoch,
                        ready=True,
                        load={
                            "in_flight": self.in_flight,
                            "capacity": self.config.capacity,
                        },
                        health=self.runner.pool_health()
                        if self.runner.started
                        else {},
                    )
                )
                self.heartbeats_sent += 1
            except (OSError, ConnectionError):
                return  # the read loop is tearing this connection down

    # -- assignments -----------------------------------------------------------

    def _handle_assign(self, frame: dict) -> None:
        lease = frame.get("lease") or {}
        spec = dict(frame.get("job") or {})
        job_id = str(spec.get("job_id", ""))
        try:
            # Chaos: the node-death site.  ``kill`` never returns.
            faults.crash_point(
                "node:kill", job_id=job_id, worker=self.worker_id
            )
        except FaultInjected as exc:
            self._send_done(
                lease,
                JobResult(
                    job_id=job_id,
                    kind=str(spec.get("kind", "")),
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                ).to_spec(),
            )
            return
        try:
            job = job_from_spec(spec)
        except Exception as exc:
            self._send_done(
                lease,
                JobResult(
                    job_id=job_id,
                    kind=str(spec.get("kind", "")),
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                ).to_spec(),
            )
            return
        key = None
        try:
            key = job.dedup_key()
        except Exception:
            pass
        if key is not None and key in self.quarantined:
            # Fleet-wide quarantine, applied defensively node-side: a
            # poison job must not get a fresh chance to kill this node
            # just because a coordinator restart forgot it.
            self.assigns_refused += 1
            self._send_done(
                lease,
                JobResult(
                    job_id=job.job_id,
                    kind=job.KIND,
                    status="quarantined",
                    error="refused by fleet-wide quarantine",
                ).to_spec(),
            )
            return
        with self._state_lock:
            self._in_flight += 1

        def on_done(result: JobResult) -> None:
            with self._state_lock:
                self._in_flight -= 1
            self.jobs_done += 1
            self._send_done(lease, result.to_spec())

        self.runner.submit(job, on_done)

    def _send_done(self, lease: dict, result_spec: dict) -> None:
        if self._partitioned():
            self.frames_dropped_partitioned += 1
            return
        try:
            self._send_frame(protocol.done_frame(lease, result_spec))
        except (OSError, ConnectionError):
            # Connection died under us: the coordinator's revocation
            # already re-dispatched this lease, the result is moot.
            self.done_send_failures += 1

    # -- remote cache channel (the store adapters' transport) ------------------

    def cache_get(self, store: str, key: str) -> Optional[bytes]:
        """One blocking read-through round trip; ``None`` is a miss."""
        if not self.connected.is_set() or self._partitioned():
            return None
        request_id = f"cache-{next(self._cache_ids)}"
        slot = _PendingValue()
        with self._pending_lock:
            self._pending[request_id] = slot
        try:
            self._send_frame(
                protocol.cache_get_frame(request_id, store, key)
            )
            if not slot.event.wait(self.config.cache_timeout_s):
                return None
            return slot.blob
        except (OSError, ConnectionError):
            return None
        finally:
            with self._pending_lock:
                self._pending.pop(request_id, None)

    def cache_put(self, store: str, key: str, blob: bytes) -> None:
        """Fire-and-forget write-through."""
        if not self.connected.is_set() or self._partitioned():
            return
        self._send_frame(
            protocol.cache_put_frame(
                store, key, base64.b64encode(blob).decode("ascii")
            )
        )

    def _handle_cache_value(self, frame: dict) -> None:
        with self._pending_lock:
            slot = self._pending.get(frame.get("id"))
        if slot is None:
            return
        if frame.get("found") and frame.get("blob"):
            try:
                slot.blob = base64.b64decode(frame["blob"])
            except Exception:
                slot.blob = None
        slot.event.set()

    def _fail_pending(self) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            slot.event.set()  # blob stays None: a miss, not an error
