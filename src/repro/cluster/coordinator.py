"""Coordinator-side fleet state: registry, leases, failure detection.

Everything here runs on the serve daemon's event loop thread — frame
handlers are called from the connection read loops, the heartbeat
monitor is a ``loop.call_later`` chain, and the scheduler's dispatch
seam calls in from the same loop — so, like the scheduler, the data
structures need no locks.

The unit of remote work is an **epoch-tagged lease**: dispatching a
job to a worker records ``(token, epoch, worker, callback)`` in the
lease table, and the worker echoes the lease in its ``done`` frame.
The epoch is a fleet-wide counter bumped on every registration and
every declared death; a ``done`` whose token is gone from the table
(revoked by a death, a timeout, or a partition) or whose epoch does
not match is dropped and counted — the coordinator-level twin of the
runner's attempt-tagged exactly-once slot healing, so a re-dispatched
job can never deliver twice.

Failure detection is missed heartbeats: a node that goes
``heartbeat_miss`` intervals without a heartbeat (or whose socket
closes) is declared dead, its leases are revoked, and each revoked
lease synthesizes a :func:`~repro.faults.retry.lease_lost_result` —
a ``WorkerCrashed``-prefixed result that the scheduler's existing
:class:`~repro.faults.retry.RetryPolicy` classifies as a crash and
re-dispatches (to another node, or locally in degraded mode).
"""

from __future__ import annotations

import base64
import itertools
import pickle
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro import obs
from repro.faults.retry import lease_lost_result
from repro.obs import metrics as _metrics
from repro.serve import protocol
from repro.service.jobs import JobResult, _JobBase


@dataclass
class ClusterConfig:
    """Coordinator knobs (wired from ``serve --cluster`` flags)."""

    #: Interval workers are told to heartbeat at, seconds.
    heartbeat_s: float = 2.0
    #: Consecutive missed intervals before a node is declared dead.
    heartbeat_miss: int = 3
    #: The coordinator's persistent stores served to workers over
    #: ``cache_get``/``cache_put`` (``None`` disables that store).
    query_cache: Optional[str] = None
    automata_cache: Optional[str] = None


class _Lease:
    """One remote dispatch: who runs it and how to deliver its result."""

    __slots__ = ("token", "epoch", "worker_id", "job_id", "kind", "on_result")

    def __init__(self, token, epoch, worker_id, job_id, kind, on_result):
        self.token = token
        self.epoch = epoch
        self.worker_id = worker_id
        self.job_id = job_id
        self.kind = kind
        self.on_result = on_result


class _WorkerHandle:
    """One registered node: its connection, capacity, and liveness."""

    __slots__ = (
        "worker_id", "connection", "capacity", "epoch", "last_seen",
        "ready", "load", "leases", "jobs_done", "pid", "host",
    )

    def __init__(self, worker_id, connection, capacity, epoch, now,
                 pid=None, host=None):
        self.worker_id = worker_id
        self.connection = connection
        self.capacity = max(1, int(capacity))
        self.epoch = epoch
        self.last_seen = now
        self.ready = True
        self.load: dict = {}
        self.leases: Set[str] = set()
        self.jobs_done = 0
        self.pid = pid
        self.host = host

    @property
    def slots_free(self) -> int:
        return self.capacity - len(self.leases)


class ClusterCoordinator:
    """The daemon's fleet: registry, lease table, and cache service."""

    def __init__(self, loop, config: Optional[ClusterConfig] = None):
        self.loop = loop
        self.config = config or ClusterConfig()
        self._workers: Dict[str, _WorkerHandle] = {}
        self._by_connection: Dict[object, _WorkerHandle] = {}
        self._leases: Dict[str, _Lease] = {}
        #: Fleet-wide epoch: bumped per registration and per death, so
        #: every lease can name the fleet generation it was granted in.
        self.epoch = 0
        self._worker_ids = itertools.count(1)
        self._lease_tokens = itertools.count(1)
        self._monitor: Optional[object] = None  # TimerHandle
        self._closed = False
        #: Dedup keys quarantined anywhere in the fleet; consulted on
        #: admission and shipped to every (re)registering worker.
        self.quarantined_keys: Set[str] = set()
        # -- lifetime counters (health/stats surfaces) ---------------------
        self.registrations = 0
        self.deaths = 0
        self.leases_granted = 0
        self.leases_revoked = 0
        self.late_done_drops = 0
        self.remote_results = 0
        self.cache_gets = 0
        self.cache_hits = 0
        self.cache_puts = 0
        self.cache_put_failures = 0
        # Store handles are opened lazily: the daemon's own runner may
        # share the same directories and the handles are cheap.
        self._query_store = None
        self._dfa_store = None

    # -- stores ----------------------------------------------------------------

    def _stores_offered(self) -> dict:
        return {
            "query": bool(self.config.query_cache),
            "dfa": bool(self.config.automata_cache),
        }

    def _get_query_store(self):
        if self._query_store is None and self.config.query_cache:
            from repro.solver.backends.cached import QueryDiskStore

            try:
                self._query_store = QueryDiskStore(self.config.query_cache)
            except OSError:
                self.config.query_cache = None
        return self._query_store

    def _get_dfa_store(self):
        if self._dfa_store is None and self.config.automata_cache:
            from repro.automata.cache import DfaDiskStore

            try:
                self._dfa_store = DfaDiskStore(self.config.automata_cache)
            except OSError:
                self.config.automata_cache = None
        return self._dfa_store

    # -- registration and liveness ---------------------------------------------

    def handle_register(self, connection, frame: dict) -> None:
        spec = frame.get("worker") or {}
        worker_id = str(
            spec.get("worker_id") or f"worker-{next(self._worker_ids)}"
        )
        stale = self._workers.get(worker_id)
        if stale is not None:
            # A rejoin after a partition the monitor has not caught yet:
            # the old incarnation's leases are unrecoverable (its done
            # frames would carry a dead epoch anyway) — revoke them now.
            self._declare_dead(stale, "superseded by re-registration")
        self.epoch += 1
        handle = _WorkerHandle(
            worker_id,
            connection,
            spec.get("capacity", 1),
            self.epoch,
            self.loop.time(),
            pid=spec.get("pid"),
            host=spec.get("host"),
        )
        self._workers[worker_id] = handle
        self._by_connection[connection] = handle
        self.registrations += 1
        _metrics.count("cluster_workers_total", event="registered")
        obs.event("cluster:register", worker=worker_id, epoch=self.epoch)
        connection.send(
            protocol.registered_frame(
                frame.get("id"),
                worker_id,
                handle.epoch,
                self.config.heartbeat_s,
                self.config.heartbeat_miss,
                self._stores_offered(),
                sorted(self.quarantined_keys),
            )
        )
        self._ensure_monitor()

    def handle_heartbeat(self, connection, frame: dict) -> None:
        handle = self._by_connection.get(connection)
        if handle is None or handle.worker_id != frame.get("worker_id"):
            # A heartbeat from a node we already declared dead (its
            # socket is on the way out) — nothing to refresh.
            return
        handle.last_seen = self.loop.time()
        handle.ready = bool(frame.get("ready", True))
        load = frame.get("load")
        if isinstance(load, dict):
            handle.load = load
        connection.send(protocol.heartbeat_ack_frame(handle.epoch))

    def on_disconnect(self, connection) -> None:
        """A worker's socket closed: immediate death, no grace period."""
        handle = self._by_connection.get(connection)
        if handle is not None:
            self._declare_dead(handle, "connection closed")

    def _ensure_monitor(self) -> None:
        if self._monitor is None and not self._closed:
            self._monitor = self.loop.call_later(
                self.config.heartbeat_s, self._tick
            )

    def _tick(self) -> None:
        self._monitor = None
        if self._closed:
            return
        deadline = self.config.heartbeat_s * max(1, self.config.heartbeat_miss)
        now = self.loop.time()
        for handle in list(self._workers.values()):
            if now - handle.last_seen > deadline:
                self._declare_dead(
                    handle,
                    f"missed {self.config.heartbeat_miss} heartbeats",
                )
        if self._workers:
            self._ensure_monitor()

    def _declare_dead(self, handle: _WorkerHandle, reason: str) -> None:
        self._workers.pop(handle.worker_id, None)
        if self._by_connection.get(handle.connection) is handle:
            self._by_connection.pop(handle.connection, None)
        self.epoch += 1
        self.deaths += 1
        _metrics.count("cluster_workers_total", event="dead")
        obs.event(
            "cluster:worker_dead", worker=handle.worker_id, reason=reason
        )
        # Close the socket so a merely-partitioned node learns it was
        # declared dead the moment connectivity returns, and rejoins
        # under a fresh epoch instead of talking to a revoked lease.
        try:
            handle.connection.close()
        except Exception:
            pass
        for token in sorted(handle.leases):
            lease = self._leases.pop(token, None)
            if lease is None:
                continue
            self.leases_revoked += 1
            _metrics.count("cluster_leases_total", event="revoked")
            result = lease_lost_result(
                lease.job_id, lease.kind, handle.worker_id, reason
            )
            try:
                lease.on_result(result)
            except Exception:
                pass
        handle.leases.clear()

    # -- dispatch (the scheduler's seam) ---------------------------------------

    def ready_workers(self) -> int:
        return sum(1 for w in self._workers.values() if w.ready)

    def capacity(self) -> int:
        """Total assignable slots across ready workers."""
        return sum(
            w.capacity for w in self._workers.values() if w.ready
        )

    def has_capacity(self) -> bool:
        return any(
            w.ready and w.slots_free > 0 for w in self._workers.values()
        )

    def is_quarantined(self, key: Optional[str]) -> bool:
        return key is not None and key in self.quarantined_keys

    def try_dispatch(
        self,
        job: _JobBase,
        on_result: Callable[[JobResult], None],
    ) -> Optional[str]:
        """Lease ``job`` to the freest ready worker; ``None`` when the
        fleet has no slot (the scheduler then dispatches locally —
        degraded mode is this fall-through, not a separate path)."""
        best: Optional[_WorkerHandle] = None
        for handle in self._workers.values():
            if not handle.ready or handle.slots_free <= 0:
                continue
            if best is None or handle.slots_free > best.slots_free:
                best = handle
        if best is None:
            return None
        token = f"lease-{next(self._lease_tokens)}"
        lease = _Lease(
            token, best.epoch, best.worker_id, job.job_id, job.KIND,
            on_result,
        )
        self._leases[token] = lease
        best.leases.add(token)
        self.leases_granted += 1
        _metrics.count("cluster_leases_total", event="granted")
        best.connection.send(
            protocol.assign_frame(
                {
                    "token": token,
                    "epoch": lease.epoch,
                    "worker_id": best.worker_id,
                },
                job.to_spec(),
            )
        )
        return token

    def revoke(self, token: str, reason: str = "revoked") -> bool:
        """Drop a lease without delivering (scheduler timeout path): a
        late ``done`` for it will be counted and discarded."""
        lease = self._leases.pop(token, None)
        if lease is None:
            return False
        handle = self._workers.get(lease.worker_id)
        if handle is not None:
            handle.leases.discard(token)
        self.leases_revoked += 1
        _metrics.count("cluster_leases_total", event="revoked")
        obs.event("cluster:lease_revoked", token=token, reason=reason)
        return True

    def handle_done(self, connection, frame: dict) -> None:
        lease_spec = frame.get("lease") or {}
        token = lease_spec.get("token")
        lease = self._leases.get(token)
        if lease is None or lease.epoch != lease_spec.get("epoch"):
            # The exactly-once drop: this lease was revoked (node
            # declared dead, job timed out, fleet re-epoched) and its
            # work was re-dispatched — the late result must not race
            # the new attempt's delivery.
            self.late_done_drops += 1
            _metrics.count("cluster_leases_total", event="late_drop")
            return
        del self._leases[token]
        handle = self._workers.get(lease.worker_id)
        if handle is not None:
            handle.leases.discard(token)
            handle.jobs_done += 1
            handle.last_seen = self.loop.time()
        try:
            result = JobResult.from_spec(frame.get("result") or {})
        except Exception:
            result = lease_lost_result(
                lease.job_id, lease.kind, lease.worker_id,
                "undecodable done frame",
            )
        self.remote_results += 1
        _metrics.count("cluster_leases_total", event="completed")
        try:
            lease.on_result(result)
        except Exception:
            pass

    # -- fleet-wide quarantine -------------------------------------------------

    def broadcast_quarantine(self, key: Optional[str]) -> None:
        """Record a poison job's dedup key and tell every node."""
        if key is None or key in self.quarantined_keys:
            return
        self.quarantined_keys.add(key)
        _metrics.count("cluster_quarantine_broadcasts_total")
        frame = protocol.quarantine_frame([key])
        for handle in self._workers.values():
            handle.connection.send(frame)

    # -- cache service ---------------------------------------------------------

    def handle_cache_get(self, connection, frame: dict) -> None:
        self.cache_gets += 1
        request_id = frame.get("id")
        key = frame["key"]
        blob = None
        if frame["store"] == "query":
            store = self._get_query_store()
            entry = store.get(key) if store is not None else None
            if entry is not None:
                blob = pickle.dumps(
                    (entry.status, entry.assignment), protocol=4
                )
        else:
            store = self._get_dfa_store()
            dfa = store.get(key) if store is not None else None
            if dfa is not None:
                from repro.automata.cache import dfa_to_blob

                blob = pickle.dumps(dfa_to_blob(dfa), protocol=4)
        if blob is not None:
            self.cache_hits += 1
        _metrics.count(
            "cluster_cache_total",
            op="get",
            outcome="hit" if blob is not None else "miss",
        )
        connection.send(
            protocol.cache_value_frame(
                request_id,
                blob is not None,
                None
                if blob is None
                else base64.b64encode(blob).decode("ascii"),
            )
        )

    def handle_cache_put(self, connection, frame: dict) -> None:
        self.cache_puts += 1
        try:
            blob = pickle.loads(base64.b64decode(frame.get("blob") or ""))
            if frame["store"] == "query":
                from repro.solver.backends.cached import CachedResult

                store = self._get_query_store()
                if store is not None:
                    status, assignment = blob
                    store.put(
                        frame["key"],
                        CachedResult(
                            str(status),
                            None
                            if assignment is None
                            else tuple(
                                (str(n), v) for n, v in assignment
                            ),
                        ),
                    )
            else:
                from repro.automata.cache import dfa_from_blob

                store = self._get_dfa_store()
                if store is not None:
                    store.put(frame["key"], dfa_from_blob(blob))
            _metrics.count("cluster_cache_total", op="put", outcome="ok")
        except Exception:
            # The store is a cache: a malformed put is dropped, counted,
            # and never an error back onto the worker's hot path.
            self.cache_put_failures += 1
            _metrics.count(
                "cluster_cache_total", op="put", outcome="failure"
            )

    # -- lifecycle / reporting -------------------------------------------------

    def close(self) -> None:
        self._closed = True
        if self._monitor is not None:
            self._monitor.cancel()
            self._monitor = None

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "workers": len(self._workers),
            "workers_ready": self.ready_workers(),
            "capacity": self.capacity(),
            "leases_inflight": len(self._leases),
            "registrations": self.registrations,
            "deaths": self.deaths,
            "leases_granted": self.leases_granted,
            "leases_revoked": self.leases_revoked,
            "late_done_drops": self.late_done_drops,
            "remote_results": self.remote_results,
            "quarantined_keys": len(self.quarantined_keys),
            "cache_gets": self.cache_gets,
            "cache_hits": self.cache_hits,
            "cache_puts": self.cache_puts,
            "cache_put_failures": self.cache_put_failures,
        }

    def snapshot(self) -> dict:
        """The ``health`` op's cluster section: stats plus per-node rows."""
        now = self.loop.time()
        nodes = {
            worker_id: {
                "ready": handle.ready,
                "capacity": handle.capacity,
                "leases": len(handle.leases),
                "jobs_done": handle.jobs_done,
                "last_seen_s": round(now - handle.last_seen, 3),
                "epoch": handle.epoch,
                "load": handle.load,
            }
            for worker_id, handle in sorted(self._workers.items())
        }
        out = self.stats()
        out["nodes"] = nodes
        out["stores"] = self._stores_offered()
        return out
