"""Cross-node worker fleet: lease-based sharding over the serve protocol.

The serve daemon gains a **coordinator** mode (``python -m repro serve
--cluster``) and a matching **worker node** daemon (``python -m repro
worker --join ADDR``), both speaking the existing newline-delimited
JSON frame protocol on the same listener — a worker is just a client
that opens with ``register`` instead of ``submit``.

- :mod:`repro.cluster.coordinator` — the daemon-side fleet state:
  worker registry, epoch-tagged lease table, missed-heartbeat failure
  detection, lease revocation feeding the scheduler's existing
  :class:`~repro.faults.retry.RetryPolicy` re-dispatch, fleet-wide
  poison-job quarantine, and the ``cache_get``/``cache_put`` service
  over the coordinator's persistent query/automata stores.
- :mod:`repro.cluster.worker` — the node daemon: registers, heartbeats
  with the local runner's ``pool_health()`` payload, executes assigned
  jobs on its own :class:`~repro.service.runner.BatchRunner`, and
  reconnects with backoff after partitions.  Hosts the ``node:kill``,
  ``cluster:heartbeat``, and ``cluster:partition`` fault sites.
- :mod:`repro.cluster.remotestore` — read-through store adapters that
  make a worker's query/automata caches fall back to the
  coordinator's disk stores (canonical fingerprints are already
  host-independent keys).

Degraded mode is structural, not a code path: the scheduler prefers a
ready remote worker and otherwise falls through to the untouched local
``BatchRunner`` dispatch, so a coordinator with zero healthy workers
*is* today's single-machine daemon, byte for byte.
"""

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.cluster.worker import WorkerConfig, WorkerNode, parse_join_address

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "WorkerConfig",
    "WorkerNode",
    "parse_join_address",
]
