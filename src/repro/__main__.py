"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``solve PATTERN [-f FLAGS] [--negate]`` — generate an input the regex
  matches (CEGAR-validated captures) or rejects;
- ``exec PATTERN SUBJECT [-f FLAGS]`` — run the concrete ES6 matcher;
- ``analyze FILE`` — dynamic symbolic execution of a mini-JS program;
- ``batch FILE... | batch --survey -n N`` — run many analyses across a
  worker pool with a shared solver query cache (the service layer);
- ``serve --socket PATH | --port N`` — keep that worker pool warm in a
  long-lived daemon; concurrent clients submit jobs over
  newline-delimited JSON and results stream back as they land, with
  duplicate work coalesced across clients (see :mod:`repro.serve`);
- ``submit [--socket PATH | --port N] FILE...`` — client for ``serve``:
  job-spec ``.json`` files or mini-JS programs in, a batch report (or
  ``--stream``\\ ed JSON result lines) out; ``--stats`` prints the
  daemon's scheduler gauges and observability snapshot;

``solve``/``analyze``/``batch`` accept ``--backend SPEC`` to pick the
solver backend (``native``, ``smtlib:z3``, ``session:z3``,
``portfolio:auto``, ``route:z3``, ``cached:native``, ...) — see
:mod:`repro.solver.backends` — ``--automata-cache DIR`` to persist
compiled DFAs across processes and invocations, and ``--query-cache
DIR`` to persist definitive solver answers the same way (implies a
``cached:`` level when the spec lacks one); ``batch --dedup``
additionally coalesces jobs posing identical canonical queries into
single-flight executions.

``solve``/``analyze``/``batch`` also accept the observability flags
``--trace FILE`` / ``--trace-format {jsonl,chrome}`` (span traces,
merged deterministically across worker processes; the chrome format
opens in Perfetto), ``--metrics-json FILE`` (labeled counter /
gauge / histogram snapshot), and ``--slow-query-ms MS`` (log solver
queries over the threshold with fingerprint, route, backend, and
refinement depth) — see :mod:`repro.obs`.

``batch``/``serve`` accept the fault-tolerance flags ``--retry-max N``
/ ``--retry-backoff-s S`` (re-dispatch jobs whose worker crashed or
timed out, with exponential backoff and deterministic jitter),
``--quarantine-after N`` (poison-job fuse), and ``--fault-plan FILE``
(chaos-testing fault injection; see :mod:`repro.faults`); ``submit
--health`` prints the daemon's liveness/readiness report.

- ``survey [-n N]`` — regenerate the §7.1 survey tables;
- ``smtlib PATTERN [-f FLAGS]`` — print the membership model as SMT-LIB;
- ``dot PATTERN`` — print the DFA of a classical regex as Graphviz DOT.
"""

from __future__ import annotations

import argparse
import sys


def _check_backend_spec(spec) -> int:
    """Validate a ``--backend`` spec up front; 0 ok, 2 on a bad spec."""
    if spec is None:
        return 0
    from repro.solver.backends import BackendError, make_backend

    try:
        make_backend(spec)
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _check_query_cache_flags(args) -> int:
    """A cap without a store would silently bound nothing; 0 ok, 2 bad."""
    if args.query_cache_max is not None and args.query_cache is None:
        print(
            "error: --query-cache-max requires --query-cache "
            "(there is no store to cap without one)",
            file=sys.stderr,
        )
        return 2
    return 0


def _resolve_backend(spec, query_cache, timeout=None, query_cache_max=None):
    """The backend argument for one-shot commands.

    Without ``--query-cache`` the spec string is handed through
    unchanged (downstream resolves it lazily).  With it, the backend is
    built here so the persistent query store is attached — implying a
    ``cached:`` level when the spec lacks one, since a store nobody
    consults would be pointless — and ``--query-cache-max`` caps the
    store with age-based GC.  ``timeout`` must mirror whatever the
    downstream consumer would have threaded into a lazy resolution, so
    adding the flag never changes solve semantics.
    """
    if query_cache is None:
        return spec
    from repro.solver.backends import make_backend

    spec = spec or "native"
    if not spec.startswith("cached:"):
        spec = "cached:" + spec
    return make_backend(
        spec,
        timeout=timeout,
        query_cache=query_cache,
        query_cache_max=query_cache_max,
    )


def _start_obs(args):
    """Configure tracing/metrics for a one-shot command, or ``None``.

    Returns the :class:`~repro.obs.export.ObsRun` whose ``finish()``
    writes the requested artifacts; with none of the flags set nothing
    is imported or configured (the strictly-disabled fast path).
    """
    if (
        getattr(args, "trace", None) is None
        and getattr(args, "metrics_json", None) is None
        and getattr(args, "slow_query_ms", None) is None
    ):
        return None
    from repro.obs.export import ObsRun

    return ObsRun.start(
        trace=args.trace,
        trace_format=args.trace_format,
        metrics_json=args.metrics_json,
        slow_query_ms=args.slow_query_ms,
    )


def _finish_obs(obs_run) -> None:
    """Write and announce the observability artifacts of a one-shot run."""
    if obs_run is None:
        return
    summary = obs_run.finish()
    if summary.trace_path:
        print(f"trace:   {summary.trace_path} ({summary.span_count} spans)")
    if summary.metrics_path:
        print(f"metrics: {summary.metrics_path}")
    if summary.slow_queries:
        worst = max(e.get("ms", 0.0) for e in summary.slow_queries)
        print(
            f"slow queries: {len(summary.slow_queries)} "
            f"(worst {worst:.1f}ms)"
        )


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.model import find_matching_input, find_non_matching_input

    if _check_backend_spec(args.backend):
        return 2
    if _check_query_cache_flags(args):
        return 2
    if args.automata_cache:
        from repro.automata import configure_automata_cache

        configure_automata_cache(args.automata_cache)
    if args.backend:
        print(f"backend: {args.backend}")
    backend = _resolve_backend(
        args.backend, args.query_cache, query_cache_max=args.query_cache_max
    )
    obs_run = _start_obs(args)
    try:
        if args.negate:
            word = find_non_matching_input(
                args.pattern, args.flags, backend=backend
            )
            status = 1 if word is None else 0
            result = None
        else:
            result = find_matching_input(
                args.pattern, args.flags, backend=backend
            )
            word = result[0] if result is not None else None
            status = 1 if result is None else 0
    except BaseException:
        if obs_run is not None:
            obs_run.abort()
        raise
    _finish_obs(obs_run)
    if args.negate:
        if word is None:
            print("no non-matching input found (pattern may match Σ*)")
            return 1
        print(f"input:  {word!r}")
        return status
    if result is None:
        print("unsatisfiable (or solver budget exhausted)")
        return 1
    word, captures = result
    print(f"input:  {word!r}")
    for index in sorted(captures):
        value = captures[index]
        shown = "undefined" if value is None else repr(value)
        print(f"  C{index} = {shown}")
    return status


def _cmd_exec(args: argparse.Namespace) -> int:
    from repro.regex import RegExp

    result = RegExp(args.pattern, args.flags).exec(args.subject)
    if result is None:
        print("no match")
        return 1
    print(f"match at {result.index}:")
    for index, value in enumerate(result):
        shown = "undefined" if value is None else repr(value)
        print(f"  [{index}] = {shown}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.dse import RegexSupportLevel, analyze
    from repro.dse.engine import EngineConfig

    if _check_backend_spec(args.backend):
        return 2
    if _check_query_cache_flags(args):
        return 2
    with open(args.file) as handle:
        source = handle.read()
    level = RegexSupportLevel[args.level.upper()]
    obs_run = _start_obs(args)
    try:
        result = analyze(
            source,
            level=level,
            max_tests=args.max_tests,
            time_budget=args.time_budget,
            backend=_resolve_backend(
                args.backend,
                args.query_cache,
                # what the engine would thread into a lazy spec resolution
                timeout=EngineConfig().solver_timeout,
                query_cache_max=args.query_cache_max,
            ),
            automata_cache=args.automata_cache,
        )
    except BaseException:
        if obs_run is not None:
            obs_run.abort()
        raise
    _finish_obs(obs_run)
    print(f"tests run:   {result.tests_run}")
    print(f"coverage:    {result.coverage:.1%} "
          f"({len(result.covered)}/{result.statement_count} statements)")
    print(f"queries:     {result.queries} ({result.sat_queries} SAT)")
    print(f"regex ops:   {result.regex_ops}")
    if result.failures:
        print("failures:")
        for failure in result.failures:
            print(f"  - {failure}")
    return 0 if not result.failures else 2


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.service import (
        BatchRunner,
        RunnerConfig,
        analyze_jobs_from_files,
        format_batch_report,
        survey_workload,
    )

    if _check_backend_spec(args.backend):
        return 2
    if _check_query_cache_flags(args):
        return 2
    if args.survey:
        jobs = survey_workload(
            n_packages=args.packages,
            seed=args.seed,
            shards=max(1, args.workers) * 4,
            solve_cap=args.solve_cap,
            backend=args.backend,
        )
    elif args.files:
        try:
            jobs = analyze_jobs_from_files(
                args.files,
                level=args.level,
                max_tests=args.max_tests,
                time_budget=args.time_budget,
                backend=args.backend,
            )
        except OSError as exc:
            print(f"batch: cannot read {exc.filename}: {exc.strerror}",
                  file=sys.stderr)
            return 2
    else:
        print("batch: provide mini-JS FILEs or --survey", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan:
        with open(args.fault_plan) as handle:
            fault_plan = json.load(handle)
    runner = BatchRunner(
        RunnerConfig(
            workers=args.workers,
            job_timeout=args.job_timeout,
            use_cache=not args.no_cache,
            cache_size=args.cache_size,
            shared_cache=args.shared_cache,
            automata_cache=args.automata_cache,
            query_cache=args.query_cache,
            query_cache_max=args.query_cache_max,
            dedup=args.dedup,
            trace=args.trace,
            trace_format=args.trace_format,
            metrics_json=args.metrics_json,
            slow_query_ms=args.slow_query_ms,
            retry_max=args.retry_max,
            retry_backoff_s=args.retry_backoff_s,
            quarantine_after=args.quarantine_after,
            fault_plan=fault_plan,
        )
    )
    report = runner.run(jobs)
    print(format_batch_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_spec(), handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if all(r.status == "ok" for r in report.results) else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.conformance import register_planted_backend
    from repro.service import (
        BatchRunner,
        RunnerConfig,
        format_batch_report,
        fuzz_workload,
        merge_fuzz,
    )

    # The deliberately-unsound test backend must be resolvable before
    # --oracle-backend specs are validated.
    register_planted_backend()
    if _check_backend_spec(args.backend):
        return 2
    for spec in args.oracle_backend or []:
        if _check_backend_spec(spec):
            return 2
    if _check_query_cache_flags(args):
        return 2
    if args.artifacts_max is not None and args.artifacts is None:
        print(
            "error: --artifacts-max requires --artifacts "
            "(there is no store to cap without one)",
            file=sys.stderr,
        )
        return 2
    shards = args.shards
    if shards is None:
        shards = max(1, args.workers) * 2 if args.workers else 1
    jobs = fuzz_workload(
        budget=args.pairs,
        seed=args.seed,
        shards=shards,
        backend=args.backend,
        oracle_backends=args.oracle_backend or None,
        solver_timeout=args.solver_timeout,
        shrink=not args.no_shrink,
        artifact_dir=args.artifacts,
        artifact_max=args.artifacts_max,
        on_disagreement=args.on_disagreement,
    )
    fault_plan = None
    if args.fault_plan:
        with open(args.fault_plan) as handle:
            fault_plan = json.load(handle)
    runner = BatchRunner(
        RunnerConfig(
            workers=args.workers,
            job_timeout=args.job_timeout,
            automata_cache=args.automata_cache,
            query_cache=args.query_cache,
            query_cache_max=args.query_cache_max,
            trace=args.trace,
            trace_format=args.trace_format,
            metrics_json=args.metrics_json,
            slow_query_ms=args.slow_query_ms,
            retry_max=args.retry_max,
            retry_backoff_s=args.retry_backoff_s,
            quarantine_after=args.quarantine_after,
            fault_plan=fault_plan,
        )
    )
    report = runner.run(jobs)
    print(format_batch_report(report))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_spec(), handle, indent=2)
        print(f"\nwrote {args.json}")
    if not all(r.status == "ok" for r in report.results):
        return 1
    merged = merge_fuzz(report.of_kind("fuzz"))
    if args.fail_on_find and merged["disagreements"]:
        return 3
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import run_serve

    if _check_query_cache_flags(args):
        return 2
    return run_serve(args)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.serve.cli import run_worker

    return run_worker(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.cli import run_submit

    if _check_backend_spec(args.backend):
        return 2
    return run_submit(args)


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.corpus import (
        CorpusConfig,
        format_table4,
        format_table5,
        generate_corpus,
        survey_packages,
    )

    corpus = generate_corpus(
        CorpusConfig(n_packages=args.packages, seed=args.seed)
    )
    result = survey_packages(corpus)
    print(format_table4(result))
    print()
    print(format_table5(result))
    return 0


def _cmd_smtlib(args: argparse.Namespace) -> int:
    from repro.constraints import StrVar
    from repro.constraints.printer import to_smtlib
    from repro.model.api import SymbolicRegExp

    regexp = SymbolicRegExp(args.pattern, args.flags)
    model = regexp.exec_model(StrVar("input"))
    formula = model.no_match_formula if args.negate else model.match_formula
    print(to_smtlib(formula))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.automata import dfa_for, to_dot
    from repro.automata.build import erase_captures
    from repro.regex import parse_regex

    node = erase_captures(parse_regex(args.pattern, args.flags).body)
    print(to_dot(dfa_for(node)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Sound ES6 regex semantics for dynamic symbolic execution "
            "(PLDI 2019 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    backend_help = (
        "solver backend spec: native, native?timeout=2, smtlib:z3, "
        "session:z3, portfolio:native+smtlib, portfolio:auto, route:z3, "
        "cached:native, ... (nestable)"
    )
    automata_cache_help = (
        "directory of the persistent automata compilation cache "
        "(compiled DFAs are reused across processes and invocations)"
    )
    query_cache_help = (
        "directory of the persistent solver query cache (definitive "
        "answers are replayed across processes and invocations; implies "
        "a cached: level when the spec lacks one)"
    )
    query_cache_max_help = (
        "cap the persistent query cache at N entries (age-based GC "
        "evicts the oldest entries past the cap)"
    )

    def _add_fault_flags(command) -> None:
        command.add_argument(
            "--retry-max", type=int, default=0, metavar="N",
            help="re-dispatch a job up to N times after a worker crash "
            "or timeout (exponential backoff; 0 = fail fast)",
        )
        command.add_argument(
            "--retry-backoff-s", type=float, default=0.25, metavar="S",
            help="base backoff before the first retry (doubles per "
            "attempt, deterministic jitter)",
        )
        command.add_argument(
            "--quarantine-after", type=int, default=None, metavar="N",
            help="quarantine a job after it kills N workers "
            "(default: retry-max + 1)",
        )
        command.add_argument(
            "--fault-plan", default=None, metavar="FILE",
            help="JSON fault-injection plan (chaos testing; "
            "faults are never active without one)",
        )

    def _add_obs_flags(command) -> None:
        command.add_argument(
            "--trace", default=None, metavar="FILE",
            help="write a span trace of the run to FILE",
        )
        command.add_argument(
            "--trace-format", default="jsonl",
            choices=["jsonl", "chrome"],
            help="trace file format: jsonl (one span per line) or "
            "chrome (trace-event JSON, viewable in Perfetto/about:tracing)",
        )
        command.add_argument(
            "--metrics-json", default=None, metavar="FILE",
            help="write the merged metrics registry snapshot to FILE",
        )
        command.add_argument(
            "--slow-query-ms", type=float, default=None, metavar="MS",
            help="log solver queries slower than MS milliseconds "
            "(with fingerprint, route, backend, refinement depth)",
        )

    solve = sub.add_parser("solve", help="find a (non-)matching input")
    solve.add_argument("pattern")
    solve.add_argument("-f", "--flags", default="")
    solve.add_argument("--negate", action="store_true")
    solve.add_argument("--backend", default=None, help=backend_help)
    solve.add_argument(
        "--automata-cache", default=None, help=automata_cache_help
    )
    solve.add_argument(
        "--query-cache", default=None, help=query_cache_help
    )
    solve.add_argument(
        "--query-cache-max", type=int, default=None,
        help=query_cache_max_help,
    )
    _add_obs_flags(solve)
    solve.set_defaults(fn=_cmd_solve)

    exec_ = sub.add_parser("exec", help="concrete ES6 exec")
    exec_.add_argument("pattern")
    exec_.add_argument("subject")
    exec_.add_argument("-f", "--flags", default="")
    exec_.set_defaults(fn=_cmd_exec)

    analyze = sub.add_parser("analyze", help="DSE of a mini-JS file")
    analyze.add_argument("file")
    analyze.add_argument(
        "--level",
        default="refined",
        choices=["concrete", "model", "captures", "refined"],
    )
    analyze.add_argument("--max-tests", type=int, default=50)
    analyze.add_argument("--time-budget", type=float, default=30.0)
    analyze.add_argument("--backend", default=None, help=backend_help)
    analyze.add_argument(
        "--automata-cache", default=None, help=automata_cache_help
    )
    analyze.add_argument(
        "--query-cache", default=None, help=query_cache_help
    )
    analyze.add_argument(
        "--query-cache-max", type=int, default=None,
        help=query_cache_max_help,
    )
    _add_obs_flags(analyze)
    analyze.set_defaults(fn=_cmd_analyze)

    batch = sub.add_parser(
        "batch", help="run many analyses across a worker pool"
    )
    batch.add_argument("files", nargs="*", help="mini-JS programs")
    batch.add_argument(
        "--survey",
        action="store_true",
        help="run the synthetic-corpus survey workload instead of FILEs",
    )
    batch.add_argument("-n", "--packages", type=int, default=200)
    batch.add_argument("--seed", type=int, default=1909)
    batch.add_argument(
        "--solve-cap",
        type=int,
        default=48,
        help="max solve jobs derived from survey regex literals",
    )
    batch.add_argument(
        "-w",
        "--workers",
        type=int,
        default=2,
        help="worker processes (0 = run inline)",
    )
    batch.add_argument("--job-timeout", type=float, default=300.0)
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the solver query cache",
    )
    batch.add_argument("--cache-size", type=int, default=4096)
    batch.add_argument(
        "--shared-cache",
        action="store_true",
        help="share one cache across all workers (manager-backed)",
    )
    batch.add_argument(
        "--level",
        default="refined",
        choices=["concrete", "model", "captures", "refined"],
    )
    batch.add_argument("--max-tests", type=int, default=40)
    batch.add_argument("--time-budget", type=float, default=10.0)
    batch.add_argument("--backend", default=None, help=backend_help)
    batch.add_argument(
        "--automata-cache", default=None, help=automata_cache_help
    )
    batch.add_argument(
        "--query-cache", default=None, help=query_cache_help
    )
    batch.add_argument(
        "--query-cache-max", type=int, default=None,
        help=query_cache_max_help,
    )
    batch.add_argument(
        "--dedup",
        action="store_true",
        help="coalesce jobs posing identical canonical queries into "
        "single-flight executions before dispatch",
    )
    batch.add_argument("--json", help="also write the report as JSON")
    _add_fault_flags(batch)
    _add_obs_flags(batch)
    batch.set_defaults(fn=_cmd_batch)

    fuzz = sub.add_parser(
        "fuzz",
        help="conformance-fuzz the matcher against solver backends",
    )
    fuzz.add_argument(
        "-n", "--pairs", type=int, default=50,
        help="regex/input pairs to generate (the campaign budget)",
    )
    fuzz.add_argument("--seed", type=int, default=1909)
    fuzz.add_argument("--backend", default=None, help=backend_help)
    fuzz.add_argument(
        "--oracle-backend", action="append", default=None,
        metavar="SPEC",
        help="a solver decider for the differential oracle (repeat "
        "for several; default: --backend or native; 'planted:' is the "
        "deliberately-unsound harness-test backend)",
    )
    fuzz.add_argument(
        "--solver-timeout", type=float, default=2.0,
        help="per-check solver budget in seconds (UNKNOWN tolerated)",
    )
    fuzz.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="persist shrunk disagreement artifacts under DIR "
        "(deduped by canonical fingerprint)",
    )
    fuzz.add_argument(
        "--artifacts-max", type=int, default=None, metavar="N",
        help="cap the artifact store at N entries (oldest-mtime GC)",
    )
    fuzz.add_argument(
        "--on-disagreement", default="collect",
        choices=["collect", "raise"],
        help="collect: triage the find and keep fuzzing (default); "
        "raise: fail the job on the first contradiction",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debug minimization of disagreements",
    )
    fuzz.add_argument(
        "--fail-on-find", action="store_true",
        help="exit 3 when any disagreement was found (CI gate)",
    )
    fuzz.add_argument(
        "-w", "--workers", type=int, default=0,
        help="worker processes (0 = run inline)",
    )
    fuzz.add_argument(
        "--shards", type=int, default=None,
        help="split the budget into this many fuzz jobs "
        "(default: 2 per worker, 1 inline)",
    )
    fuzz.add_argument("--job-timeout", type=float, default=600.0)
    fuzz.add_argument(
        "--automata-cache", default=None, help=automata_cache_help
    )
    fuzz.add_argument(
        "--query-cache", default=None, help=query_cache_help
    )
    fuzz.add_argument(
        "--query-cache-max", type=int, default=None,
        help=query_cache_max_help,
    )
    fuzz.add_argument("--json", help="also write the report as JSON")
    _add_fault_flags(fuzz)
    _add_obs_flags(fuzz)
    fuzz.set_defaults(fn=_cmd_fuzz)

    serve = sub.add_parser(
        "serve", help="run the long-lived analysis daemon"
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a unix socket at PATH",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind host (with --port)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="listen on a TCP port (0 = pick one)",
    )
    serve.add_argument(
        "-w", "--workers", type=int, default=2,
        help="worker processes (0 = run jobs inline)",
    )
    serve.add_argument("--job-timeout", type=float, default=300.0)
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the solver query cache",
    )
    serve.add_argument("--cache-size", type=int, default=4096)
    serve.add_argument(
        "--shared-cache", action="store_true",
        help="share one cache across all workers (manager-backed)",
    )
    serve.add_argument(
        "--automata-cache", default=None, help=automata_cache_help
    )
    serve.add_argument(
        "--query-cache", default=None, help=query_cache_help
    )
    serve.add_argument(
        "--query-cache-max", type=int, default=None,
        help=query_cache_max_help,
    )
    serve.add_argument(
        "--session-idle-s", type=float, default=None, metavar="S",
        help="close pooled solver sessions idle for S seconds "
        "(default: keep them for the daemon's life)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=128,
        help="admission bound: queued jobs beyond this are rejected "
        "with an explicit 'overloaded' frame",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None,
        help="jobs dispatched into the pool at once (default: workers)",
    )
    serve.add_argument(
        "--no-single-flight", action="store_true",
        help="disable cross-client coalescing of identical jobs",
    )
    serve.add_argument(
        "--cluster", action="store_true",
        help="act as the fleet coordinator: accept worker-node "
        "registrations and shard jobs across them under leases "
        "(falls back to the local pool when no workers are healthy)",
    )
    serve.add_argument(
        "--heartbeat-s", type=float, default=2.0, metavar="S",
        help="heartbeat interval assigned to worker nodes (--cluster)",
    )
    serve.add_argument(
        "--heartbeat-miss", type=int, default=3, metavar="N",
        help="missed heartbeats before a node is declared dead and "
        "its leases re-dispatched (--cluster)",
    )
    _add_fault_flags(serve)
    _add_obs_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    worker = sub.add_parser(
        "worker", help="run one cluster worker node (joins a --cluster "
        "serve daemon and executes leased jobs)"
    )
    worker.add_argument(
        "--join", required=True, metavar="ADDR",
        help="coordinator address: unix socket path (or unix:PATH) "
        "or HOST:PORT",
    )
    worker.add_argument(
        "--capacity", type=int, default=1,
        help="concurrent leases this node accepts",
    )
    worker.add_argument(
        "-w", "--workers", type=int, default=0,
        help="local worker processes (0 = run jobs inline on "
        "capacity-many threads)",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="stable node name (default: coordinator-assigned)",
    )
    worker.add_argument("--job-timeout", type=float, default=300.0)
    worker.add_argument(
        "--automata-cache", default=None, help=automata_cache_help
    )
    worker.add_argument(
        "--query-cache", default=None, help=query_cache_help
    )
    worker.add_argument(
        "--no-remote-cache", action="store_true",
        help="do not read caches through the coordinator's stores",
    )
    _add_fault_flags(worker)
    worker.set_defaults(fn=_cmd_worker)

    submit = sub.add_parser(
        "submit", help="submit jobs to a running serve daemon"
    )
    submit.add_argument(
        "files", nargs="*",
        help="job-spec .json files (object or list) or mini-JS programs",
    )
    submit.add_argument(
        "--socket", default=None, metavar="PATH",
        help="daemon unix socket path",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument(
        "--port", type=int, default=None, help="daemon TCP port"
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="socket timeout while waiting on results",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block for all results and print a batch report (default)",
    )
    submit.add_argument(
        "--stream", action="store_true",
        help="print each result as a JSON line the moment it lands",
    )
    submit.add_argument(
        "--stats", action="store_true",
        help="print the daemon's stats (scheduler gauges + obs snapshot)",
    )
    submit.add_argument(
        "--health", action="store_true",
        help="print the daemon's health report (liveness, readiness, "
        "pool/breaker state); exit 0 iff ready",
    )
    submit.add_argument(
        "--level", default="refined",
        choices=["concrete", "model", "captures", "refined"],
        help="analysis level for mini-JS FILEs",
    )
    submit.add_argument("--max-tests", type=int, default=40)
    submit.add_argument("--time-budget", type=float, default=10.0)
    submit.add_argument("--backend", default=None, help=backend_help)
    submit.add_argument(
        "--wait-on-overload", type=float, default=0.0, metavar="S",
        help="on an 'overloaded' rejection, back off per the daemon's "
        "retry_after hint and retry for up to S seconds before "
        "counting the job as rejected (default 0 = fail fast)",
    )
    submit.add_argument("--json", help="also write the report as JSON")
    submit.set_defaults(fn=_cmd_submit)

    survey = sub.add_parser("survey", help="regenerate Tables 4/5")
    survey.add_argument("-n", "--packages", type=int, default=4000)
    survey.add_argument("--seed", type=int, default=1909)
    survey.set_defaults(fn=_cmd_survey)

    smtlib = sub.add_parser("smtlib", help="print the model as SMT-LIB")
    smtlib.add_argument("pattern")
    smtlib.add_argument("-f", "--flags", default="")
    smtlib.add_argument("--negate", action="store_true")
    smtlib.set_defaults(fn=_cmd_smtlib)

    dot = sub.add_parser("dot", help="print a classical regex's DFA")
    dot.add_argument("pattern")
    dot.add_argument("-f", "--flags", default="")
    dot.set_defaults(fn=_cmd_dot)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
