"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``solve PATTERN [-f FLAGS] [--negate]`` — generate an input the regex
  matches (CEGAR-validated captures) or rejects;
- ``exec PATTERN SUBJECT [-f FLAGS]`` — run the concrete ES6 matcher;
- ``analyze FILE`` — dynamic symbolic execution of a mini-JS program;
- ``survey [-n N]`` — regenerate the §7.1 survey tables;
- ``smtlib PATTERN [-f FLAGS]`` — print the membership model as SMT-LIB;
- ``dot PATTERN`` — print the DFA of a classical regex as Graphviz DOT.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.model import find_matching_input, find_non_matching_input

    if args.negate:
        word = find_non_matching_input(args.pattern, args.flags)
        if word is None:
            print("no non-matching input found (pattern may match Σ*)")
            return 1
        print(f"input:  {word!r}")
        return 0
    result = find_matching_input(args.pattern, args.flags)
    if result is None:
        print("unsatisfiable (or solver budget exhausted)")
        return 1
    word, captures = result
    print(f"input:  {word!r}")
    for index in sorted(captures):
        value = captures[index]
        shown = "undefined" if value is None else repr(value)
        print(f"  C{index} = {shown}")
    return 0


def _cmd_exec(args: argparse.Namespace) -> int:
    from repro.regex import RegExp

    result = RegExp(args.pattern, args.flags).exec(args.subject)
    if result is None:
        print("no match")
        return 1
    print(f"match at {result.index}:")
    for index, value in enumerate(result):
        shown = "undefined" if value is None else repr(value)
        print(f"  [{index}] = {shown}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.dse import RegexSupportLevel, analyze

    with open(args.file) as handle:
        source = handle.read()
    level = RegexSupportLevel[args.level.upper()]
    result = analyze(
        source,
        level=level,
        max_tests=args.max_tests,
        time_budget=args.time_budget,
    )
    print(f"tests run:   {result.tests_run}")
    print(f"coverage:    {result.coverage:.1%} "
          f"({len(result.covered)}/{result.statement_count} statements)")
    print(f"queries:     {result.queries} ({result.sat_queries} SAT)")
    print(f"regex ops:   {result.regex_ops}")
    if result.failures:
        print("failures:")
        for failure in result.failures:
            print(f"  - {failure}")
    return 0 if not result.failures else 2


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.corpus import (
        CorpusConfig,
        format_table4,
        format_table5,
        generate_corpus,
        survey_packages,
    )

    corpus = generate_corpus(
        CorpusConfig(n_packages=args.packages, seed=args.seed)
    )
    result = survey_packages(corpus)
    print(format_table4(result))
    print()
    print(format_table5(result))
    return 0


def _cmd_smtlib(args: argparse.Namespace) -> int:
    from repro.constraints import StrVar
    from repro.constraints.printer import to_smtlib
    from repro.model.api import SymbolicRegExp

    regexp = SymbolicRegExp(args.pattern, args.flags)
    model = regexp.exec_model(StrVar("input"))
    formula = model.no_match_formula if args.negate else model.match_formula
    print(to_smtlib(formula))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.automata import dfa_for, to_dot
    from repro.automata.build import erase_captures
    from repro.regex import parse_regex

    node = erase_captures(parse_regex(args.pattern, args.flags).body)
    print(to_dot(dfa_for(node)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Sound ES6 regex semantics for dynamic symbolic execution "
            "(PLDI 2019 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="find a (non-)matching input")
    solve.add_argument("pattern")
    solve.add_argument("-f", "--flags", default="")
    solve.add_argument("--negate", action="store_true")
    solve.set_defaults(fn=_cmd_solve)

    exec_ = sub.add_parser("exec", help="concrete ES6 exec")
    exec_.add_argument("pattern")
    exec_.add_argument("subject")
    exec_.add_argument("-f", "--flags", default="")
    exec_.set_defaults(fn=_cmd_exec)

    analyze = sub.add_parser("analyze", help="DSE of a mini-JS file")
    analyze.add_argument("file")
    analyze.add_argument(
        "--level",
        default="refined",
        choices=["concrete", "model", "captures", "refined"],
    )
    analyze.add_argument("--max-tests", type=int, default=50)
    analyze.add_argument("--time-budget", type=float, default=30.0)
    analyze.set_defaults(fn=_cmd_analyze)

    survey = sub.add_parser("survey", help="regenerate Tables 4/5")
    survey.add_argument("-n", "--packages", type=int, default=4000)
    survey.add_argument("--seed", type=int, default=1909)
    survey.set_defaults(fn=_cmd_survey)

    smtlib = sub.add_parser("smtlib", help="print the model as SMT-LIB")
    smtlib.add_argument("pattern")
    smtlib.add_argument("-f", "--flags", default="")
    smtlib.add_argument("--negate", action="store_true")
    smtlib.set_defaults(fn=_cmd_smtlib)

    dot = sub.add_parser("dot", help="print a classical regex's DFA")
    dot.add_argument("pattern")
    dot.add_argument("-f", "--flags", default="")
    dot.set_defaults(fn=_cmd_dot)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
