"""Trace/metrics exporters and the per-run observability orchestrator.

The runtime side (:mod:`repro.obs.tracer`) writes one JSONL spool file
per process; this module owns everything that happens *after* the run:

- :func:`read_spool` — parse every ``obs-*.jsonl`` file of a spool
  directory into spans, events, slow-query entries, and per-pid
  metrics checkpoints (defensively: a truncated trailing line from a
  killed worker is skipped, never an error);
- :func:`merge_records` — the deterministic merge: one timeline sorted
  by ``(ts, pid, seq)``, so two runs over the same spool produce
  byte-identical exports;
- :func:`write_jsonl_trace` / :func:`write_chrome_trace` — the two
  ``--trace-format`` outputs.  The Chrome form is the trace-event JSON
  Perfetto/chrome://tracing load directly: complete (``ph:"X"``) events
  for spans, instant (``ph:"i"``) events for markers, microsecond
  timestamps normalized to the earliest span, with span/parent ids
  carried in ``args`` so nesting survives the format;
- :func:`merge_metrics` — per-pid *last* checkpoint wins (checkpoints
  are cumulative within a process), then summed across pids;
- :class:`ObsRun` — ties it together for the CLI and the batch runner:
  ``start()`` configures the process and creates the spool,
  ``worker_config()`` is what pool initializers forward to
  :func:`repro.obs.configure_worker`, ``finish()`` merges the spool,
  writes the requested artifacts, and restores the disabled state.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.tracer import SpoolSink, Tracer, get_tracer, set_tracer

TRACE_FORMATS = ("jsonl", "chrome")


# -- spool reading ------------------------------------------------------------


def read_spool(spool_dir: str) -> dict:
    """Parse a spool directory into its record streams.

    Returns ``{"spans": [...], "events": [...], "slow": [...],
    "metrics": {pid: snapshot}}``.  Later metrics checkpoints replace
    earlier ones per pid (they are cumulative snapshots, not deltas).
    """
    spans: List[dict] = []
    events: List[dict] = []
    slow: List[dict] = []
    metrics_by_pid: Dict[int, dict] = {}
    metrics_seq: Dict[int, int] = {}
    try:
        names = sorted(
            name
            for name in os.listdir(spool_dir)
            if name.startswith("obs-") and name.endswith(".jsonl")
        )
    except OSError:
        names = []
    for name in names:
        try:
            with open(
                os.path.join(spool_dir, name), encoding="utf-8"
            ) as handle:
                lines = handle.read().splitlines()
        except OSError:
            continue
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # truncated trailing line of a killed worker
            kind = record.get("k")
            if kind == "span":
                spans.append(record)
            elif kind == "event":
                events.append(record)
            elif kind == "slow":
                slow.append(record)
            elif kind == "metrics":
                pid = record.get("pid", 0)
                seq = record.get("seq", 0)
                if seq >= metrics_seq.get(pid, -1):
                    metrics_seq[pid] = seq
                    metrics_by_pid[pid] = record.get("data") or {}
    return {
        "spans": spans,
        "events": events,
        "slow": slow,
        "metrics": metrics_by_pid,
    }


def merge_records(records: List[dict]) -> List[dict]:
    """One deterministic timeline: sort by (ts, pid, seq)."""
    return sorted(
        records,
        key=lambda r: (r.get("ts", 0.0), r.get("pid", 0), r.get("seq", 0)),
    )


def merge_metrics(
    spool: dict, local_snapshot: Optional[dict] = None
) -> dict:
    """Batch-level metrics: worker checkpoints + the parent's registry.

    The parent's live registry covers inline execution and everything
    recorded outside worker jobs; a worker that also ran in the parent
    pid (workers=0) is covered by ``local_snapshot`` alone, so its
    spooled checkpoint — always a prefix of the live registry — is
    dropped in favour of the live one.
    """
    snapshots = [
        snap
        for pid, snap in sorted((spool.get("metrics") or {}).items())
        if not (local_snapshot is not None and pid == os.getpid())
    ]
    if local_snapshot is not None:
        snapshots.append(local_snapshot)
    return obs_metrics.merge_snapshots(snapshots)


# -- writers ------------------------------------------------------------------


def write_jsonl_trace(path: str, records: List[dict]) -> None:
    """The merged timeline, one JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, default=repr) + "\n")


def write_chrome_trace(path: str, records: List[dict]) -> None:
    """Chrome trace-event JSON (open in Perfetto / chrome://tracing)."""
    origin = min(
        (r.get("ts", 0.0) for r in records), default=0.0
    )
    trace_events: List[dict] = []
    pids_seen = []
    for record in records:
        pid = record.get("pid", 0)
        if pid not in pids_seen:
            pids_seen.append(pid)
        args = dict(record.get("attrs") or {})
        args["span_id"] = record.get("id")
        if record.get("parent"):
            args["parent_id"] = record["parent"]
        entry = {
            "name": record.get("name", "?"),
            "cat": record.get("k", "span"),
            "ts": (record.get("ts", 0.0) - origin) * 1e6,
            "pid": pid,
            "tid": record.get("tid", 0),
            "args": args,
        }
        if record.get("k") == "event":
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        else:
            entry["ph"] = "X"
            entry["dur"] = record.get("dur", 0.0) * 1e6
        trace_events.append(entry)
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {
                "name": (
                    "runner" if index == 0 else f"worker-{index}"
                )
            },
        }
        for index, pid in enumerate(pids_seen)
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "traceEvents": metadata + trace_events,
                "displayTimeUnit": "ms",
            },
            handle,
            default=repr,
        )


def write_metrics_json(path: str, snapshot: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True, default=repr)


# -- the per-run orchestrator -------------------------------------------------


@dataclass
class ObsSummary:
    """What one observed run produced (attached to batch reports)."""

    trace_path: Optional[str] = None
    trace_format: str = "jsonl"
    metrics_path: Optional[str] = None
    span_count: int = 0
    event_count: int = 0
    pids: List[int] = field(default_factory=list)
    slow_queries: List[dict] = field(default_factory=list)


class ObsRun:
    """One observed CLI invocation / batch run (parent-process side)."""

    def __init__(
        self,
        trace: Optional[str],
        trace_format: str,
        metrics_json: Optional[str],
        slow_query_ms: Optional[float],
        spool_dir: str,
    ):
        self.trace = trace
        self.trace_format = trace_format
        self.metrics_json = metrics_json
        self.slow_query_ms = slow_query_ms
        self.spool_dir = spool_dir
        self._finished = False

    @classmethod
    def start(
        cls,
        trace: Optional[str] = None,
        trace_format: str = "jsonl",
        metrics_json: Optional[str] = None,
        slow_query_ms: Optional[float] = None,
    ) -> Optional["ObsRun"]:
        """Configure observability for this process, or ``None`` when
        nothing was requested (the strictly-disabled fast path)."""
        if trace is None and metrics_json is None and slow_query_ms is None:
            return None
        if trace_format not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {trace_format!r}; "
                f"choose from {TRACE_FORMATS}"
            )
        spool_dir = tempfile.mkdtemp(prefix="repro-obs-")
        sink = SpoolSink(spool_dir)
        if trace is not None or slow_query_ms is not None:
            set_tracer(
                Tracer(
                    sink,
                    record_spans=trace is not None,
                    slow_query_ms=slow_query_ms,
                )
            )
        if metrics_json is not None:
            obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        run = cls(
            trace, trace_format, metrics_json, slow_query_ms, spool_dir
        )
        run._sink = sink
        return run

    def worker_config(self) -> dict:
        """What pool initializers forward to ``obs.configure_worker``."""
        return {
            "spool": self.spool_dir,
            "trace_spans": self.trace is not None,
            "slow_query_ms": self.slow_query_ms,
            "metrics": self.metrics_json is not None,
        }

    def finish(self) -> ObsSummary:
        """Merge the spool, write the artifacts, restore disabled state."""
        if self._finished:
            raise RuntimeError("ObsRun.finish() called twice")
        self._finished = True
        # Capture parent-side state, then flip the switches off before
        # touching the spool so late instrumentation cannot race it.
        tracer = get_tracer()
        registry = obs_metrics.get_registry()
        local_snapshot = (
            registry.snapshot() if registry is not None else None
        )
        set_tracer(None)
        obs_metrics.disable()
        if tracer is not None and tracer.sink is not None:
            tracer.sink.close()
        self._sink.close()

        spool = read_spool(self.spool_dir)
        summary = ObsSummary(
            trace_path=self.trace,
            trace_format=self.trace_format,
            metrics_path=self.metrics_json,
        )
        records = merge_records(spool["spans"] + spool["events"])
        summary.span_count = len(spool["spans"])
        summary.event_count = len(spool["events"])
        summary.pids = sorted(
            {r.get("pid", 0) for r in records}
        )
        summary.slow_queries = merge_records(spool["slow"])
        if self.trace is not None:
            if self.trace_format == "chrome":
                write_chrome_trace(self.trace, records)
            else:
                write_jsonl_trace(self.trace, records)
        if self.metrics_json is not None:
            write_metrics_json(
                self.metrics_json, merge_metrics(spool, local_snapshot)
            )
        shutil.rmtree(self.spool_dir, ignore_errors=True)
        return summary

    def abort(self) -> None:
        """Tear down without writing artifacts (error paths)."""
        if self._finished:
            return
        self._finished = True
        set_tracer(None)
        obs_metrics.disable()
        self._sink.close()
        shutil.rmtree(self.spool_dir, ignore_errors=True)
