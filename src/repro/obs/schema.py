"""Schema validation for exported observability artifacts.

CI runs a traced batch and then validates the artifacts it produced
(``python -m repro.obs.schema --trace ... --metrics ...``), so a
regression in the exporters fails the workflow instead of shipping a
trace Perfetto cannot load.  The validators are deliberately
hand-rolled structural checks (no jsonschema dependency): each returns
a list of human-readable error strings, empty on success.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

#: Required fields of one merged-JSONL trace record and their types.
_JSONL_SPAN_FIELDS = {
    "name": str,
    "id": str,
    "pid": int,
    "tid": int,
    "seq": int,
    "ts": (int, float),
    "attrs": dict,
}

#: Required fields of one Chrome trace event (the subset every ``ph``
#: carries; ``dur`` is additionally required for complete events).
_CHROME_FIELDS = {
    "name": str,
    "ph": str,
    "ts": (int, float),
    "pid": int,
    "tid": int,
}


def _check_fields(record: dict, fields: dict, where: str) -> List[str]:
    errors = []
    for name, types in fields.items():
        if name not in record:
            errors.append(f"{where}: missing field {name!r}")
        elif not isinstance(record[name], types):
            errors.append(
                f"{where}: field {name!r} has type "
                f"{type(record[name]).__name__}"
            )
    return errors


def validate_jsonl_trace(path: str) -> List[str]:
    errors: List[str] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    count = 0
    last_key = None
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except ValueError:
            errors.append(f"{where}: not valid JSON")
            continue
        if record.get("k") not in ("span", "event"):
            errors.append(f"{where}: unknown record kind {record.get('k')!r}")
            continue
        errors.extend(_check_fields(record, _JSONL_SPAN_FIELDS, where))
        if record.get("k") == "span" and not isinstance(
            record.get("dur"), (int, float)
        ):
            errors.append(f"{where}: span without numeric 'dur'")
        key = (
            record.get("ts", 0.0),
            record.get("pid", 0),
            record.get("seq", 0),
        )
        if last_key is not None and key < last_key:
            errors.append(f"{where}: records out of (ts, pid, seq) order")
        last_key = key
        count += 1
    if count == 0:
        errors.append(f"{path}: no trace records")
    return errors


def validate_chrome_trace(path: str) -> List[str]:
    errors: List[str] = []
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: missing or empty 'traceEvents'"]
    complete = 0
    for index, event in enumerate(events):
        where = f"{path}: traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            # Metadata events (process_name, ...) carry no timestamp.
            errors.extend(
                _check_fields(
                    event, {"name": str, "ph": str, "pid": int}, where
                )
            )
            continue
        errors.extend(_check_fields(event, _CHROME_FIELDS, where))
        if ph == "X":
            complete += 1
            if not isinstance(event.get("dur"), (int, float)):
                errors.append(f"{where}: complete event without 'dur'")
        elif ph not in ("i", "I", "M"):
            errors.append(f"{where}: unexpected phase {ph!r}")
    if complete == 0:
        errors.append(f"{path}: no complete ('X') span events")
    return errors


def validate_trace_file(path: str, format: str = "jsonl") -> List[str]:
    if format == "chrome":
        return validate_chrome_trace(path)
    if format == "jsonl":
        return validate_jsonl_trace(path)
    return [f"unknown trace format {format!r}"]


def validate_metrics_payload(payload, where: str = "metrics") -> List[str]:
    """Validate an in-memory metrics snapshot (registry or merged file).

    The serve daemon's ``stats`` op returns this payload straight off
    the wire under ``obs.metrics`` — same shape as the file on disk.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"{where}: top level is not an object"]
    for section in ("counters", "gauges", "histograms"):
        series_map = payload.get(section)
        if not isinstance(series_map, dict):
            errors.append(f"{where}: missing section {section!r}")
            continue
        for name, series in series_map.items():
            where_ = f"{where}: {section}[{name!r}]"
            if not isinstance(series, list):
                errors.append(f"{where_}: not a list")
                continue
            for entry in series:
                if not isinstance(entry, dict) or not isinstance(
                    entry.get("labels"), dict
                ):
                    errors.append(f"{where_}: entry without 'labels'")
                    continue
                if section == "histograms":
                    if not isinstance(entry.get("buckets"), dict):
                        errors.append(f"{where_}: histogram without buckets")
                    if not isinstance(entry.get("count"), int):
                        errors.append(f"{where_}: histogram without count")
                elif not isinstance(entry.get("value"), (int, float)):
                    errors.append(f"{where_}: entry without numeric value")
    return errors


def validate_metrics_file(path: str) -> List[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_metrics_payload(payload, where=path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.schema",
        description="Validate exported trace/metrics artifacts.",
    )
    parser.add_argument("--trace", help="trace file to validate")
    parser.add_argument(
        "--trace-format",
        default="jsonl",
        choices=["jsonl", "chrome"],
    )
    parser.add_argument("--metrics", help="metrics JSON file to validate")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("nothing to validate: pass --trace and/or --metrics")
    errors: List[str] = []
    if args.trace:
        errors.extend(validate_trace_file(args.trace, args.trace_format))
    if args.metrics:
        errors.extend(validate_metrics_file(args.metrics))
    for error in errors:
        print(f"schema: {error}", file=sys.stderr)
    if not errors:
        checked = [p for p in (args.trace, args.metrics) if p]
        print(f"schema: ok ({', '.join(checked)})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
