"""Labeled metrics registry: counters, gauges, histograms.

The tallies the solver stack already keeps (:class:`SolverStats`
backend/session/route/cache counters, the automata interner's hit
counters, the lazy spaces' exploration counts) *feed* this registry
instead of growing yet another parallel mechanism: when a registry is
enabled, ``stats.py`` and the automata layer mirror each recorded
delta into labeled metrics; when disabled, the module-level helpers
cost one global load and a comparison.

Snapshots are JSON-shaped (the ``/stats`` surface of a future serve
daemon) and *mergeable*: worker processes ship their registry snapshot
through the trace spool at each job boundary, and the runner folds the
per-pid maxima into one batch-level snapshot (:mod:`repro.obs.export`).

Everything here is stdlib-only and imports nothing from ``repro`` —
``stats.py`` (and anything else on a hot path) can import it without
cycles.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

#: Histogram bucket upper bounds, in seconds (latency-shaped; ``inf``
#: is implicit).  Chosen to straddle the native solver's microsecond
#: cache hits through multi-second external-solver calls.
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing labeled counter."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock):
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A labeled point-in-time value (last write wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock):
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """A labeled cumulative-bucket histogram (Prometheus-shaped)."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "_lock")

    def __init__(
        self, lock: threading.Lock, bounds: tuple = DEFAULT_BUCKETS
    ):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1


class MetricsRegistry:
    """Thread-safe map ``(name, labels) -> metric``.

    One lock serializes both structural mutation (get-or-create) and
    value updates — metric updates are rare relative to the solver work
    around them, and a single lock keeps snapshots consistent.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    def _get(self, table: dict, name: str, labels: dict, factory):
        key = (name, _label_key(labels))
        metric = table.get(key)
        if metric is None:
            with self._lock:
                metric = table.get(key)
                if metric is None:
                    metric = table[key] = factory(self._lock)
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(self._counters, name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(self._gauges, name, labels, Gauge)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(self._histograms, name, labels, Histogram)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-shaped dump of every metric (see module docstring)."""
        with self._lock:
            counters: Dict[str, List[dict]] = {}
            for (name, key), counter in sorted(self._counters.items()):
                counters.setdefault(name, []).append(
                    {"labels": dict(key), "value": counter.value}
                )
            gauges: Dict[str, List[dict]] = {}
            for (name, key), gauge in sorted(self._gauges.items()):
                gauges.setdefault(name, []).append(
                    {"labels": dict(key), "value": gauge.value}
                )
            histograms: Dict[str, List[dict]] = {}
            for (name, key), hist in sorted(self._histograms.items()):
                buckets = {
                    str(bound): count
                    for bound, count in zip(hist.bounds, hist.bucket_counts)
                }
                buckets["+inf"] = hist.bucket_counts[-1]
                histograms.setdefault(name, []).append(
                    {
                        "labels": dict(key),
                        "count": hist.count,
                        "sum": hist.sum,
                        "buckets": buckets,
                    }
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def merge_snapshots(snapshots: List[dict]) -> dict:
    """Fold JSON-shaped registry snapshots into one (sums throughout).

    Counters and histograms sum exactly; gauges sum too — the gauges in
    this codebase are per-process residency numbers (cache sizes),
    whose batch-level meaning is the total across workers.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}

    def fold_valued(section: str, snap: dict) -> None:
        for name, series in (snap.get(section) or {}).items():
            out = merged[section].setdefault(name, {})
            for entry in series:
                key = _label_key(entry.get("labels") or {})
                slot = out.get(key)
                if slot is None:
                    out[key] = {
                        "labels": dict(entry.get("labels") or {}),
                        "value": entry.get("value", 0.0),
                    }
                else:
                    slot["value"] += entry.get("value", 0.0)

    def fold_histograms(snap: dict) -> None:
        for name, series in (snap.get("histograms") or {}).items():
            out = merged["histograms"].setdefault(name, {})
            for entry in series:
                key = _label_key(entry.get("labels") or {})
                slot = out.get(key)
                if slot is None:
                    out[key] = {
                        "labels": dict(entry.get("labels") or {}),
                        "count": entry.get("count", 0),
                        "sum": entry.get("sum", 0.0),
                        "buckets": dict(entry.get("buckets") or {}),
                    }
                else:
                    slot["count"] += entry.get("count", 0)
                    slot["sum"] += entry.get("sum", 0.0)
                    for bound, count in (entry.get("buckets") or {}).items():
                        slot["buckets"][bound] = (
                            slot["buckets"].get(bound, 0) + count
                        )

    for snap in snapshots:
        if not snap:
            continue
        fold_valued("counters", snap)
        fold_valued("gauges", snap)
        fold_histograms(snap)

    return {
        section: {
            name: [slot for _, slot in sorted(slots.items())]
            for name, slots in sorted(merged[section].items())
        }
        for section in ("counters", "gauges", "histograms")
    }


# -- module-level switch ------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def get_registry() -> Optional[MetricsRegistry]:
    return _REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    global _REGISTRY
    _REGISTRY = registry


def enable() -> MetricsRegistry:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    global _REGISTRY
    _REGISTRY = None


def enabled() -> bool:
    return _REGISTRY is not None


def count(name: str, amount: float = 1.0, **labels) -> None:
    """Increment a counter when a registry is enabled; else free."""
    registry = _REGISTRY
    if registry is None:
        return
    registry.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation when a registry is enabled."""
    registry = _REGISTRY
    if registry is None:
        return
    registry.histogram(name, **labels).observe(value)


def gauge_set(name: str, value: float, **labels) -> None:
    """Set a gauge when a registry is enabled; else free."""
    registry = _REGISTRY
    if registry is None:
        return
    registry.gauge(name, **labels).set(value)
