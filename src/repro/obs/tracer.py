"""Span-based tracing: contextvar-scoped, nested, thread/process-safe.

The design constraint that shapes everything here is the *disabled*
path: the instrumentation points live on the solver's hottest loops
(per-query, per-refinement-iteration, per-backend-dispatch), so when no
``--trace``/``--slow-query-ms`` was requested the module-level helpers
must cost one global load, one comparison, and a returned singleton —
no allocation, no clock read, no lock.  ``repro.obs`` re-exports these
helpers; instrumented code calls ``obs.span(...)`` and never checks a
flag itself.

When enabled, each process appends JSON-line records to its own spool
file (``obs-<pid>.jsonl`` under the run's spool directory) — workers
never contend on a shared file, and the runner merges the spool
deterministically at the end of the run (:mod:`repro.obs.export`).
Timestamps are epoch-anchored ``perf_counter`` readings: one anchor
(``time.time() - perf_counter()``) is computed per tracer, so spans
within a process order exactly by the monotonic clock while staying
comparable across processes to wall-clock precision.

Thread-safety: the current span lives in a :class:`contextvars.ContextVar`
(per-thread by construction); the sink serializes writes with a lock.
contextvars do *not* propagate into ``ThreadPoolExecutor`` worker
threads, so code that fans out to threads (the portfolio backend)
passes the parent span explicitly via ``span(..., parent=...)``.

Fork-safety: the sink records its creating pid and reopens a fresh
``obs-<pid>.jsonl`` on first write after a fork, so a forked worker
inheriting the parent's configured tracer never appends to the
parent's file.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: The innermost open span of the current thread/context (or ``None``).
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Span names eligible for the slow-query log.  These are the "one
#: solver query" units — a CEGAR run or a raw DSE flip — where a
#: canonical fingerprint / route / refinement depth annotation makes
#: the log entry actionable.
SLOW_FAMILIES = ("cegar:solve", "dse:flip")


class NoopSpan:
    """The shared do-nothing span returned while tracing is disabled.

    ``attrs`` is a class-level empty dict so callers may read
    ``span.attrs.get(...)`` unconditionally; ``set`` ignores its
    arguments (callers must not rely on attrs persisting on it).
    """

    __slots__ = ()

    attrs: Dict[str, Any] = {}
    span_id: Optional[str] = None
    name = ""

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()


class Span:
    """One live span: context manager that records itself on exit."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "seq",
        "tid",
        "ts",
        "dur",
        "_t0",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        parent_id: Optional[str],
        seq: int,
    ):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.seq = seq
        self.span_id = f"{tracer.pid}-{seq}"
        self.parent_id = parent_id
        self.tid = threading.get_ident()
        self._t0 = time.perf_counter()
        self.ts = tracer.epoch_anchor + self._t0
        self.dur = 0.0
        self._token: Optional[contextvars.Token] = None

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.dur = time.perf_counter() - self._t0
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.tracer.finish(self)
        return False


class SpoolSink:
    """Per-process JSON-lines writer into a shared spool directory.

    One file per pid; a pid change (fork) reopens transparently.  All
    I/O is best-effort — observability must never take down the run.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self._lock = threading.Lock()
        self._pid: Optional[int] = None
        self._file = None

    def _handle(self):
        pid = os.getpid()
        if self._file is None or self._pid != pid:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
            os.makedirs(self.directory, exist_ok=True)
            self._pid = pid
            self._file = open(
                os.path.join(self.directory, f"obs-{pid}.jsonl"),
                "a",
                encoding="utf-8",
            )
        return self._file

    def write(self, record: dict) -> None:
        try:
            line = json.dumps(record, default=repr)
        except (TypeError, ValueError):
            return
        with self._lock:
            try:
                handle = self._handle()
                handle.write(line + "\n")
                handle.flush()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
                self._pid = None


class Tracer:
    """The per-process recording engine behind ``obs.span()``.

    ``record_spans=False`` keeps timing (for the slow-query log) while
    writing no per-span records — the ``--slow-query-ms``-only mode.
    ``sink=None`` keeps everything in memory (tests, ``obs.snapshot()``).
    """

    def __init__(
        self,
        sink: Optional[SpoolSink] = None,
        *,
        record_spans: bool = True,
        slow_query_ms: Optional[float] = None,
        slow_families: tuple = SLOW_FAMILIES,
        max_slow_records: int = 256,
    ):
        self.sink = sink
        self.record_spans = record_spans
        self.slow_query_ms = slow_query_ms
        self.slow_families = tuple(slow_families)
        self.max_slow_records = max_slow_records
        self.pid = os.getpid()
        #: Wall-clock origin of the process's perf_counter timeline.
        self.epoch_anchor = time.time() - time.perf_counter()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self.spans_recorded = 0
        self.events_recorded = 0
        self.slow_recorded = 0
        #: Local ring of slow-query entries (newest last), also spooled.
        self.slow_queries: List[dict] = []

    # -- ids -----------------------------------------------------------------

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _fork_guard(self) -> None:
        """After a fork the inherited tracer restarts its id space."""
        pid = os.getpid()
        if pid != self.pid:
            self.pid = pid
            with self._seq_lock:
                self._seq = 0

    # -- recording -----------------------------------------------------------

    def start_span(
        self,
        name: str,
        attrs: Dict[str, Any],
        parent: Optional[object] = None,
    ) -> Span:
        self._fork_guard()
        if parent is None:
            parent = _CURRENT.get()
        parent_id = getattr(parent, "span_id", None)
        return Span(self, name, attrs, parent_id, self._next_seq())

    def finish(self, span: Span) -> None:
        self.spans_recorded += 1
        if self.record_spans and self.sink is not None:
            self.sink.write(
                {
                    "k": "span",
                    "name": span.name,
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "pid": self.pid,
                    "tid": span.tid,
                    "seq": span.seq,
                    "ts": span.ts,
                    "dur": span.dur,
                    "attrs": span.attrs,
                }
            )
        if (
            self.slow_query_ms is not None
            and span.dur * 1000.0 >= self.slow_query_ms
            and span.name.startswith(self.slow_families)
        ):
            self._record_slow(span)

    def record_complete(
        self, name: str, seconds: float, attrs: Dict[str, Any]
    ) -> None:
        """Record an already-timed span (start = now - seconds).

        Used where a duration is measured anyway (backend ``_tally``):
        the span costs no extra clock reads on the traced path.
        """
        self._fork_guard()
        seq = self._next_seq()
        self.spans_recorded += 1
        if self.record_spans and self.sink is not None:
            now = self.epoch_anchor + time.perf_counter()
            parent = _CURRENT.get()
            self.sink.write(
                {
                    "k": "span",
                    "name": name,
                    "id": f"{self.pid}-{seq}",
                    "parent": getattr(parent, "span_id", None),
                    "pid": self.pid,
                    "tid": threading.get_ident(),
                    "seq": seq,
                    "ts": now - seconds,
                    "dur": seconds,
                    "attrs": attrs,
                }
            )

    def record_event(self, name: str, attrs: Dict[str, Any]) -> None:
        """An instantaneous marker (spawn, lease, route decision, ...)."""
        self._fork_guard()
        seq = self._next_seq()
        self.events_recorded += 1
        if self.record_spans and self.sink is not None:
            parent = _CURRENT.get()
            self.sink.write(
                {
                    "k": "event",
                    "name": name,
                    "id": f"{self.pid}-{seq}",
                    "parent": getattr(parent, "span_id", None),
                    "pid": self.pid,
                    "tid": threading.get_ident(),
                    "seq": seq,
                    "ts": self.epoch_anchor + time.perf_counter(),
                    "attrs": attrs,
                }
            )

    def _record_slow(self, span: Span) -> None:
        self.slow_recorded += 1
        entry = {
            "name": span.name,
            "ms": span.dur * 1000.0,
            "ts": span.ts,
            "pid": self.pid,
            "attrs": dict(span.attrs),
        }
        self.slow_queries.append(entry)
        if len(self.slow_queries) > self.max_slow_records:
            del self.slow_queries[: -self.max_slow_records]
        if self.sink is not None:
            self.sink.write({"k": "slow", **entry})

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "pid": self.pid,
            "spans_recorded": self.spans_recorded,
            "events_recorded": self.events_recorded,
            "slow_recorded": self.slow_recorded,
            "slow_query_ms": self.slow_query_ms,
            "slow_queries": list(self.slow_queries),
        }


# -- module-level switch (what instrumented code calls) -----------------------

_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> None:
    global _TRACER
    _TRACER = tracer


def enabled() -> bool:
    """Whether spans are being timed (tracing and/or slow-query log)."""
    return _TRACER is not None


def span(name: str, parent: Optional[object] = None, **attrs):
    """Open a span (context manager).  The no-op singleton when disabled."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.start_span(name, attrs, parent)


def event(name: str, **attrs) -> None:
    """Record an instantaneous event under the current span."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.record_event(name, attrs)


def complete_span(name: str, seconds: float, **attrs) -> None:
    """Record an already-timed span ending now (see ``record_complete``)."""
    tracer = _TRACER
    if tracer is None:
        return
    tracer.record_complete(name, seconds, attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the current span, if any."""
    if _TRACER is None:
        return
    current = _CURRENT.get()
    if current is not None:
        current.attrs.update(attrs)


def current_span() -> Optional[Span]:
    """The innermost open span of this thread/context (or ``None``)."""
    return _CURRENT.get()
