"""Observability: span tracing, labeled metrics, and exporters.

The package the rest of the stack imports as ``from repro import obs``:

- ``obs.span("cegar:iter", iteration=n)`` — contextvar-scoped nested
  spans (a shared no-op singleton while disabled, so hot loops pay one
  global load + comparison);
- ``obs.event(...)`` / ``obs.complete_span(...)`` / ``obs.annotate(...)``
  — markers, after-the-fact spans, and attribute attachment;
- ``obs.metrics`` — the labeled counter/gauge/histogram registry the
  existing :class:`~repro.solver.stats.SolverStats` tallies feed;
- ``obs.snapshot()`` — the JSON-shaped combined state (the ``/stats``
  surface of the future serve daemon);
- :class:`~repro.obs.export.ObsRun` — per-invocation orchestration
  (spool directory, worker shipping, artifact writing), wired to the
  ``--trace`` / ``--trace-format`` / ``--metrics-json`` /
  ``--slow-query-ms`` CLI flags.

Worker processes call :func:`configure_worker` from the pool
initializer with :meth:`ObsRun.worker_config`'s dict; each job
boundary calls :func:`checkpoint` so the parent can merge worker
metrics without shared memory.  Everything degrades silently: a broken
spool directory loses telemetry, never results.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from repro.obs import metrics
from repro.obs.tracer import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    SpoolSink,
    Tracer,
    annotate,
    complete_span,
    current_span,
    enabled,
    event,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "NOOP_SPAN",
    "NoopSpan",
    "Span",
    "SpoolSink",
    "Tracer",
    "annotate",
    "checkpoint",
    "complete_span",
    "configure_worker",
    "current_span",
    "enabled",
    "event",
    "get_tracer",
    "metrics",
    "set_tracer",
    "shutdown",
    "snapshot",
    "span",
]

#: Sink used by ``checkpoint()`` to ship metrics without a tracer
#: (``--metrics-json`` alone keeps span overhead at zero).
_CHECKPOINT_SINK: Optional[SpoolSink] = None
_CHECKPOINT_SEQ = 0
_CHECKPOINT_LOCK = threading.Lock()


def configure_worker(config: Optional[dict]) -> None:
    """Install the run's observability in a worker process.

    ``config`` is :meth:`repro.obs.export.ObsRun.worker_config` output
    (or ``None``/empty to leave the worker untouched).  Safe under both
    fork and spawn start methods: a forked worker that inherited the
    parent's tracer is simply re-pointed at the same spool (the sink's
    pid guard would already have reopened a per-pid file).
    """
    global _CHECKPOINT_SINK
    if not config:
        return
    spool = config.get("spool")
    if not spool:
        return
    sink = SpoolSink(spool)
    _CHECKPOINT_SINK = sink
    if config.get("trace_spans") or config.get("slow_query_ms") is not None:
        set_tracer(
            Tracer(
                sink,
                record_spans=bool(config.get("trace_spans")),
                slow_query_ms=config.get("slow_query_ms"),
            )
        )
    if config.get("metrics"):
        metrics.set_registry(metrics.MetricsRegistry())


def checkpoint() -> None:
    """Spool a cumulative metrics snapshot for this process.

    Called at job boundaries in workers; the parent's merge keeps the
    *latest* checkpoint per pid, so calling often only costs I/O.
    """
    global _CHECKPOINT_SEQ
    registry = metrics.get_registry()
    if registry is None:
        return
    tracer = get_tracer()
    sink = (
        tracer.sink
        if tracer is not None and tracer.sink is not None
        else _CHECKPOINT_SINK
    )
    if sink is None:
        return
    with _CHECKPOINT_LOCK:
        _CHECKPOINT_SEQ += 1
        seq = _CHECKPOINT_SEQ
    sink.write(
        {
            "k": "metrics",
            "pid": os.getpid(),
            "seq": seq,
            "data": registry.snapshot(),
        }
    )


def store_counters() -> dict:
    """Aggregate disk-store health for this process: load/store/failure
    and corruption-eviction totals across every live query and automata
    store handle.  ``corrupt_evictions`` climbing is the operator's
    early-warning for a bad disk (or an active chaos plan) — entries
    being garbled and silently re-solved instead of served.
    """
    # Lazy imports: ``cached.py`` imports ``repro.obs`` at module
    # level, so the reverse edge must stay inside the function body.
    from repro.automata.cache import dfa_store_counters
    from repro.solver.backends.cached import query_store_counters

    return {
        "query": query_store_counters(),
        "dfa": dfa_store_counters(),
    }


def snapshot() -> dict:
    """JSON-shaped combined observability state of this process.

    The ``/stats`` surface of the future serve daemon: tracer counters
    and the slow-query ring under ``"tracing"``, the full metrics
    registry under ``"metrics"`` (each ``None`` while disabled), and
    the disk stores' aggregate health under ``"stores"`` (always
    present — store counters are plain integers, not gated telemetry).
    """
    tracer = get_tracer()
    registry = metrics.get_registry()
    return {
        "pid": os.getpid(),
        "tracing": tracer.snapshot() if tracer is not None else None,
        "metrics": registry.snapshot() if registry is not None else None,
        "stores": store_counters(),
    }


def shutdown() -> None:
    """Disable tracing and metrics and release the spool sink."""
    global _CHECKPOINT_SINK
    tracer = get_tracer()
    set_tracer(None)
    metrics.disable()
    if tracer is not None and tracer.sink is not None:
        tracer.sink.close()
    if _CHECKPOINT_SINK is not None:
        _CHECKPOINT_SINK.close()
        _CHECKPOINT_SINK = None
