"""Reproduction of *Sound Regular Expression Semantics for Dynamic
Symbolic Execution of JavaScript* (Loring, Mitchell, Kinder — PLDI 2019).

The package is organised as one subpackage per subsystem:

- :mod:`repro.regex` — ES6 regex front end and a spec-compliant concrete
  backtracking matcher (the CEGAR oracle).
- :mod:`repro.automata` — classical regular-language engine (NFA/DFA,
  boolean operations, word enumeration).
- :mod:`repro.constraints` — the string-constraint language emitted by the
  capturing-language model.
- :mod:`repro.solver` — a from-scratch string constraint solver for that
  language (stands in for Z3, which is unavailable offline).
- :mod:`repro.model` — the paper's core: capturing-language models
  (§4, Tables 1–3), CEGAR refinement (§5, Algorithm 1) and the symbolic
  RegExp API (§6.1, Algorithm 2).
- :mod:`repro.dse` — a dynamic symbolic execution engine for a
  JavaScript-like language (stands in for ExpoSE/Jalangi2).
- :mod:`repro.corpus` — the NPM regex survey pipeline (§7.1).
- :mod:`repro.eval` — harnesses regenerating the paper's Tables 4–8.
"""

import sys

# The concrete matcher and the translation are recursive over both the AST
# and the subject string; the default CPython limit is too small for
# spec-style continuation-passing matching of even modest strings.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "RegExp": ("repro.regex", "RegExp"),
    "parse_regex": ("repro.regex", "parse_regex"),
    "SymbolicRegExp": ("repro.model.api", "SymbolicRegExp"),
    "CegarSolver": ("repro.model.cegar", "CegarSolver"),
    "CegarResult": ("repro.model.cegar", "CegarResult"),
    "Solver": ("repro.solver", "Solver"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    """Lazily resolve the public API to avoid import cycles at startup."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
