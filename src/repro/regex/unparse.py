"""Unparse regex ASTs back to ES6 pattern source.

Used to display rewritten patterns (Table 1 preprocessing) and to build
derived concrete ``RegExp`` objects (e.g. the ignore-case rewriting of
Algorithm 2).  Unparsing is semantics-preserving, not source-identical:
``CharMatch`` nodes carry their original surface syntax, and structural
nodes are re-rendered with minimal grouping.
"""

from __future__ import annotations

from repro.regex import ast

# Precedence levels, loosest to tightest.
_ALTERNATION, _CONCAT, _QUANTIFIED, _ATOM = range(4)


def unparse(node: ast.Node) -> str:
    """Render ``node`` as pattern text equivalent under re-parsing."""
    return _render(node, _ALTERNATION)


def unparse_pattern(pattern: ast.Pattern) -> str:
    return unparse(pattern.body)


def _render(node: ast.Node, context: int) -> str:
    if isinstance(node, ast.Empty):
        return "(?:)" if context >= _QUANTIFIED else ""
    if isinstance(node, ast.CharMatch):
        return node.source
    if isinstance(node, ast.Backreference):
        return f"\\{node.index}"
    if isinstance(node, ast.Anchor):
        return "^" if node.kind == "start" else "$"
    if isinstance(node, ast.WordBoundary):
        return "\\B" if node.negated else "\\b"
    if isinstance(node, ast.Group):
        if node.name is not None:
            return f"(?<{node.name}>{_render(node.child, _ALTERNATION)})"
        return f"({_render(node.child, _ALTERNATION)})"
    if isinstance(node, ast.NonCapGroup):
        return f"(?:{_render(node.child, _ALTERNATION)})"
    if isinstance(node, ast.Lookahead):
        op = "?!" if node.negative else "?="
        return f"({op}{_render(node.child, _ALTERNATION)})"
    if isinstance(node, ast.Quantifier):
        body = _render(node.child, _ATOM)
        suffix = _quantifier_suffix(node)
        text = body + suffix
        return f"(?:{text})" if context > _QUANTIFIED else text
    if isinstance(node, ast.Concat):
        text = "".join(_render(part, _QUANTIFIED) for part in node.parts)
        return f"(?:{text})" if context > _CONCAT else text
    if isinstance(node, ast.Alternation):
        text = "|".join(_render(opt, _CONCAT) for opt in node.options)
        return f"(?:{text})" if context > _ALTERNATION else text
    raise TypeError(f"cannot unparse {node!r}")


def _quantifier_suffix(node: ast.Quantifier) -> str:
    low, high = node.min, node.max
    if (low, high) == (0, None):
        core = "*"
    elif (low, high) == (1, None):
        core = "+"
    elif (low, high) == (0, 1):
        core = "?"
    elif high is None:
        core = f"{{{low},}}"
    elif high == low:
        core = f"{{{low}}}"
    else:
        core = f"{{{low},{high}}}"
    return core + ("?" if node.lazy else "")
