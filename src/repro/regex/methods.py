"""The String.prototype regex API — concrete ES6 semantics (§6.1).

Algorithm 2 covers ``RegExp.exec``/``test``; the paper notes its
implementation "includes partial models for the remaining functions".
This module supplies the *concrete* semantics those models bottom out in:
``match`` (including global match-all), ``match_all`` (the ES2020
``String.prototype.matchAll``, capture arrays included), ``search``,
``split`` (with capture inclusion and limits) and ``replace`` (with
``$&``/``$n`` substitution patterns), all per the specification.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.regex.matcher import ExecResult, MatchResult, RegExp, search as _search


def match(regexp: RegExp, subject: str) -> Optional[Union[ExecResult, List[str]]]:
    """``String.prototype.match``.

    Without ``g``: equivalent to ``regexp.exec(subject)``.
    With ``g``: the array of *whole-match* strings for every match, with
    ``lastIndex`` reset afterwards; ``None`` if there are none.
    """
    if not regexp.flags.global_:
        return regexp.exec(subject)
    regexp.last_index = 0
    results: List[str] = []
    while True:
        found = regexp.exec(subject)
        if found is None:
            break
        results.append(found[0] or "")
        if found[0] == "":
            # Zero-length match: advance manually to avoid looping.
            regexp.last_index += 1
    regexp.last_index = 0
    return results if results else None


def match_all(regexp: RegExp, subject: str) -> List[ExecResult]:
    """``String.prototype.matchAll`` — every match, captures included.

    Returns the fully-drained iterator as a list of :class:`ExecResult`
    (each with ``index``/``input``/``groups``, unlike global ``match``
    which keeps only the whole-match strings).  Per ES2020 semantics the
    regexp must carry the ``g`` flag (``TypeError`` otherwise), the
    iteration runs on a clone — the original's ``lastIndex`` is read
    once and never written — and a zero-length match advances by one so
    the iterator always terminates.
    """
    if not regexp.flags.global_:
        raise TypeError(
            "matchAll called with a non-global RegExp argument"
        )
    clone = RegExp(regexp.source, regexp.flags)
    clone.last_index = regexp.last_index
    results: List[ExecResult] = []
    while True:
        found = clone.exec(subject)
        if found is None:
            break
        results.append(found)
        if found[0] == "":
            clone.last_index += 1
    return results


def search(regexp: RegExp, subject: str) -> int:
    """``String.prototype.search`` — index of the first match or -1.

    Per spec, ``search`` ignores ``lastIndex`` (it is saved/restored)."""
    saved = regexp.last_index
    regexp.last_index = 0
    found = _search(regexp.pattern, subject, 0, regexp.flags)
    regexp.last_index = saved
    return found.index if found is not None else -1


def split(
    regexp: RegExp, subject: str, limit: Optional[int] = None
) -> List[str]:
    """``String.prototype.split`` with a regex separator.

    Captured groups of the separator are spliced into the result, and a
    separator match at position 0 / end contributes empty strings —
    both per the ES6 SplitMatch semantics."""
    if limit == 0:
        return []
    bound = 2**32 - 1 if limit is None else limit
    if subject == "":
        # Spec: if the separator matches empty string, result is [].
        probe = _search(regexp.pattern, "", 0, regexp.flags)
        return [] if probe is not None else [""]
    out: List[str] = []
    last_end = 0
    position = 0
    while position < len(subject):
        found = _match_at_or_after(regexp, subject, position)
        if found is None or found.index >= len(subject):
            break
        end = found.end
        if end == last_end and found.index == last_end:
            # Zero-length separator match at the previous end: step over.
            position += 1
            continue
        out.append(subject[last_end:found.index])
        if len(out) >= bound:
            return out[:bound]
        for group in found.captures[1:]:
            out.append(group if group is not None else None)
            if len(out) >= bound:
                return out[:bound]
        last_end = end
        position = end if end > position else position + 1
    out.append(subject[last_end:])
    return out[:bound]


def replace(regexp: RegExp, subject: str, replacement: str) -> str:
    """``String.prototype.replace`` with string replacement patterns.

    Supports ``$$`` (literal $), ``$&`` (whole match), ``$`​``/``$'``
    (context), and ``$1``–``$99`` (captures).  Replaces the first match,
    or every match under the ``g`` flag."""
    out: List[str] = []
    position = 0
    replaced_any = False
    while position <= len(subject):
        found = _match_at_or_after(regexp, subject, position)
        if found is None:
            break
        out.append(subject[position:found.index])
        out.append(_expand(replacement, found, subject))
        replaced_any = True
        new_position = found.end if found.end > found.index else found.end + 1
        if found.end == found.index and found.index < len(subject):
            out.append(subject[found.index])
        position = new_position
        if not regexp.flags.global_:
            break
    out.append(subject[position:])
    if regexp.flags.global_:
        regexp.last_index = 0
    return "".join(out) if replaced_any else subject


def _match_at_or_after(
    regexp: RegExp, subject: str, position: int
) -> Optional[MatchResult]:
    if regexp.flags.sticky:
        from repro.regex.matcher import match_at

        return match_at(regexp.pattern, subject, position, regexp.flags)
    return _search(regexp.pattern, subject, position, regexp.flags)


def _expand(template: str, found: MatchResult, subject: str) -> str:
    out: List[str] = []
    i = 0
    captures = found.captures
    while i < len(template):
        ch = template[i]
        if ch != "$" or i + 1 >= len(template):
            out.append(ch)
            i += 1
            continue
        nxt = template[i + 1]
        if nxt == "$":
            out.append("$")
            i += 2
        elif nxt == "&":
            out.append(captures[0] or "")
            i += 2
        elif nxt == "`":
            out.append(subject[:found.index])
            i += 2
        elif nxt == "'":
            out.append(subject[found.end:])
            i += 2
        elif nxt.isdigit():
            # Prefer two-digit group references when valid.
            two = template[i + 1:i + 3]
            if len(two) == 2 and two.isdigit() and int(two) < len(captures) \
                    and int(two) > 0:
                index, width = int(two), 2
            else:
                index, width = int(nxt), 1
            if 0 < index < len(captures):
                out.append(captures[index] or "")
                i += 1 + width
            else:
                out.append(ch)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)
