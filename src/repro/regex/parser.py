"""Recursive-descent parser for ES6 regular expression patterns.

Implements the *Pattern* grammar of ECMA-262 6th edition §21.2.1 with the
Annex B leniencies real engines apply (identity escapes, literal braces
that do not form a quantifier, legacy octal escapes, quantified
lookaheads).  Of the ES2018 additions, named capture groups
(``(?<name>...)`` with ``\\k<name>`` backreferences) are supported —
they desugar to ordinary numbered groups, which is exactly their spec
semantics — while lookbehind, dotAll and unicode property escapes are
rejected with a clear error since the paper targets ES6.
"""

from __future__ import annotations

import re as _re

from repro.regex import ast
from repro.regex.charclass import (
    CLASS_ESCAPES,
    CharSet,
    DOT,
)
from repro.regex.errors import RegexSyntaxError, UnsupportedRegexError
from repro.regex.flags import Flags, NO_FLAGS

_SYNTAX_CHARS = set("^$\\.*+?()[]{}|")

_CONTROL_ESCAPES = {
    "f": 0x0C,
    "n": 0x0A,
    "r": 0x0D,
    "t": 0x09,
    "v": 0x0B,
}


_GROUP_NAME_RE = _re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*")


def scan_group_names(pattern: str) -> dict:
    """``{name: index}`` over the pattern's named capture groups.

    A lexical pre-pass in the style of :func:`count_capture_groups`:
    named groups are capturing, and ``\\k<name>`` may reference a group
    defined later in the pattern, so the parser needs the full mapping
    before descending.  Malformed or duplicate names are left for the
    parser proper to reject (this scan only maps what it can read).
    """
    names: dict = {}
    count = 0
    i = 0
    in_class = False
    n = len(pattern)
    while i < n:
        ch = pattern[i]
        if ch == "\\":
            i += 2
            continue
        if in_class:
            if ch == "]":
                in_class = False
        elif ch == "[":
            in_class = True
        elif ch == "(":
            if not pattern.startswith("(?", i):
                count += 1
            elif pattern.startswith("(?<", i) and pattern[i + 3:i + 4] not in (
                "=", "!"
            ):
                count += 1
                match = _GROUP_NAME_RE.match(pattern, i + 3)
                if match is not None and pattern[match.end():match.end() + 1] == ">":
                    names.setdefault(match.group(), count)
                    i = match.end() + 1
                    continue
        i += 1
    return names


def count_capture_groups(pattern: str) -> int:
    """Count capturing ``(`` in a pattern (a pre-pass needed to classify
    ``\\N`` escapes as backreference vs. octal, as real engines do).

    Named groups ``(?<name>...)`` are capturing; every other ``(?``
    construct is not."""
    count = 0
    i = 0
    in_class = False
    n = len(pattern)
    while i < n:
        ch = pattern[i]
        if ch == "\\":
            i += 2
            continue
        if in_class:
            if ch == "]":
                in_class = False
        elif ch == "[":
            in_class = True
        elif ch == "(":
            if not pattern.startswith("(?", i):
                count += 1
            elif pattern.startswith("(?<", i) and pattern[i + 3:i + 4] not in (
                "=", "!"
            ):
                count += 1
        i += 1
    return count


class _Parser:
    """Single-use parser over one pattern string."""

    def __init__(self, pattern: str, flags: Flags):
        self.pattern = pattern
        self.flags = flags
        self.pos = 0
        self.group_index = 0
        self.total_groups = count_capture_groups(pattern)
        self.group_names = scan_group_names(pattern)
        self.seen_names: set[str] = set()

    # -- character cursor --------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.pattern[idx] if idx < len(self.pattern) else ""

    def _next(self) -> str:
        ch = self._peek()
        if not ch:
            raise self._error("unexpected end of pattern")
        self.pos += 1
        return ch

    def _eat(self, expected: str) -> bool:
        if self.pattern.startswith(expected, self.pos):
            self.pos += len(expected)
            return True
        return False

    def _expect(self, expected: str) -> None:
        if not self._eat(expected):
            raise self._error(f"expected {expected!r}")

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> ast.Pattern:
        body = self._disjunction()
        if self.pos != len(self.pattern):
            raise self._error(f"unmatched {self._peek()!r}")
        return ast.Pattern(body, self.group_index, source=self.pattern)

    def _disjunction(self) -> ast.Node:
        options = [self._alternative()]
        while self._eat("|"):
            options.append(self._alternative())
        return ast.alternation(options)

    def _alternative(self) -> ast.Node:
        parts: list[ast.Node] = []
        while True:
            ch = self._peek()
            if not ch or ch in "|)":
                break
            parts.append(self._term())
        return ast.concat(parts) if parts else ast.Empty()

    def _term(self) -> ast.Node:
        ch = self._peek()
        if ch == "^":
            self.pos += 1
            return ast.Anchor("start")
        if ch == "$":
            self.pos += 1
            return ast.Anchor("end")
        if ch == "\\" and self._peek(1) in ("b", "B"):
            negated = self._peek(1) == "B"
            self.pos += 2
            return ast.WordBoundary(negated)

        atom = self._atom()
        return self._maybe_quantified(atom)

    def _maybe_quantified(self, atom: ast.Node) -> ast.Node:
        ch = self._peek()
        if ch == "*":
            self.pos += 1
            low, high = 0, None
        elif ch == "+":
            self.pos += 1
            low, high = 1, None
        elif ch == "?":
            self.pos += 1
            low, high = 0, 1
        elif ch == "{":
            bounds = self._try_braced_quantifier()
            if bounds is None:
                return atom
            low, high = bounds
        else:
            return atom
        lazy = self._eat("?")
        if isinstance(atom, (ast.Anchor, ast.WordBoundary)):
            raise self._error("nothing to repeat")
        return ast.Quantifier(atom, low, high, lazy)

    def _try_braced_quantifier(self) -> tuple[int, int | None] | None:
        """Parse ``{n}``/``{n,}``/``{n,m}``; on malformed input treat ``{``
        as a literal (Annex B) by rewinding and returning None."""
        start = self.pos
        self.pos += 1  # consume '{'
        digits = self._digits()
        if digits is None:
            self.pos = start
            return None
        low = int(digits)
        if self._eat("}"):
            return low, low
        if not self._eat(","):
            self.pos = start
            return None
        if self._eat("}"):
            return low, None
        digits = self._digits()
        if digits is None or not self._eat("}"):
            self.pos = start
            return None
        high = int(digits)
        if high < low:
            raise self._error("numbers out of order in {} quantifier")
        return low, high

    def _digits(self) -> str | None:
        start = self.pos
        while self._peek().isdigit():
            self.pos += 1
        return self.pattern[start:self.pos] if self.pos > start else None

    def _atom(self) -> ast.Node:
        ch = self._peek()
        if ch == ".":
            self.pos += 1
            return ast.CharMatch(self._fold(DOT), ".")
        if ch == "(":
            return self._group()
        if ch == "[":
            return self._character_class()
        if ch == "\\":
            return self._atom_escape()
        if ch in ")]":
            raise self._error(f"unmatched {ch!r}")
        if ch in "*+?":
            raise self._error("nothing to repeat")
        if ch == "{":
            # Annex B: a brace that does not begin a quantifier is literal.
            bounds_probe = self._try_braced_quantifier()
            if bounds_probe is not None:
                raise self._error("nothing to repeat")
            self.pos += 1
            return self._literal("{")
        self.pos += 1
        return self._literal(ch)

    def _literal(self, ch: str) -> ast.Node:
        return ast.CharMatch(self._fold(CharSet.of(ch)), _escape_literal(ch))

    def _fold(self, charset: CharSet) -> CharSet:
        return charset.case_closure() if self.flags.ignore_case else charset

    def _group(self) -> ast.Node:
        self._expect("(")
        if self._eat("?:"):
            body = self._disjunction()
            self._expect(")")
            return ast.NonCapGroup(body)
        if self._eat("?="):
            body = self._disjunction()
            self._expect(")")
            return ast.Lookahead(body, negative=False)
        if self._eat("?!"):
            body = self._disjunction()
            self._expect(")")
            return ast.Lookahead(body, negative=True)
        if self._peek() == "?" and self._peek(1) == "<":
            if self._peek(2) in ("=", "!"):
                raise UnsupportedRegexError("lookbehind is not part of ES6")
            return self._named_group()
        if self._peek() == "?":
            raise self._error("invalid group")
        self.group_index += 1
        index = self.group_index
        body = self._disjunction()
        self._expect(")")
        return ast.Group(body, index)

    def _named_group(self) -> ast.Node:
        """``(?<name> ... )`` — an ES2018 named capture group."""
        self._expect("?<")
        match = _GROUP_NAME_RE.match(self.pattern, self.pos)
        if match is None:
            raise self._error("invalid capture group name")
        name = match.group()
        self.pos = match.end()
        self._expect(">")
        if name in self.seen_names:
            raise self._error(f"duplicate capture group name {name!r}")
        self.seen_names.add(name)
        self.group_index += 1
        index = self.group_index
        body = self._disjunction()
        self._expect(")")
        return ast.Group(body, index, name=name)

    # -- escapes -----------------------------------------------------------

    def _atom_escape(self) -> ast.Node:
        self._expect("\\")
        ch = self._peek()
        if not ch:
            raise self._error("pattern may not end with a trailing backslash")

        if ch.isdigit() and ch != "0":
            return self._decimal_escape()
        if ch == "k" and self.group_names:
            # \k<name>: only a named backreference when the pattern has
            # named groups at all; otherwise Annex B keeps \k an
            # identity escape (falls through to _character_escape).
            return self._named_backreference()
        if ch == "0":
            self.pos += 1
            return ast.CharMatch(self._fold(CharSet.of("\0")), "\\0")
        if ch in CLASS_ESCAPES:
            self.pos += 1
            return ast.CharMatch(self._fold(CLASS_ESCAPES[ch]), f"\\{ch}")
        cp = self._character_escape()
        return ast.CharMatch(
            self._fold(CharSet.of_range(cp, cp)), _escape_codepoint(cp)
        )

    def _named_backreference(self) -> ast.Node:
        self._expect("k")
        self._expect("<")
        match = _GROUP_NAME_RE.match(self.pattern, self.pos)
        if match is None:
            raise self._error("invalid named backreference")
        name = match.group()
        self.pos = match.end()
        self._expect(">")
        index = self.group_names.get(name)
        if index is None:
            raise self._error(f"backreference to unknown group {name!r}")
        return ast.Backreference(index)

    def _decimal_escape(self) -> ast.Node:
        start = self.pos
        digits = self._digits()
        assert digits is not None
        value = int(digits)
        if value <= self.total_groups:
            return ast.Backreference(value)
        # Annex B: not a valid backreference — reinterpret as legacy octal
        # (longest octal prefix) followed by literal digits.
        self.pos = start
        octal = ""
        while (
            len(octal) < 3
            and self._peek() != ""
            and self._peek() in "01234567"
            and int(octal + self._peek(), 8) <= 0xFF
        ):
            octal += self._next()
        if octal:
            cp = int(octal, 8)
            return ast.CharMatch(
                self._fold(CharSet.of_range(cp, cp)), _escape_codepoint(cp)
            )
        ch = self._next()
        return self._literal(ch)

    def _character_escape(self) -> int:
        """Parse the escape after ``\\`` and return a code point."""
        ch = self._next()
        if ch in _CONTROL_ESCAPES:
            return _CONTROL_ESCAPES[ch]
        if ch == "c":
            letter = self._peek()
            if letter.isalpha() and letter.isascii():
                self.pos += 1
                return ord(letter) % 32
            # Annex B: \c not followed by a letter is literal backslash-c;
            # we approximate with a literal 'c' after rewinding the '\\'.
            return ord("c")
        if ch == "x":
            return self._hex_digits(2, f"\\x requires two hex digits")
        if ch == "u":
            if self.flags.unicode and self._eat("{"):
                start = self.pos
                while self._peek() != "}":
                    if not self._peek():
                        raise self._error("unterminated \\u{...} escape")
                    self.pos += 1
                cp = int(self.pattern[start:self.pos] or "x", 16)
                self._expect("}")
                if cp > 0x10FFFF:
                    raise self._error("invalid unicode code point")
                return cp
            return self._hex_digits(4, "\\u requires four hex digits")
        # Identity escape (lenient: any other character escapes to itself).
        return ord(ch)

    def _hex_digits(self, count: int, message: str) -> int:
        chunk = self.pattern[self.pos:self.pos + count]
        if len(chunk) != count or any(
            c not in "0123456789abcdefABCDEF" for c in chunk
        ):
            raise self._error(message)
        self.pos += count
        return int(chunk, 16)

    # -- character classes --------------------------------------------------

    def _character_class(self) -> ast.Node:
        class_start = self.pos
        self._expect("[")
        negated = self._eat("^")
        members = CharSet.empty()
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated character class")
            if ch == "]":
                self.pos += 1
                break
            members = members.union(self._class_ranges())
        source = self.pattern[class_start:self.pos]
        charset = members.complement() if negated else members
        return ast.CharMatch(self._fold(charset), source)

    def _class_ranges(self) -> CharSet:
        first = self._class_atom()
        if self._peek() != "-" or self._peek(1) in ("]", ""):
            return first
        # Try to form a range "a-z".
        dash_pos = self.pos
        self.pos += 1  # consume '-'
        second = self._class_atom()
        lo = _singleton(first)
        hi = _singleton(second)
        if lo is None or hi is None:
            # Annex B: a class escape at either end makes '-' literal.
            self.pos = dash_pos
            return first
        if lo > hi:
            raise self._error("range out of order in character class")
        folded = CharSet.of_range(lo, hi)
        return self._fold(folded) if self.flags.ignore_case else folded

    def _class_atom(self) -> CharSet:
        ch = self._next()
        if ch != "\\":
            return CharSet.of(ch)
        esc = self._peek()
        if not esc:
            raise self._error("trailing backslash in character class")
        if esc in CLASS_ESCAPES:
            self.pos += 1
            return CLASS_ESCAPES[esc]
        if esc == "b":
            self.pos += 1
            return CharSet.of("\x08")
        if esc.isdigit():
            octal = ""
            while (
                len(octal) < 3
                and self._peek() in "01234567"
                and int(octal + self._peek(), 8) <= 0xFF
            ):
                octal += self._next()
            if octal:
                return CharSet.of_range(int(octal, 8), int(octal, 8))
            self.pos += 1
            return CharSet.of(esc)
        cp = self._character_escape()
        return CharSet.of_range(cp, cp)


def _singleton(charset: CharSet) -> int | None:
    """The sole code point of a one-element interval set, else None."""
    if len(charset.intervals) == 1:
        lo, hi = charset.intervals[0]
        if lo == hi:
            return lo
    return None


def _escape_literal(ch: str) -> str:
    if ch in _SYNTAX_CHARS or ch == "/":
        return "\\" + ch
    if ch == "\n":
        return "\\n"
    if ch == "\r":
        return "\\r"
    if ch.isprintable():
        return ch
    return _escape_codepoint(ord(ch))


def _escape_codepoint(cp: int) -> str:
    if cp <= 0xFF:
        ch = chr(cp)
        if ch.isprintable() and ch not in _SYNTAX_CHARS and ch != "/":
            return ch
        if cp == 0x0A:
            return "\\n"
        if cp == 0x0D:
            return "\\r"
        if cp == 0x09:
            return "\\t"
        return f"\\x{cp:02x}"
    if cp <= 0xFFFF:
        return f"\\u{cp:04x}"
    return f"\\u{{{cp:x}}}"


def parse_pattern(pattern: str, flags: Flags | str = NO_FLAGS) -> ast.Pattern:
    """Parse ``pattern`` under ``flags`` into a :class:`~repro.regex.ast.Pattern`.

    ``flags`` may be a :class:`Flags` value or a flag string like ``"gi"``.
    Raises :class:`RegexSyntaxError` on malformed patterns and
    :class:`UnsupportedRegexError` on post-ES6 syntax.
    """
    if isinstance(flags, str):
        flags = Flags.parse(flags)
    return _Parser(pattern, flags).parse()
