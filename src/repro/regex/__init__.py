"""ES6 regular expression front end and concrete matcher.

Public surface:

- :func:`parse_regex` — parse pattern text (+ flags) to an AST.
- :class:`RegExp` — a JavaScript-like regex object with spec-compliant
  ``test``/``exec`` semantics (the concrete oracle of the paper's CEGAR
  loop).
- :mod:`repro.regex.ast` — the AST node types.
"""

from repro.regex.ast import Pattern
from repro.regex.charclass import CharSet
from repro.regex.errors import RegexError, RegexSyntaxError, UnsupportedRegexError
from repro.regex.flags import Flags
from repro.regex.matcher import ExecResult, MatchResult, RegExp, match_at, search
from repro.regex.parser import parse_pattern
from repro.regex.unparse import unparse, unparse_pattern


def parse_regex(source: str, flags: str = "") -> Pattern:
    """Parse ``source`` under a flag string — convenience alias."""
    return parse_pattern(source, Flags.parse(flags))


__all__ = [
    "CharSet",
    "ExecResult",
    "Flags",
    "MatchResult",
    "Pattern",
    "RegExp",
    "RegexError",
    "RegexSyntaxError",
    "UnsupportedRegexError",
    "match_at",
    "parse_pattern",
    "parse_regex",
    "search",
    "unparse",
    "unparse_pattern",
]
