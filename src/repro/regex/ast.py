"""AST for ES6 regular expression patterns.

The parser normalises every single-character matcher (literals, ``.``,
class escapes, bracket classes) to :class:`CharMatch` carrying a
:class:`~repro.regex.charclass.CharSet`, so downstream consumers (matcher,
automata, model translation) share one character semantics.

Nodes are immutable; rewriting (Table 1 of the paper) builds new trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Optional, Tuple

from repro.regex.charclass import CharSet


class Node:
    """Base class for regex AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Empty(Node):
    """The empty word ε (an empty alternative such as in ``(a|)``)."""


@dataclass(frozen=True)
class CharMatch(Node):
    """Matches exactly one character drawn from ``charset``.

    ``source`` preserves the surface syntax (e.g. ``\\d``, ``[a-z]``, ``x``)
    so trees can be unparsed back to equivalent pattern text.
    """

    charset: CharSet
    source: str


@dataclass(frozen=True)
class Concat(Node):
    """Concatenation of two or more terms (ES6 *Alternative*)."""

    parts: Tuple[Node, ...]

    def __post_init__(self) -> None:
        assert len(self.parts) >= 2, "Concat requires at least two parts"


@dataclass(frozen=True)
class Alternation(Node):
    """Ordered alternation ``t1|t2|...`` (ES6 *Disjunction*).

    Order matters for matching precedence: the concrete matcher tries
    options left to right.
    """

    options: Tuple[Node, ...]

    def __post_init__(self) -> None:
        assert len(self.options) >= 2, "Alternation requires at least two options"


@dataclass(frozen=True)
class Quantifier(Node):
    """``child{min,max}`` with greedy or lazy matching precedence.

    ``max is None`` encodes an unbounded upper limit (``*``, ``+``, ``{n,}``).
    """

    child: Node
    min: int
    max: Optional[int]
    lazy: bool = False

    def __post_init__(self) -> None:
        assert self.min >= 0
        assert self.max is None or self.max >= self.min


@dataclass(frozen=True)
class Group(Node):
    """A numbered capture group ``( ... )``; ``index`` counts from 1.

    ``name`` carries the ES2018 group name of ``(?<name> ... )`` groups;
    named groups are ordinary capture groups everywhere downstream (the
    matcher, the model translation and the automata all key on
    ``index``), the name only decorates results (``ExecResult.groups``)
    and the unparser.
    """

    child: Node
    index: int
    name: Optional[str] = None


@dataclass(frozen=True)
class NonCapGroup(Node):
    """A non-capturing group ``(?: ... )``."""

    child: Node


@dataclass(frozen=True)
class Lookahead(Node):
    """``(?= ... )`` or ``(?! ... )`` — a zero-length assertion."""

    child: Node
    negative: bool = False


@dataclass(frozen=True)
class Backreference(Node):
    """``\\k`` — matches the last string captured by group ``index``."""

    index: int


@dataclass(frozen=True)
class Anchor(Node):
    """``^`` (kind='start') or ``$`` (kind='end')."""

    kind: str

    def __post_init__(self) -> None:
        assert self.kind in ("start", "end")


@dataclass(frozen=True)
class WordBoundary(Node):
    """``\\b`` or (negated) ``\\B``."""

    negated: bool = False


@dataclass(frozen=True)
class Pattern:
    """A parsed pattern: the body plus its capture-group count."""

    body: Node
    group_count: int
    source: str = field(default="", compare=False)


# ---------------------------------------------------------------------------
# Tree utilities shared by the matcher, the model and the feature classifier.
# ---------------------------------------------------------------------------


def children(node: Node) -> Tuple[Node, ...]:
    """The direct subterms of ``node`` (empty for leaves)."""
    if isinstance(node, Concat):
        return node.parts
    if isinstance(node, Alternation):
        return node.options
    if isinstance(node, (Quantifier, Group, NonCapGroup, Lookahead)):
        return (node.child,)
    return ()


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of the subtree rooted at ``node``."""
    yield node
    for child in children(node):
        yield from walk(child)


def groups_in(node: Node) -> Tuple[int, ...]:
    """Indices of all capture groups contained in (or equal to) ``node``.

    Used by the matcher to reset captures when a quantifier re-enters its
    body, and by the model to slice capture variables across subterms.
    """
    return tuple(
        sub.index for sub in walk(node) if isinstance(sub, Group)
    )


def named_groups(node: Node) -> dict:
    """``{name: index}`` for every named capture group under ``node``."""
    return {
        sub.name: sub.index
        for sub in walk(node)
        if isinstance(sub, Group) and sub.name is not None
    }


def backrefs_in(node: Node) -> Tuple[int, ...]:
    """Indices referenced by all backreferences within ``node``."""
    return tuple(
        sub.index for sub in walk(node) if isinstance(sub, Backreference)
    )


def contains_captures(node: Node) -> bool:
    return any(isinstance(sub, Group) for sub in walk(node))


def contains_backrefs(node: Node) -> bool:
    return any(isinstance(sub, Backreference) for sub in walk(node))


def contains_lookarounds(node: Node) -> bool:
    return any(
        isinstance(sub, (Lookahead, WordBoundary)) for sub in walk(node)
    )


def contains_anchors(node: Node) -> bool:
    return any(isinstance(sub, Anchor) for sub in walk(node))


def is_purely_regular(node: Node) -> bool:
    """True iff ``node`` denotes a classical regular expression.

    Such subtrees translate directly to automata (the *base case* of
    Table 2): no captures, backreferences, lookarounds, boundaries or
    anchors anywhere below.
    """
    return not any(
        isinstance(
            sub, (Group, Backreference, Lookahead, WordBoundary, Anchor)
        )
        for sub in walk(node)
    )


def concat(parts: Tuple[Node, ...] | list) -> Node:
    """Smart constructor: flatten/normalise a concatenation."""
    flat: list[Node] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        elif isinstance(part, Empty):
            continue
        else:
            flat.append(part)
    if not flat:
        return Empty()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alternation(options: Tuple[Node, ...] | list) -> Node:
    """Smart constructor for alternations (preserves order/duplicates)."""
    opts = tuple(options)
    if len(opts) == 1:
        return opts[0]
    return Alternation(opts)
