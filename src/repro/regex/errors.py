"""Errors raised by the ES6 regex front end."""


class RegexError(Exception):
    """Base class for all regex front-end errors."""


class RegexSyntaxError(RegexError):
    """Raised when a pattern or flag string is not valid ES6 syntax.

    Mirrors JavaScript's ``SyntaxError`` for ``new RegExp(...)``.
    """

    def __init__(self, message: str, pattern: str = "", position: int = -1):
        self.pattern = pattern
        self.position = position
        if position >= 0:
            message = f"{message} (at position {position} in /{pattern}/)"
        super().__init__(message)


class UnsupportedRegexError(RegexError):
    """Raised for syntactically valid constructs outside the ES6 subset.

    ES6 itself has no lookbehind or named groups; those arrived in ES2018.
    We reject them explicitly rather than mis-parsing.
    """
