"""Character sets as sorted disjoint code-point intervals.

Every single-character matcher in the regex AST (literal characters, ``.``,
class escapes like ``\\d``, and bracketed classes) is normalised to a
:class:`CharSet`.  The same representation drives the concrete matcher and
the automata layer, so both agree exactly on character semantics.

Intervals are inclusive ``(lo, hi)`` pairs of code points over the universe
``0 .. MAX_CODEPOINT``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence, Tuple

MAX_CODEPOINT = 0x10FFFF

Interval = Tuple[int, int]


def _normalise(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, clamp and merge overlapping/adjacent intervals."""
    pruned = []
    for lo, hi in intervals:
        lo = max(0, lo)
        hi = min(MAX_CODEPOINT, hi)
        if lo <= hi:
            pruned.append((lo, hi))
    pruned.sort()
    merged: list[Interval] = []
    for lo, hi in pruned:
        if merged and lo <= merged[-1][1] + 1:
            last_lo, last_hi = merged[-1]
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


@dataclass(frozen=True)
class CharSet:
    """An immutable set of Unicode code points stored as intervals."""

    intervals: Tuple[Interval, ...] = ()

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "CharSet":
        return _EMPTY

    @staticmethod
    def any() -> "CharSet":
        return _ANY

    @staticmethod
    def of(chars: str) -> "CharSet":
        return CharSet(_normalise((ord(c), ord(c)) for c in chars))

    @staticmethod
    def of_range(lo: str | int, hi: str | int) -> "CharSet":
        lo_cp = lo if isinstance(lo, int) else ord(lo)
        hi_cp = hi if isinstance(hi, int) else ord(hi)
        return CharSet(_normalise([(lo_cp, hi_cp)]))

    @staticmethod
    def of_intervals(intervals: Iterable[Interval]) -> "CharSet":
        return CharSet(_normalise(intervals))

    # -- queries -----------------------------------------------------------

    def __contains__(self, ch: str | int) -> bool:
        cp = ch if isinstance(ch, int) else ord(ch)
        idx = bisect_right(self._los(), cp) - 1
        if idx < 0:
            return False
        lo, hi = self.intervals[idx]
        return lo <= cp <= hi

    @lru_cache(maxsize=None)
    def _los(self) -> Sequence[int]:
        return [lo for lo, _ in self.intervals]

    def is_empty(self) -> bool:
        return not self.intervals

    def size(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.intervals)

    def min_codepoint(self) -> int:
        if not self.intervals:
            raise ValueError("empty CharSet has no minimum")
        return self.intervals[0][0]

    def codepoints(self, limit: int | None = None) -> Iterator[int]:
        """Yield member code points in increasing order (optionally capped)."""
        emitted = 0
        for lo, hi in self.intervals:
            for cp in range(lo, hi + 1):
                if limit is not None and emitted >= limit:
                    return
                yield cp
                emitted += 1

    def sample_chars(self, limit: int = 8) -> list[str]:
        """A small, deterministic, human-friendly sample of member chars.

        Prefers printable ASCII so that generated words (e.g. DSE inputs)
        are readable; falls back to whatever the set contains.
        """
        preferred: list[str] = []
        for candidates in ("abcxyz", "ABC", "019", " .-_", "\n"):
            for ch in candidates:
                if ch in self and ch not in preferred:
                    preferred.append(ch)
                if len(preferred) >= limit:
                    return preferred
        for cp in self.codepoints(limit=limit * 4):
            ch = chr(cp)
            if ch not in preferred:
                preferred.append(ch)
            if len(preferred) >= limit:
                break
        return preferred

    # -- algebra -----------------------------------------------------------

    def union(self, other: "CharSet") -> "CharSet":
        return CharSet(_normalise(self.intervals + other.intervals))

    def complement(self) -> "CharSet":
        result: list[Interval] = []
        prev = 0
        for lo, hi in self.intervals:
            if lo > prev:
                result.append((prev, lo - 1))
            prev = hi + 1
        if prev <= MAX_CODEPOINT:
            result.append((prev, MAX_CODEPOINT))
        return CharSet(tuple(result))

    def intersect(self, other: "CharSet") -> "CharSet":
        result: list[Interval] = []
        i = j = 0
        a, b = self.intervals, other.intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                result.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return CharSet(tuple(result))

    def difference(self, other: "CharSet") -> "CharSet":
        return self.intersect(other.complement())

    def overlaps(self, other: "CharSet") -> bool:
        return not self.intersect(other).is_empty()

    # -- case folding ------------------------------------------------------

    def case_closure(self) -> "CharSet":
        """Close the set under simple upper/lower case pairing.

        This implements the effect of the ES6 ``i`` flag's Canonicalize()
        for the practically relevant (BMP, simple-folding) cases: every
        character whose ``str.upper()``/``str.lower()`` single-character
        variants exist gets those variants added.  Very large intervals are
        closed via the ASCII/Latin-1 letters they contain plus a scan of
        the interval capped at a few thousand code points (larger intervals
        already cover both cases of nearly everything they fold to).
        """
        extra: list[Interval] = []
        for lo, hi in self.intervals:
            span = hi - lo + 1
            scan_hi = hi if span <= 4096 else lo + 4095
            for cp in range(lo, scan_hi + 1):
                ch = chr(cp)
                for variant in (ch.upper(), ch.lower()):
                    if len(variant) == 1 and variant != ch:
                        vcp = ord(variant)
                        if vcp <= MAX_CODEPOINT:
                            extra.append((vcp, vcp))
        if not extra:
            return self
        return CharSet(_normalise(self.intervals + tuple(extra)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        def show(cp: int) -> str:
            ch = chr(cp)
            return ch if ch.isprintable() and ch not in "[]-^\\" else f"\\u{cp:04x}"

        parts = [
            show(lo) if lo == hi else f"{show(lo)}-{show(hi)}"
            for lo, hi in self.intervals[:16]
        ]
        suffix = ", ..." if len(self.intervals) > 16 else ""
        return f"CharSet[{', '.join(parts)}{suffix}]"


def partition(sets: Sequence[CharSet]) -> list[CharSet]:
    """Partition the universe into minterms distinguishing the given sets.

    Returns the non-empty equivalence classes of "belongs to exactly this
    subset of ``sets``"; used by the subset construction so DFA transitions
    range over a small finite alphabet of intervals instead of 0x110000
    code points.  Only classes that intersect at least one input set are
    returned, plus one class for the leftover universe (if non-empty).
    """
    boundaries: set[int] = {0, MAX_CODEPOINT + 1}
    for cs in sets:
        for lo, hi in cs.intervals:
            boundaries.add(lo)
            boundaries.add(hi + 1)
    points = sorted(boundaries)
    classes: list[CharSet] = []
    for start, end in zip(points, points[1:]):
        classes.append(CharSet(((start, end - 1),)))
    return classes


# -- predefined sets -------------------------------------------------------

_EMPTY = CharSet(())
_ANY = CharSet(((0, MAX_CODEPOINT),))

#: ES6 LineTerminator: LF, CR, LS, PS.
LINE_TERMINATORS = CharSet.of_intervals(
    [(0x0A, 0x0A), (0x0D, 0x0D), (0x2028, 0x2029)]
)

#: ``.`` — everything except line terminators.
DOT = LINE_TERMINATORS.complement()

#: ``\d`` / ``\D``
DIGIT = CharSet.of_range("0", "9")
NOT_DIGIT = DIGIT.complement()

#: ``\w`` / ``\W`` — ASCII word characters, per the ES6 spec.
WORD = CharSet.of_intervals(
    [(ord("a"), ord("z")), (ord("A"), ord("Z")), (ord("0"), ord("9")),
     (ord("_"), ord("_"))]
)
NOT_WORD = WORD.complement()

#: ``\s`` / ``\S`` — WhiteSpace ∪ LineTerminator, per the ES6 spec.
SPACE = CharSet.of_intervals(
    [(0x09, 0x0D), (0x20, 0x20), (0xA0, 0xA0), (0x1680, 0x1680),
     (0x2000, 0x200A), (0x2028, 0x2029), (0x202F, 0x202F),
     (0x205F, 0x205F), (0x3000, 0x3000), (0xFEFF, 0xFEFF), (0x0B, 0x0C)]
)
NOT_SPACE = SPACE.complement()

CLASS_ESCAPES = {
    "d": DIGIT,
    "D": NOT_DIGIT,
    "w": WORD,
    "W": NOT_WORD,
    "s": SPACE,
    "S": NOT_SPACE,
}


def is_word_char(ch: str) -> bool:
    """ES6 IsWordChar — used by ``\\b`` and ``\\B``."""
    return ch in WORD
