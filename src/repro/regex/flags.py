"""ES6 RegExp flags (``g``, ``i``, ``m``, ``u``, ``y``)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.regex.errors import RegexSyntaxError

_FLAG_FIELDS = {
    "g": "global_",
    "i": "ignore_case",
    "m": "multiline",
    "u": "unicode",
    "y": "sticky",
}


@dataclass(frozen=True)
class Flags:
    """Parsed flag set for a regex.

    ``global_`` carries a trailing underscore because ``global`` is a Python
    keyword; the ES6 name is ``global``.
    """

    global_: bool = False
    ignore_case: bool = False
    multiline: bool = False
    unicode: bool = False
    sticky: bool = False

    @staticmethod
    def parse(flag_string: str) -> "Flags":
        """Parse a flag string, rejecting duplicates and unknown letters.

        Mirrors the ES6 ``RegExpInitialize`` abstract operation, which throws
        a ``SyntaxError`` in both cases.
        """
        seen: set[str] = set()
        values = {field: False for field in _FLAG_FIELDS.values()}
        for ch in flag_string:
            if ch not in _FLAG_FIELDS:
                raise RegexSyntaxError(f"invalid regular expression flag {ch!r}")
            if ch in seen:
                raise RegexSyntaxError(f"duplicate regular expression flag {ch!r}")
            seen.add(ch)
            values[_FLAG_FIELDS[ch]] = True
        return Flags(**values)

    def __str__(self) -> str:
        return "".join(
            letter for letter, field in _FLAG_FIELDS.items() if getattr(self, field)
        )


NO_FLAGS = Flags()
