"""ES6-compliant backtracking regex matcher.

Implements the continuation-passing matching semantics of ECMA-262 §21.2.2
directly over the AST: greedy/lazy matching precedence, capture-group
recording and clearing on quantifier re-entry, backreferences (with the
undefined-capture rule), lookaheads (captures persist from positive
lookaheads), word boundaries and multiline anchors.

This matcher plays the role Node.js's engine plays in the paper: the
*concrete oracle* that Algorithm 1 (CEGAR) uses to validate candidate
capture assignments, and the concrete semantics executed by the DSE
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.regex import ast
from repro.regex.charclass import LINE_TERMINATORS, is_word_char
from repro.regex.flags import Flags, NO_FLAGS
from repro.regex.parser import parse_pattern

Span = Tuple[int, int]
Captures = Tuple[Optional[Span], ...]
Continuation = Callable[[int, Captures], Optional["MatchState"]]


@dataclass(frozen=True)
class MatchState:
    """A successful match endpoint: final position plus capture spans."""

    end: int
    captures: Captures


@dataclass(frozen=True)
class MatchResult:
    """The result of matching a pattern at some index of an input string.

    ``captures[i]`` is the substring captured by group ``i`` (group 0 being
    the whole match) or ``None`` when the group is undefined — the paper's
    ``⊥``, which JavaScript reports as ``undefined``.
    """

    input: str
    index: int
    end: int
    spans: Tuple[Optional[Span], ...]

    @property
    def captures(self) -> Tuple[Optional[str], ...]:
        return tuple(
            None if span is None else self.input[span[0]:span[1]]
            for span in self.spans
        )

    def group(self, i: int) -> Optional[str]:
        return self.captures[i]

    def __getitem__(self, i: int) -> Optional[str]:
        return self.captures[i]

    def __len__(self) -> int:
        return len(self.spans)


def _canonical(ch: str) -> str:
    """ES6 Canonicalize for the ``i`` flag (simple upper-case folding)."""
    up = ch.upper()
    return up if len(up) == 1 else ch


class _Matcher:
    """Matches one parsed pattern against one input string."""

    def __init__(self, pattern: ast.Pattern, flags: Flags, subject: str):
        self.pattern = pattern
        self.flags = flags
        self.subject = subject
        self.length = len(subject)

    # -- entry point ---------------------------------------------------------

    def match_at(self, start: int) -> Optional[MatchResult]:
        empty_caps: Captures = (None,) * self.pattern.group_count

        def accept(pos: int, caps: Captures) -> Optional[MatchState]:
            return MatchState(pos, caps)

        state = self._match(self.pattern.body, start, empty_caps, accept)
        if state is None:
            return None
        spans: Tuple[Optional[Span], ...] = ((start, state.end),) + state.captures
        return MatchResult(self.subject, start, state.end, spans)

    # -- node dispatch -------------------------------------------------------

    def _match(
        self,
        node: ast.Node,
        pos: int,
        caps: Captures,
        k: Continuation,
    ) -> Optional[MatchState]:
        method = self._DISPATCH[type(node)]
        return method(self, node, pos, caps, k)

    def _match_empty(self, node, pos, caps, k):
        return k(pos, caps)

    def _match_char(self, node: ast.CharMatch, pos, caps, k):
        if pos >= self.length:
            return None
        ch = self.subject[pos]
        if ch in node.charset:
            return k(pos + 1, caps)
        if self.flags.ignore_case and _canonical(ch) in node.charset:
            return k(pos + 1, caps)
        return None

    def _match_concat(self, node: ast.Concat, pos, caps, k):
        def chain(index: int, pos2: int, caps2: Captures):
            if index == len(node.parts):
                return k(pos2, caps2)
            return self._match(
                node.parts[index],
                pos2,
                caps2,
                lambda p, c: chain(index + 1, p, c),
            )

        return chain(0, pos, caps)

    def _match_alternation(self, node: ast.Alternation, pos, caps, k):
        for option in node.options:
            state = self._match(option, pos, caps, k)
            if state is not None:
                return state
        return None

    def _match_quantifier(self, node: ast.Quantifier, pos, caps, k):
        inner_groups = ast.groups_in(node.child)

        def clear(caps2: Captures) -> Captures:
            cleared = list(caps2)
            for gi in inner_groups:
                cleared[gi - 1] = None
            return tuple(cleared)

        def repeat(pos2: int, caps2: Captures, count: int):
            def continue_iteration(pos3: int, caps3: Captures):
                # RepeatMatcher's empty-match guard: once the mandatory
                # iterations are done, an iteration that consumed nothing
                # must fail (else ``(a?)*`` would loop forever).
                if pos3 == pos2 and count >= node.min:
                    return None
                return repeat(pos3, caps3, count + 1)

            may_repeat = node.max is None or count < node.max
            if node.lazy:
                if count >= node.min:
                    state = k(pos2, caps2)
                    if state is not None:
                        return state
                if may_repeat:
                    return self._match(
                        node.child, pos2, clear(caps2), continue_iteration
                    )
                return None
            if may_repeat:
                state = self._match(
                    node.child, pos2, clear(caps2), continue_iteration
                )
                if state is not None:
                    return state
            if count >= node.min:
                return k(pos2, caps2)
            return None

        return repeat(pos, caps, 0)

    def _match_group(self, node: ast.Group, pos, caps, k):
        def record(pos2: int, caps2: Captures):
            updated = list(caps2)
            updated[node.index - 1] = (pos, pos2)
            return k(pos2, tuple(updated))

        return self._match(node.child, pos, caps, record)

    def _match_noncap(self, node: ast.NonCapGroup, pos, caps, k):
        return self._match(node.child, pos, caps, k)

    def _match_lookahead(self, node: ast.Lookahead, pos, caps, k):
        probe = self._match(
            node.child, pos, caps, lambda p, c: MatchState(p, c)
        )
        if node.negative:
            if probe is not None:
                return None
            # Captures set inside a failed/negative lookahead are discarded.
            return k(pos, caps)
        if probe is None:
            return None
        # Captures from a successful lookahead persist (spec step 21.2.2.8.2
        # resumes with the lookahead's capture state but the outer position).
        return k(pos, probe.captures)

    def _match_backref(self, node: ast.Backreference, pos, caps, k):
        span = caps[node.index - 1]
        if span is None:
            return k(pos, caps)  # undefined capture matches the empty string
        text = self.subject[span[0]:span[1]]
        end = pos + len(text)
        if end > self.length:
            return None
        window = self.subject[pos:end]
        if window == text:
            return k(end, caps)
        if self.flags.ignore_case and (
            "".join(map(_canonical, window)) == "".join(map(_canonical, text))
        ):
            return k(end, caps)
        return None

    def _match_anchor(self, node: ast.Anchor, pos, caps, k):
        if node.kind == "start":
            at_anchor = pos == 0 or (
                self.flags.multiline and self.subject[pos - 1] in LINE_TERMINATORS
            )
        else:
            at_anchor = pos == self.length or (
                self.flags.multiline and self.subject[pos] in LINE_TERMINATORS
            )
        return k(pos, caps) if at_anchor else None

    def _match_boundary(self, node: ast.WordBoundary, pos, caps, k):
        before = pos > 0 and is_word_char(self.subject[pos - 1])
        after = pos < self.length and is_word_char(self.subject[pos])
        at_boundary = before != after
        if at_boundary != node.negated:
            return k(pos, caps)
        return None

    _DISPATCH = {
        ast.Empty: _match_empty,
        ast.CharMatch: _match_char,
        ast.Concat: _match_concat,
        ast.Alternation: _match_alternation,
        ast.Quantifier: _match_quantifier,
        ast.Group: _match_group,
        ast.NonCapGroup: _match_noncap,
        ast.Lookahead: _match_lookahead,
        ast.Backreference: _match_backref,
        ast.Anchor: _match_anchor,
        ast.WordBoundary: _match_boundary,
    }


def match_at(
    pattern: ast.Pattern, subject: str, index: int, flags: Flags = NO_FLAGS
) -> Optional[MatchResult]:
    """Match ``pattern`` against ``subject`` anchored at ``index``."""
    if index < 0 or index > len(subject):
        return None
    return _Matcher(pattern, flags, subject).match_at(index)


def search(
    pattern: ast.Pattern,
    subject: str,
    start: int = 0,
    flags: Flags = NO_FLAGS,
) -> Optional[MatchResult]:
    """First match at or after ``start`` (the implicit-wildcard behaviour)."""
    matcher = _Matcher(pattern, flags, subject)
    for index in range(max(start, 0), len(subject) + 1):
        result = matcher.match_at(index)
        if result is not None:
            return result
    return None


class ExecResult(list):
    """The array-like value ``RegExp.exec`` returns in JavaScript.

    Indexing yields capture strings (``None`` for undefined groups, i.e.
    JavaScript ``undefined``); ``index`` and ``input`` mirror the JS
    properties of the match array.  ``groups`` mirrors the ES2018
    property: ``None`` when the pattern has no named groups, else a
    ``{name: capture}`` dict (undefined captures are ``None``).
    """

    def __init__(
        self,
        match: MatchResult,
        group_names: Optional[dict] = None,
    ):
        super().__init__(match.captures)
        self.index = match.index
        self.input = match.input
        self.end = match.end
        self.groups: Optional[dict] = None
        if group_names:
            captures = match.captures
            self.groups = {
                name: captures[index]
                for name, index in group_names.items()
            }


class RegExp:
    """A JavaScript-like ``RegExp`` object backed by the concrete matcher.

    Supports the ES6 surface: ``test``/``exec`` with ``lastIndex``
    statefulness for the ``g`` and ``y`` flags.
    """

    def __init__(self, source: str, flags: str | Flags = ""):
        self.source = source
        self.flags = flags if isinstance(flags, Flags) else Flags.parse(flags)
        self.pattern = parse_pattern(source, self.flags)
        self.group_names = ast.named_groups(self.pattern.body)
        self.last_index = 0

    @property
    def group_count(self) -> int:
        return self.pattern.group_count

    def exec(self, subject: str) -> Optional[ExecResult]:
        subject = str(subject)
        start = self.last_index if (
            self.flags.global_ or self.flags.sticky
        ) else 0
        if start > len(subject):
            self.last_index = 0
            return None
        if self.flags.sticky:
            match = match_at(self.pattern, subject, start, self.flags)
        else:
            match = search(self.pattern, subject, start, self.flags)
        if match is None:
            self.last_index = 0
            return None
        if self.flags.global_ or self.flags.sticky:
            self.last_index = match.end
        return ExecResult(match, self.group_names)

    def test(self, subject: str) -> bool:
        return self.exec(subject) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"/{self.source}/{self.flags}"
