"""The Table 7 component breakdown (§7.3).

Runs a population of generated mini-JS packages at the four regex
support levels — concrete, +model, +captures & backreferences,
+refinement — and reports, per level, how many packages improved over
the previous level, the geometric mean coverage increase, and the test
execution rate; plus the solver statistics that feed Table 8.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dse import RegexSupportLevel, analyze
from repro.eval.packages import TABLE6_PACKAGES

#: The level ladder in Table 7's row order.
LEVELS: List[Tuple[str, RegexSupportLevel]] = [
    ("Concrete Regular Expressions", RegexSupportLevel.CONCRETE),
    ("+ Modeling RegEx", RegexSupportLevel.MODEL),
    ("+ Captures & Backreferences", RegexSupportLevel.CAPTURES),
    ("+ Refinement", RegexSupportLevel.REFINED),
]

# Building blocks for generated DSE packages: (regex, needs-exec) chosen
# to stay within comfortable solver budgets while exercising captures,
# alternation, anchors, boundaries and backreferences.
_GUARD_REGEXES = [
    r"^\d+$", r"^[a-z]+$", r"^-", r"=$", r"\bok\b", r"^yes|^no",
    r"^[A-Z]", r"\.txt$", r"^.{3}$",
]
_EXEC_REGEXES = [
    (r"^(\w+)=(\w*)$", 2),
    (r"^(\d+)px$", 1),
    (r"^([a-z]+):(\d+)$", 2),
    (r"<(\w+)>([^<]*)<\/\1>", 2),
    (r"^(a+)(b*)$", 2),
    (r"^#([0-9a-f]{2})([0-9a-f]{2})$", 2),
    (r"^(\w+)\s\1$", 1),
    # Unanchored / ambiguous patterns: the raw model can place the match
    # or split captures in precedence-infeasible ways, so these rows are
    # where the CEGAR level genuinely earns coverage (§3.4, §7.3).
    (r"(\d+)", 1),
    (r"([a-z]+)", 1),
    (r"(a*)(a*)$", 2),
]
_CONSTANTS = ["timeout", "x", "on", "key", "a", "42", "id", "0", ""]


@dataclass
class PackageRun:
    name: str
    coverage: Dict[str, float] = field(default_factory=dict)
    tests_per_minute: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)


@dataclass
class Table7Row:
    label: str
    improved: int
    improved_percent: float
    coverage_gain_percent: float
    tests_per_minute: float


def generate_dse_package(rng: random.Random, index: int) -> str:
    """One synthetic regex-using library program (a §7.3 test subject)."""
    if rng.random() < 0.2:
        return _refinement_sensitive_package(rng, index)
    lines: List[str] = [
        f'var input = symbol("input{index}", "seed");',
    ]
    n_guards = rng.randint(1, 2)
    for g in range(n_guards):
        regex = rng.choice(_GUARD_REGEXES)
        lines.append(f"if (/{regex}/.test(input)) {{")
        lines.append(f"    var hit{g} = {g};")
        lines.append("} else {")
        lines.append(f"    var miss{g} = {g};")
        lines.append("}")
    regex, n_caps = rng.choice(_EXEC_REGEXES)
    lines.append(f"var m = /{regex}/.exec(input);")
    lines.append("if (m) {")
    for c in range(1, n_caps + 1):
        constant = rng.choice(_CONSTANTS)
        lines.append(f'    if (m[{c}] === "{constant}") {{')
        lines.append(f"        var matched{c} = {c};")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _refinement_sensitive_package(rng: random.Random, index: int) -> str:
    """A package whose deepest branch needs Algorithm 1.

    The negative branch of a backreference regex over a *derived* string
    (``s + s``) exploits §4.4's overapproximation: the raw model happily
    proposes doubled words as non-members, and only the CEGAR loop's
    non-membership refinement (lines 18/22) steers the solver to an input
    whose doubling genuinely fails to match.
    """
    backref_regex = rng.choice([r"(\w)\1", r"([a-z])\1", r"(.)\1"])
    return (
        f'var s = symbol("input{index}", "a");\n'
        'if (s !== "") {\n'
        "    var t = s + s;\n"
        f"    if (/{backref_regex}/.test(t)) {{\n"
        "        var doubled = 1;\n"
        "    } else {\n"
        "        var nondoubled = 2;\n"
        "    }\n"
        "}\n"
    )


def generate_population(
    n_packages: int = 40, seed: int = 1909
) -> List[Tuple[str, str]]:
    """(name, source) pairs: generated packages plus the Table 6 suite."""
    rng = random.Random(seed)
    population = [
        (f"gen-{i:03d}", generate_dse_package(rng, i))
        for i in range(max(0, n_packages - len(TABLE6_PACKAGES)))
    ]
    population.extend(
        (pkg.name, pkg.source) for pkg in TABLE6_PACKAGES
    )
    return population[:n_packages]


def run_breakdown(
    population: Sequence[Tuple[str, str]],
    max_tests: int = 20,
    time_budget: float = 10.0,
) -> Tuple[List[Table7Row], List[PackageRun]]:
    """Run every package at every support level; build Table 7 rows."""
    runs: List[PackageRun] = []
    for name, source in population:
        run = PackageRun(name)
        for label, level in LEVELS:
            result = analyze(
                source,
                level=level,
                max_tests=max_tests,
                time_budget=time_budget,
            )
            run.coverage[label] = result.coverage
            run.tests_per_minute[label] = result.tests_per_minute
            run.stats[label] = result.stats
        runs.append(run)

    rows: List[Table7Row] = []
    for i, (label, _) in enumerate(LEVELS):
        if i == 0:
            rows.append(
                Table7Row(
                    label,
                    improved=0,
                    improved_percent=0.0,
                    coverage_gain_percent=0.0,
                    tests_per_minute=_mean(
                        [r.tests_per_minute[label] for r in runs]
                    ),
                )
            )
            continue
        previous_label = LEVELS[i - 1][0]
        improved = [
            r
            for r in runs
            if r.coverage[label] > r.coverage[previous_label] + 1e-9
        ]
        gains = [
            r.coverage[label] / r.coverage[previous_label]
            for r in runs
            if r.coverage[previous_label] > 0
        ]
        rows.append(
            Table7Row(
                label,
                improved=len(improved),
                improved_percent=100.0 * len(improved) / len(runs),
                coverage_gain_percent=100.0 * (_geomean(gains) - 1.0),
                tests_per_minute=_mean(
                    [r.tests_per_minute[label] for r in runs]
                ),
            )
        )
    return rows, runs


def full_vs_concrete(runs: Sequence[PackageRun]) -> Table7Row:
    """The paper's final Table 7 row: all features vs. the baseline."""
    first, last = LEVELS[0][0], LEVELS[-1][0]
    improved = [
        r for r in runs if r.coverage[last] > r.coverage[first] + 1e-9
    ]
    gains = [
        r.coverage[last] / r.coverage[first]
        for r in runs
        if r.coverage[first] > 0
    ]
    return Table7Row(
        "All Features vs Concrete",
        improved=len(improved),
        improved_percent=100.0 * len(improved) / len(runs) if runs else 0.0,
        coverage_gain_percent=100.0 * (_geomean(gains) - 1.0),
        tests_per_minute=0.0,
    )


def format_table7(rows: Sequence[Table7Row], total: Table7Row) -> str:
    lines = [
        "Regex Support Level                #     %     Cov+(%)   Tests/min",
    ]
    for row in rows:
        lines.append(
            f"{row.label:<32} {row.improved:>4} {row.improved_percent:>5.1f}% "
            f"{row.coverage_gain_percent:>8.2f} {row.tests_per_minute:>10.1f}"
        )
    lines.append(
        f"{total.label:<32} {total.improved:>4} "
        f"{total.improved_percent:>5.1f}% "
        f"{total.coverage_gain_percent:>8.2f}"
    )
    return "\n".join(lines)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _geomean(ratios: Sequence[float]) -> float:
    positive = [r for r in ratios if r > 0]
    if not positive:
        return 1.0
    return math.exp(sum(math.log(r) for r in positive) / len(positive))
