"""Ablation: the refinement limit (§7.4's closing observation).

The paper concludes that "even refinement limits of five or fewer are
feasible".  This harness sweeps the limit on a bank of refinement-heavy
queries — matching-precedence traps like ``/^a*(a)?$/`` with pinned
captures — and reports, per limit, how many queries get a validated
answer and how long they take.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.constraints import Eq, StrConst, StrVar, conj
from repro.model.api import SymbolicRegExp
from repro.model.cegar import CegarSolver
from repro.solver import SAT, Solver

#: (regex, flags, extra pin) — each needs at least one refinement because
#: the raw model admits a precedence-infeasible capture assignment.
REFINEMENT_BANK: List[Tuple[str, str, str]] = [
    (r"^a*(a)?$", "", "aa"),
    (r"^(a*)(a*)$", "", "aa"),
    (r"(a+)(a*)b", "", "aab"),
    (r"^(x*)(x?)$", "", "xx"),
    (r"^(\d*)(\d?)$", "", "12"),
    (r"(b*)(b*)", "", "bb"),
]


@dataclass
class AblationPoint:
    limit: int
    solved: int
    unknown: int
    total_refinements: int
    seconds: float


def run_refinement_ablation(
    limits: Sequence[int] = (0, 1, 2, 5, 10, 20),
    bank: Sequence[Tuple[str, str, str]] = tuple(REFINEMENT_BANK),
) -> List[AblationPoint]:
    points: List[AblationPoint] = []
    for limit in limits:
        solved = unknown = refinements = 0
        start = time.perf_counter()
        for source, flags, word in bank:
            regexp = SymbolicRegExp(source, flags)
            inp = StrVar("inp")
            model = regexp.exec_model(inp)
            problem = conj(
                [model.match_formula, Eq(inp, StrConst(word))]
            )
            result = CegarSolver(
                solver=Solver(timeout=5.0), refinement_limit=limit
            ).solve(problem, [model.constraint])
            refinements += result.refinements
            if result.status == SAT:
                solved += 1
            else:
                unknown += 1
        points.append(
            AblationPoint(
                limit=limit,
                solved=solved,
                unknown=unknown,
                total_refinements=refinements,
                seconds=time.perf_counter() - start,
            )
        )
    return points


def format_ablation(points: Sequence[AblationPoint]) -> str:
    lines = ["Limit   Solved   Unknown   Refinements   Time(s)"]
    for p in points:
        lines.append(
            f"{p.limit:>5} {p.solved:>8} {p.unknown:>9} "
            f"{p.total_refinements:>13} {p.seconds:>9.2f}"
        )
    return "\n".join(lines)


# -- solver budget ablation ----------------------------------------------------


@dataclass
class BudgetPoint:
    label: str
    solved: int
    total: int
    seconds: float


#: Mixed query bank: memberships, captures, backrefs, anchors.
BUDGET_BANK: List[Tuple[str, str]] = [
    (r"^(a+)(b+)$", ""),
    (r"<(\w+)>([0-9]*)<\/\1>", ""),
    (r"^v?(\d+)\.(\d+)\.(\d+)$", ""),
    (r"\bcat\b", ""),
    (r"(?:a|(b))\1x", ""),
    (r"^(?:y|yes|true)$", "i"),
    (r"(\w+)@(\w+)", ""),
    (r"^a*(a)?$", ""),
]

#: (label, round_limits, combo_budget) configurations swept.
BUDGET_CONFIGS = [
    ("tiny", (2,), 50),
    ("small", (6, 20), 2_000),
    ("default", (12, 80, 600), 60_000),
    ("large", (24, 160, 1200), 240_000),
]


def run_budget_ablation(
    configs=tuple(BUDGET_CONFIGS),
    bank: Sequence[Tuple[str, str]] = tuple(BUDGET_BANK),
) -> List[BudgetPoint]:
    """Sweep solver budgets over a mixed query bank: how much search does
    the model fragment actually need?  (Design-choice data for the
    round_limits defaults; not a paper table.)"""
    from repro.constraints import StrVar
    from repro.model.api import SymbolicRegExp

    points: List[BudgetPoint] = []
    for label, rounds, combos in configs:
        solved = 0
        start = time.perf_counter()
        for source, flags in bank:
            regexp = SymbolicRegExp(source, flags)
            model = regexp.exec_model(StrVar("inp"))
            result = CegarSolver(
                solver=Solver(
                    round_limits=rounds, combo_budget=combos, timeout=5.0
                )
            ).solve(model.match_formula, [model.constraint])
            if result.status == SAT:
                solved += 1
        points.append(
            BudgetPoint(
                label, solved, len(bank), time.perf_counter() - start
            )
        )
    return points


def format_budget_ablation(points: Sequence[BudgetPoint]) -> str:
    lines = ["Budget     Solved     Time(s)"]
    for p in points:
        lines.append(
            f"{p.label:<10} {p.solved:>3}/{p.total:<3} {p.seconds:>9.2f}"
        )
    return "\n".join(lines)
