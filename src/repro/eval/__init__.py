"""Experiment harnesses regenerating the paper's Tables 4–8 (+ablations)."""

from repro.eval.ablation import (
    AblationPoint,
    REFINEMENT_BANK,
    format_ablation,
    run_refinement_ablation,
)
from repro.eval.breakdown import (
    LEVELS,
    PackageRun,
    Table7Row,
    format_table7,
    full_vs_concrete,
    generate_dse_package,
    generate_population,
    run_breakdown,
)
from repro.eval.packages import BenchPackage, TABLE6_PACKAGES, package_by_name
from repro.eval.tables import (
    Table6Row,
    Table8Summary,
    format_table6,
    format_table8,
    run_table6,
    summarize_solver_stats,
)

__all__ = [
    "AblationPoint",
    "BenchPackage",
    "LEVELS",
    "PackageRun",
    "REFINEMENT_BANK",
    "TABLE6_PACKAGES",
    "Table6Row",
    "Table7Row",
    "Table8Summary",
    "format_ablation",
    "format_table6",
    "format_table7",
    "format_table8",
    "full_vs_concrete",
    "generate_dse_package",
    "generate_population",
    "package_by_name",
    "run_breakdown",
    "run_refinement_ablation",
    "run_table6",
    "summarize_solver_stats",
]
