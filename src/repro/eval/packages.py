"""The Table 6 library suite.

Eleven mini-JS libraries, one per row of the paper's Table 6, each
capturing the regex-processing essence of the real NPM package (semver's
version parsing, minimist's flag parsing, yn's yes/no detection, ...).
Each program drives itself with symbolic inputs (the equivalent of the
paper's automated harness) and contains capture-dependent branching so
the support levels separate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BenchPackage:
    """One benchmark library: name, paper row, mini-JS source."""

    name: str
    weekly_downloads: str
    source: str


SEMVER = BenchPackage(
    "semver",
    "1,800k",
    r"""
var v = symbol("version", "1.2.3");
var m = /^v?(\d+)\.(\d+)\.(\d+)(?:-([0-9A-Za-z-]+))?$/.exec(v);
var valid = false;
var major = "";
if (m) {
    valid = true;
    major = m[1];
    if (m[4]) {
        if (m[4] === "alpha") {
            valid = true;
        } else {
            if (m[4] === "beta") { valid = true; }
        }
    }
    if (major === "0") {
        assert(m[2] !== undefined, "minor required");
    }
}
var range = symbol("range", "^1.0.0");
var rm = /^([\^~]?)(\d+)\.(\d+)\.(\d+)$/.exec(range);
if (rm) {
    if (rm[1] === "^") { 1; } else { if (rm[1] === "~") { 2; } else { 3; } }
}
""",
)

MINIMIST = BenchPackage(
    "minimist",
    "20,000k",
    r"""
var arg = symbol("arg", "--x");
var flags = {};
var m = /^--(\w+)=(\w*)$/.exec(arg);
if (m) {
    flags[m[1]] = m[2];
    if (m[1] === "verbose") { 1; }
    if (m[2] === "") { 2; }
} else {
    var s = /^-(\w)$/.exec(arg);
    if (s) {
        flags[s[1]] = true;
    } else {
        if (/^--no-(\w+)$/.test(arg)) { 3; }
    }
}
""",
)

VALIDATOR = BenchPackage(
    "validator",
    "1,400k",
    r"""
var s = symbol("input", "x");
var isEmail = /^(\w+)@(\w+)\.([a-z]{2,3})$/.test(s);
var isInt = /^-?\d+$/.test(s);
var isHex = /^[0-9a-fA-F]+$/.test(s);
var isSlug = /^[a-z0-9]+(?:-[a-z0-9]+)*$/.test(s);
if (isEmail) { assert(!isInt, "email is not an int"); }
if (isInt) { if (isHex) { 1; } }
if (isSlug) { if (isHex) { 2; } }
""",
)

URL_PARSE = BenchPackage(
    "url-parse",
    "1,400k",
    r"""
var url = symbol("url", "x");
var m = /^(?:([a-z]+):\/\/)?([\w.-]+)(?::(\d+))?(\/[^?#]*)?$/.exec(url);
if (m) {
    var protocol = m[1];
    var host = m[2];
    var port = m[3];
    if (protocol === "https") { 1; } else {
        if (protocol === "http") { 2; }
    }
    if (port) {
        if (port === "80") { 3; }
        assert(/^\d+$/.test(port) === true, "port numeric");
    }
    if (host === "localhost") { 4; }
}
""",
)

QUERY_STRING = BenchPackage(
    "query-string",
    "3,000k",
    r"""
var qs = symbol("qs", "a=b");
var m = /^(\w+)=(\w*)$/.exec(qs);
if (m) {
    if (m[1] === "q") { 1; }
    if (m[2] === "") { 2; } else { 3; }
} else {
    if (/^(\w+)$/.test(qs)) { 4; }
}
""",
)

YN = BenchPackage(
    "yn",
    "700k",
    r"""
var v = symbol("value", "x");
var yes = /^(?:y|yes|true|1|on)$/i.test(v);
var no = /^(?:n|no|false|0|off)$/i.test(v);
if (yes) {
    assert(!no, "cannot be both");
    1;
} else {
    if (no) { 2; } else { 3; }
}
""",
)

MOMENT = BenchPackage(
    "moment",
    "4,500k",
    r"""
var d = symbol("date", "x");
var iso = /^(\d{4})-(\d{2})-(\d{2})$/.exec(d);
if (iso) {
    if (iso[2] === "00") { assert(false, "invalid month"); }
    if (iso[1] === "2020") { 1; }
} else {
    var time = /^(\d{2}):(\d{2})$/.exec(d);
    if (time) {
        if (time[1] === "24") { 2; }
    }
}
""",
)

XML = BenchPackage(
    "xml",
    "500k",
    r"""
var doc = symbol("doc", "x");
var m = /<(\w+)>([^<]*)<\/\1>/.exec(doc);
if (m) {
    var tag = m[1];
    var body = m[2];
    if (tag === "id") {
        assert(/^[0-9]*$/.test(body) === true, "id numeric");
        1;
    }
    if (body === "") { 2; }
}
""",
)

FAST_XML_PARSER = BenchPackage(
    "fast-xml-parser",
    "20k",
    r"""
var xml = symbol("xml", "x");
var attr = /<(\w+)\s+(\w+)="(\w*)"\s*\/>/.exec(xml);
if (attr) {
    if (attr[2] === "id") { 1; }
    if (attr[3] === "") { 2; }
} else {
    if (/<!--/.test(xml)) { 3; } else {
        if (/^\s*</.test(xml)) { 4; }
    }
}
""",
)

JS_YAML = BenchPackage(
    "js-yaml",
    "8,000k",
    r"""
var line = symbol("line", "x");
var kv = /^(\w+):\s*(\w*)$/.exec(line);
if (kv) {
    if (kv[2] === "true") { 1; } else {
        if (kv[2] === "null") { 2; } else {
            if (/^\d+$/.test(kv[2])) { 3; } else { 4; }
        }
    }
} else {
    if (/^\s*#/.test(line)) { 5; }
    if (/^\s*-\s/.test(line)) { 6; }
}
""",
)

BABEL_ESLINT = BenchPackage(
    "babel-eslint",
    "2,500k",
    r"""
var tok = symbol("token", "x");
var ident = /^[A-Za-z_$][A-Za-z0-9_$]*$/.test(tok);
var num = /^(\d+)(?:\.(\d+))?$/.exec(tok);
var str = /^"([^"]*)"$/.exec(tok);
if (ident) {
    if (tok === "function") { 1; } else {
        if (tok === "var") { 2; } else { 3; }
    }
} else {
    if (num) {
        if (num[2]) { 4; } else { 5; }
    } else {
        if (str) {
            if (str[1] === "") { 6; }
        }
    }
}
""",
)

TABLE6_PACKAGES: List[BenchPackage] = [
    BABEL_ESLINT,
    FAST_XML_PARSER,
    JS_YAML,
    MINIMIST,
    MOMENT,
    QUERY_STRING,
    SEMVER,
    URL_PARSE,
    VALIDATOR,
    XML,
    YN,
]


def package_by_name(name: str) -> BenchPackage:
    for package in TABLE6_PACKAGES:
        if package.name == name:
            return package
    raise KeyError(name)
