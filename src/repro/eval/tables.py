"""Experiment harnesses regenerating the paper's evaluation tables.

Each ``run_tableN`` function returns structured rows *and* can render the
same layout the paper prints.  Absolute numbers differ from the paper
(their substrate was Node.js + Z3 on 32-core machines; ours is a pure
Python stack), but the comparisons — who wins, roughly by how much, where
refinement matters — are the reproduction targets (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dse import RegexSupportLevel, analyze
from repro.eval.packages import BenchPackage, TABLE6_PACKAGES


@dataclass
class Table6Row:
    library: str
    weekly: str
    loc: int
    regex_ops: int
    old_coverage: float
    new_coverage: float

    @property
    def delta_percent(self) -> Optional[float]:
        if self.old_coverage == 0:
            return None  # the paper prints ∞
        return (
            100.0
            * (self.new_coverage - self.old_coverage)
            / self.old_coverage
        )


def run_table6(
    packages: Sequence[BenchPackage] = tuple(TABLE6_PACKAGES),
    max_tests: int = 40,
    time_budget: float = 20.0,
    old_level: RegexSupportLevel = RegexSupportLevel.MODEL,
) -> List[Table6Row]:
    """Old-vs-new coverage comparison (§7.2).

    ``old_level`` stands in for the original ExpoSE [27]: regexes are
    modelled but without full ES6 capture/backreference linkage and
    without refinement (its documented gaps).  The full system is
    ``REFINED``.
    """
    rows: List[Table6Row] = []
    for package in packages:
        old = analyze(
            package.source,
            level=old_level,
            max_tests=max_tests,
            time_budget=time_budget,
        )
        new = analyze(
            package.source,
            level=RegexSupportLevel.REFINED,
            max_tests=max_tests,
            time_budget=time_budget,
        )
        rows.append(
            Table6Row(
                library=package.name,
                weekly=package.weekly_downloads,
                loc=len(package.source.strip().splitlines()),
                regex_ops=new.regex_ops,
                old_coverage=old.coverage,
                new_coverage=new.coverage,
            )
        )
    return rows


def format_table6(rows: Sequence[Table6Row]) -> str:
    lines = [
        "Library           Weekly     LOC  RegEx   Old(%)   New(%)     +(%)",
    ]
    for row in rows:
        delta = row.delta_percent
        delta_text = "     ∞" if delta is None else f"{delta:>6.1f}"
        lines.append(
            f"{row.library:<17} {row.weekly:>7} {row.loc:>6} "
            f"{row.regex_ops:>6} {100 * row.old_coverage:>8.1f} "
            f"{100 * row.new_coverage:>8.1f} {delta_text}"
        )
    return "\n".join(lines)


# -- Table 8 / §7.4 -----------------------------------------------------------


@dataclass
class Table8Summary:
    """Solver-time aggregates in the layout of the paper's Table 8."""

    per_query: Dict[str, dict] = field(default_factory=dict)
    refinement: Dict[str, float] = field(default_factory=dict)


def summarize_solver_stats(stats_list) -> Table8Summary:
    """Aggregate per-engine-run SolverStats into the Table 8 shape."""
    from repro.solver import SolverStats

    merged = SolverStats()
    for stats in stats_list:
        merged.queries.extend(stats.queries)
    summary = Table8Summary()
    summary.per_query = merged.summary()
    summary.refinement = merged.refinement_summary()
    return summary


def format_table8(summary: Table8Summary) -> str:
    lines = [
        "Queries                         Count     Min(s)     Max(s)    Mean(s)",
    ]
    labels = [
        ("all", "All queries"),
        ("with_captures", "With capture groups"),
        ("with_refinement", "With refinement"),
        ("hit_limit", "Where refinement limit is hit"),
    ]
    for key, label in labels:
        agg = summary.per_query[key]
        lines.append(
            f"{label:<30} {agg['count']:>6} {agg['min']:>10.4f} "
            f"{agg['max']:>10.4f} {agg['mean']:>10.4f}"
        )
    ref = summary.refinement
    lines.append("")
    lines.append(
        f"Refined queries: {ref['refined_queries']} / "
        f"{ref['capture_queries']} capture queries "
        f"({ref['total_queries']} total); "
        f"limit hit: {ref['limit_queries']}; "
        f"mean refinements: {ref['mean_refinements']:.1f}"
    )
    return "\n".join(lines)
