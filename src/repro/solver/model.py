"""Satisfying assignments produced by the string solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.constraints.terms import (
    Concat,
    StrConst,
    StrVar,
    Term,
    UNDEF,
    Undef,
    Value,
)


class EvalError(Exception):
    """Raised when a term cannot be evaluated (⊥ inside a concatenation)."""


@dataclass
class Model:
    """A map from variables to values (strings or ⊥/``None``).

    Mirrors the SMT model object of the paper's Algorithm 1 (``M``); the
    CEGAR loop reads words out of it with ``M[w_j]``.
    """

    assignment: Dict[StrVar, Value] = field(default_factory=dict)

    def __getitem__(self, var: StrVar) -> Value:
        return self.assignment.get(var, "")

    def __contains__(self, var: StrVar) -> bool:
        return var in self.assignment

    def set(self, var: StrVar, value: Value) -> None:
        self.assignment[var] = value

    def eval_term(self, term: Term) -> Value:
        """Evaluate a term; ⊥ propagates out of variables, but a ⊥ inside
        a concatenation is an evaluation error (concat is defined only on
        strings)."""
        if isinstance(term, StrConst):
            return term.value
        if isinstance(term, Undef):
            return UNDEF
        if isinstance(term, StrVar):
            return self.assignment.get(term, "")
        if isinstance(term, Concat):
            pieces = []
            for part in term.parts:
                value = self.eval_term(part)
                if value is UNDEF:
                    raise EvalError(f"⊥ inside concatenation: {part!r}")
                pieces.append(value)
            return "".join(pieces)
        raise TypeError(f"unknown term {term!r}")

    def copy(self) -> "Model":
        return Model(dict(self.assignment))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        items = ", ".join(
            f"{var.name}={'⊥' if val is UNDEF else val!r}"
            for var, val in sorted(
                self.assignment.items(), key=lambda kv: kv[0].name
            )
        )
        return f"Model({items})"
