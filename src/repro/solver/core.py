"""A string-constraint solver for the model's fragment (the Z3 stand-in).

The capturing-language translation (§4) and the CEGAR refinements
(Algorithm 1) emit formulas built from: (dis)equalities over
string/⊥-valued terms, concatenation equations, and classical regular
membership/non-membership.  This solver decides that fragment *bounded-ly*:

1. NNF + lazy DNF enumeration of conjunctive cores (the DPLL part);
2. per core: congruence closure of equalities (union-find with constants
   and ⊥), concatenation equations as a definition DAG, and per-class
   automata obtained by intersecting all positive memberships with the
   complements of negative ones;
3. candidate generation for *free* classes by length-ordered word
   enumeration from their automata, with iterative deepening, followed by
   full re-checking of every literal.

Like any string solver on an undecidable theory (§5.3 cites Bjørner et
al.), the search is bounded: ``UNKNOWN`` is a possible answer.  ``UNSAT``
is reported only when every core is refuted *definitively* — structurally
(conflicting constants, empty automata, ⊥-conflicts) or by a provably
complete enumeration (every candidate list finite and fully covered).
Budget exhaustion alone always yields ``UNKNOWN``, which keeps DSE's use
of unsatisfiability sound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.automata import (
    complement_dfa_for,
    dfa_for,
    lazy_intersect_all,
    lazy_union_all,
)
from repro.automata.build import erase_captures
from repro.automata.dfa import Dfa
from repro.regex import ast as regex_ast
from repro.constraints.formulas import (
    And,
    BoolLit,
    Eq,
    FALSE,
    Formula,
    InRe,
    Not,
    Or,
    TRUE,
    to_nnf,
)
from repro.constraints.terms import (
    Concat,
    StrConst,
    StrVar,
    Term,
    UNDEF,
    Undef,
    Value,
    flatten,
    fresh_var,
)
from repro.solver.model import EvalError, Model
from repro.solver.stats import QueryRecord, SolverStats

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


@dataclass
class SolverResult:
    status: str
    model: Optional[Model] = None

    def __bool__(self) -> bool:
        return self.status == SAT


class _UnsatCore(Exception):
    """Internal: the current conjunctive core is structurally unsatisfiable."""


@dataclass
class _Class:
    """One union-find equivalence class of string variables."""

    rep: StrVar
    members: List[StrVar] = field(default_factory=list)
    const: Optional[str] = None
    undef: bool = False
    pos_regexes: List[object] = field(default_factory=list)
    neg_regexes: List[object] = field(default_factory=list)
    definition: Optional[Tuple[Term, ...]] = None
    excluded: set = field(default_factory=set)
    hints: set = field(default_factory=set)
    #: Automata transferred from memberships on classes this one defines
    #: (quotient propagation); intersected into generation.
    extra_dfas: List[Dfa] = field(default_factory=list)


class _Core:
    """Solves one conjunction of literals."""

    def __init__(self, literals: Sequence[Formula], solver: "Solver"):
        self.literals = literals
        self.solver = solver
        self.parent: Dict[StrVar, StrVar] = {}
        self.classes: Dict[StrVar, _Class] = {}
        self.checks: List[Formula] = []
        self.neqs: List[Tuple[Term, Term]] = []
        #: Extra partitions of already-determined words: (target, parts).
        #: A second ``x = s1 ++ s2`` on a defined/constant ``x`` cannot be a
        #: definition; it is solved by *splitting* the value of ``x`` across
        #: the parts (this is how several Lc constraints over the same input
        #: coexist, and how CEGAR's word-pinning refinements propagate).
        self.splits: List[Tuple[StrVar, Tuple[Term, ...]]] = []
        #: Class rep → lazy/eager constraint automaton (or ``None``).
        self._split_dfa_cache: Dict[StrVar, Optional[object]] = {}

    # -- union-find ----------------------------------------------------------

    def _find(self, var: StrVar) -> StrVar:
        root = var
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[var] != root:  # path compression
            self.parent[var], var = root, self.parent[var]
        return root

    def _class(self, var: StrVar) -> _Class:
        root = self._find(var)
        cls = self.classes.get(root)
        if cls is None:
            cls = _Class(rep=root, members=[root])
            self.classes[root] = cls
        return cls

    def _union(self, a: StrVar, b: StrVar) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        ca, cb = self._class(ra), self._class(rb)
        self.parent[rb] = ra
        ca.members.extend(cb.members)
        ca.pos_regexes.extend(cb.pos_regexes)
        ca.neg_regexes.extend(cb.neg_regexes)
        ca.excluded |= cb.excluded
        ca.hints |= cb.hints
        ca.extra_dfas.extend(cb.extra_dfas)
        if cb.const is not None:
            self._set_const(ca, cb.const)
        if cb.undef:
            self._set_undef(ca)
        if cb.definition is not None and ca.definition is None:
            ca.definition = cb.definition
        elif cb.definition is not None:
            self.checks.append(Eq(ca.rep, _to_term(cb.definition)))
        del self.classes[rb]

    def _set_const(self, cls: _Class, value: str) -> None:
        if cls.undef:
            raise _UnsatCore()
        if cls.const is not None and cls.const != value:
            raise _UnsatCore()
        cls.const = value

    def _set_undef(self, cls: _Class) -> None:
        if cls.const is not None:
            raise _UnsatCore()
        cls.undef = True

    # -- literal intake ------------------------------------------------------

    def _ingest(self) -> None:
        for literal in self.literals:
            positive, atom = _polarity(literal)
            if isinstance(atom, BoolLit):
                if atom.value != positive:
                    raise _UnsatCore()
                continue
            if isinstance(atom, Eq):
                if positive:
                    self._ingest_eq(atom.left, atom.right)
                else:
                    self._ingest_neq(atom.left, atom.right)
            elif isinstance(atom, InRe):
                self._ingest_membership(atom.term, atom.regex, positive)
            else:
                raise TypeError(f"unexpected literal {literal!r}")

    def _ingest_eq(self, left: Term, right: Term) -> None:
        lhs, rhs = flatten(left), flatten(right)
        if len(lhs) == 1 and len(rhs) == 1:
            self._ingest_simple_eq(lhs[0], rhs[0])
        elif len(lhs) == 1 and isinstance(lhs[0], StrVar):
            self._ingest_definition(lhs[0], rhs)
        elif len(rhs) == 1 and isinstance(rhs[0], StrVar):
            self._ingest_definition(rhs[0], lhs)
        else:
            # Cheap infeasibility: constant material on one side longer
            # than the other side can possibly be (e.g. '⟨' ++ x = "").
            for a, b in ((lhs, rhs), (rhs, lhs)):
                if all(isinstance(t, StrConst) for t in b):
                    target_len = sum(len(t.value) for t in b)
                    if _min_length(a) > target_len:
                        raise _UnsatCore()
            # Word equation between two concatenations: bridge with a
            # fresh variable so one side *defines* it and the other side
            # becomes a split of its value (instead of blind enumeration).
            bridge = fresh_var("eq")
            self._ingest_definition(bridge, lhs)
            self.splits.append((bridge, rhs))

    def _ingest_simple_eq(self, a: Term, b: Term) -> None:
        if isinstance(a, StrVar) and isinstance(b, StrVar):
            self._union(a, b)
        elif isinstance(a, StrVar):
            self._bind(a, b)
        elif isinstance(b, StrVar):
            self._bind(b, a)
        else:
            if _const_value(a) != _const_value(b):
                raise _UnsatCore()

    def _bind(self, var: StrVar, value_term: Term) -> None:
        cls = self._class(var)
        if isinstance(value_term, StrConst):
            self._set_const(cls, value_term.value)
        elif isinstance(value_term, Undef):
            self._set_undef(cls)
        else:
            raise TypeError(f"cannot bind to {value_term!r}")

    def _ingest_definition(self, var: StrVar, parts: Tuple[Term, ...]) -> None:
        cls = self._class(var)
        for part in parts:
            if isinstance(part, StrVar):
                self._class(part)
            elif isinstance(part, Undef):
                raise _UnsatCore()  # ⊥ cannot appear inside a concatenation
        if cls.definition is None:
            cls.definition = parts
        else:
            self.splits.append((var, parts))

    def _ingest_neq(self, left: Term, right: Term) -> None:
        # var ≠ "const" prunes candidate enumeration directly; everything
        # else is verified after assignment.
        lhs, rhs = flatten(left), flatten(right)
        if len(lhs) == 1 and len(rhs) == 1:
            a, b = lhs[0], rhs[0]
            if isinstance(a, StrVar) and isinstance(b, StrConst):
                self._class(a).excluded.add(b.value)
            elif isinstance(b, StrVar) and isinstance(a, StrConst):
                self._class(b).excluded.add(a.value)
        self.neqs.append((left, right))

    def _ingest_membership(self, term: Term, regex, positive: bool) -> None:
        atoms = flatten(term)
        if len(atoms) == 1 and isinstance(atoms[0], StrVar):
            cls = self._class(atoms[0])
            (cls.pos_regexes if positive else cls.neg_regexes).append(regex)
        elif len(atoms) == 1 and isinstance(atoms[0], StrConst):
            accepted = dfa_for(regex).accepts_word(atoms[0].value)
            if accepted != positive:
                raise _UnsatCore()
        else:
            check = InRe(term, regex)
            self.checks.append(check if positive else Not(check))

    # -- consistency + classification -----------------------------------------

    def _classify(self) -> Tuple[List[_Class], List[_Class]]:
        """Validate each class; split into (free, defined) in dependency order."""
        for var in list(self.parent):
            self._class(var)

        defined: List[_Class] = []
        free: List[_Class] = []
        for cls in list(self.classes.values()):
            if cls.undef:
                if cls.pos_regexes or cls.definition is not None:
                    raise _UnsatCore()
                continue
            if cls.const is not None:
                for regex in cls.pos_regexes:
                    if not dfa_for(regex).accepts_word(cls.const):
                        raise _UnsatCore()
                for regex in cls.neg_regexes:
                    if dfa_for(regex).accepts_word(cls.const):
                        raise _UnsatCore()
                if cls.const in cls.excluded:
                    raise _UnsatCore()
                if cls.definition is not None:
                    # A constant class with a concatenation definition still
                    # constrains the definition's variables — re-check later.
                    self.checks.append(Eq(cls.rep, _to_term(cls.definition)))
                continue
            if cls.definition is not None:
                defined.append(cls)
            else:
                free.append(cls)

        defined = self._order_definitions(defined)
        return free, defined

    def _order_definitions(self, defined: List[_Class]) -> List[_Class]:
        """Topologically order definition classes; demote cyclic ones to
        checks (their class becomes free)."""
        index = {cls.rep: cls for cls in defined}
        ordered: List[_Class] = []
        state: Dict[StrVar, int] = {}  # 0=visiting, 1=done

        def visit(cls: _Class) -> None:
            state[cls.rep] = 0
            for part in cls.definition or ():
                if isinstance(part, StrVar):
                    dep_rep = self._find(part)
                    dep = index.get(dep_rep)
                    if dep is None or state.get(dep_rep) == 1:
                        continue
                    if state.get(dep_rep) == 0:
                        # Cycle: demote this definition to a post-check.
                        self.checks.append(
                            Eq(cls.rep, _to_term(cls.definition))
                        )
                        cls.definition = None
                        state[cls.rep] = 1
                        return
                    visit(dep)
                    if cls.definition is None:
                        state[cls.rep] = 1
                        return
            state[cls.rep] = 1
            ordered.append(cls)

        for cls in defined:
            if cls.rep not in state:
                visit(cls)
        return ordered

    # -- constant propagation ---------------------------------------------------

    def _propagate_constants(self) -> None:
        """Invert concatenation definitions against known constants.

        When a class has both a constant value and a definition
        ``x1 ++ ... ++ xn``, known parts are stripped and a single unknown
        part is solved exactly (the shape CEGAR refinements and DSE path
        constraints like ``C1 = "timeout"`` produce).  With several
        unknowns, every substring of the constant becomes a *generation
        hint* for those classes, so the DFS can discover the split.
        """
        changed = True
        while changed:
            changed = False
            for cls in list(self.classes.values()):
                if cls.const is None or cls.definition is None:
                    continue
                elements: List[Tuple[str, object]] = []
                for part in cls.definition:
                    if isinstance(part, StrConst):
                        elements.append(("known", part.value))
                    else:
                        part_cls = self._class(part)
                        if part_cls.undef:
                            raise _UnsatCore()
                        if part_cls.const is not None:
                            elements.append(("known", part_cls.const))
                        else:
                            elements.append(("unknown", part_cls))
                unknowns = [e for e in elements if e[0] == "unknown"]
                if not unknowns:
                    if "".join(v for _, v in elements) != cls.const:
                        raise _UnsatCore()
                    cls.definition = None  # fully discharged
                    changed = True
                elif len(unknowns) == 1 and len(
                    {id(e[1]) for e in unknowns}
                ) == 1:
                    value = cls.const
                    index = elements.index(unknowns[0])
                    prefix = "".join(v for _, v in elements[:index])
                    suffix = "".join(v for _, v in elements[index + 1:])
                    if not (
                        value.startswith(prefix)
                        and value.endswith(suffix)
                        and len(value) >= len(prefix) + len(suffix)
                    ):
                        raise _UnsatCore()
                    middle = value[len(prefix):len(value) - len(suffix)]
                    self._set_const(unknowns[0][1], middle)
                    cls.definition = None
                    changed = True
                else:
                    # Multiple unknowns: seed generation with substrings.
                    for _, part_cls in unknowns:
                        part_cls.hints.update(
                            _substrings(cls.const, cap=512)
                        )

    # -- search ----------------------------------------------------------------

    def solve(self, deadline: float, limit: int) -> Tuple[str, Optional[Model]]:
        """Solve this core with one per-class candidate ``limit``.

        Iterative deepening lives in :meth:`Solver.solve` (outer loop over
        limits, inner loop over cores) so a single expensive core cannot
        starve the others."""
        try:
            self._ingest()
            free, defined = self._classify()
            self._propagate_constants()
            self._propagate_quotients()
            # Constant classes with an unresolved (multi-unknown) definition
            # become split constraints over their constant value.
            for cls in list(self.classes.values()):
                if cls.const is not None and cls.definition is not None:
                    self.splits.append((cls.rep, cls.definition))
                    cls.definition = None
            # Propagation and cycle-demotion change class roles; refresh.
            free = [
                cls
                for cls in list(self.classes.values())
                if not cls.undef
                and cls.const is None
                and cls.definition is None
            ]
            defined = [cls for cls in defined if cls.definition is not None]
            for cls in list(self.classes.values()):
                if cls.const is not None:
                    self._check_const_class(cls)
        except _UnsatCore:
            return UNSAT, None

        # Harvest constants from the core: substrings of literal strings are
        # prime candidates for free variables (e.g. a capture that must
        # concatenate into a constant word elsewhere).
        harvested: set = set()
        for literal in self.literals:
            _harvest_consts(literal, harvested)
        if harvested:
            hint_pool = set()
            for value in harvested:
                hint_pool |= _substrings(value, cap=128)
                if len(hint_pool) > 1024:
                    break
            for cls in free:
                cls.hints |= hint_pool

        # Classes that appear as parts of a split constraint are *deferred*:
        # the split solver assigns them from the target word, so the DFS
        # must not enumerate them independently.  Deferral is transitive
        # through definitions: if a deferred class has a definition, its
        # parts will be assigned by splitting the class's value.
        deferred: set = set()
        work: List[Term] = [
            part for _, parts in self.splits for part in parts
        ]
        while work:
            part = work.pop()
            if not isinstance(part, StrVar):
                continue
            rep = self._find(part)
            if rep in deferred:
                continue
            deferred.add(rep)
            part_cls = self._class(rep)
            if part_cls.definition is not None:
                work.extend(part_cls.definition)
        free_enumerated = [cls for cls in free if cls.rep not in deferred]

        automata: Dict[StrVar, Optional[object]] = {}
        for cls in free:
            dfa = self._automaton_for(cls)
            if dfa is not None and dfa.is_empty():
                return UNSAT, None
            automata[cls.rep] = dfa
        free = free_enumerated

        # Most-constrained-first: classes with an automaton and exclusions
        # are likelier to fail fast.
        free.sort(
            key=lambda cls: (
                automata[cls.rep] is None,
                -len(cls.excluded),
            )
        )

        status, model, exhaustive = self._search(
            free, defined, automata, limit, deadline
        )
        if status == SAT:
            return SAT, model
        if exhaustive:
            # Every candidate list was a complete enumeration and the
            # DFS covered the whole product: definitive UNSAT.
            return UNSAT, None
        return UNKNOWN, None

    def _check_const_class(self, cls: _Class) -> None:
        for regex in cls.pos_regexes:
            if not dfa_for(regex).accepts_word(cls.const):
                raise _UnsatCore()
        for regex in cls.neg_regexes:
            if dfa_for(regex).accepts_word(cls.const):
                raise _UnsatCore()
        if cls.const in cls.excluded:
            raise _UnsatCore()

    def _automaton_for(self, cls: _Class):
        """The class's constraint automaton — a *lazy* intersection.

        Returns ``None`` (unconstrained), a plain :class:`Dfa`, or a
        :class:`~repro.automata.lazy.LazyProduct`; all downstream uses
        (emptiness, word enumeration, membership of hints and split
        candidates) go through the query surface the product mirrors,
        so the full product automaton is never materialized.

        Alternation-heavy memberships stay lazy too: a positive
        ``x ∈ L(r1|...|rn)`` with at least
        ``Solver.lazy_union_min_options`` options becomes a
        :class:`~repro.automata.lazy.LazyUnion` of the per-option DFAs
        (nested into the product) instead of determinizing the union
        eagerly, and a *negative* one is rewritten by de Morgan into the
        per-option complements ``∩ ¬L(ri)`` — so neither polarity ever
        pays the subset-construction blowup of a wide alternation.
        """
        threshold = self.solver.lazy_union_min_options
        automata: List[object] = []
        for regex in cls.pos_regexes:
            options = _union_options(regex, threshold)
            if options is None:
                automata.append(dfa_for(regex))
            else:
                automata.append(
                    lazy_union_all([dfa_for(opt) for opt in options])
                )
        for regex in cls.neg_regexes:
            options = _union_options(regex, threshold)
            if options is None:
                automata.append(complement_dfa_for(regex))
            else:
                automata.extend(
                    complement_dfa_for(opt) for opt in options
                )
        automata.extend(cls.extra_dfas)
        return lazy_intersect_all(automata)

    def _propagate_quotients(self) -> None:
        """Transfer memberships through single-unknown definitions.

        When ``x`` is defined as ``prefix ++ y ++ suffix`` with constant
        affixes and carries ``x ∈ L(A)``, then ``y`` must lie in the
        quotient ``prefix⁻¹ · A · suffix⁻¹`` — an exact automaton that
        guides ``y``'s generation (e.g. a trailing lookahead constrains
        the wildcard segment that follows the match)."""
        for cls in list(self.classes.values()):
            if cls.definition is None or not cls.pos_regexes:
                continue
            unknown: Optional[StrVar] = None
            prefix_parts: List[str] = []
            suffix_parts: List[str] = []
            feasible = True
            for part in cls.definition:
                if isinstance(part, StrConst):
                    value = part.value
                elif isinstance(part, StrVar):
                    part_cls = self._class(part)
                    if part_cls.const is not None:
                        value = part_cls.const
                    elif unknown is None and part_cls is not cls:
                        unknown = self._find(part)
                        continue
                    else:
                        feasible = False
                        break
                else:
                    feasible = False
                    break
                (suffix_parts if unknown is not None else prefix_parts).append(
                    value
                )
            if not feasible or unknown is None:
                continue
            prefix, suffix = "".join(prefix_parts), "".join(suffix_parts)
            target = self._class(unknown)
            for regex in cls.pos_regexes:
                quotient = (
                    dfa_for(regex)
                    .quotient_left(prefix)
                    .quotient_right(suffix)
                )
                target.extra_dfas.append(quotient)

    def _search(
        self,
        free: List[_Class],
        defined: List[_Class],
        automata: Dict[StrVar, Optional[object]],
        limit: int,
        deadline: float,
    ) -> Tuple[str, Optional[Model], bool]:
        candidate_lists: List[List[str]] = []
        exhaustive = True
        for cls in free:
            dfa = automata[cls.rep]
            if dfa is None:
                words = self.solver.default_words(limit)
                complete = False
            else:
                words = list(
                    dfa.words(
                        max_count=limit + 1,
                        max_length=self.solver.max_word_length,
                    )
                )
                complete = len(words) <= limit and not any(
                    len(word) >= self.solver.max_word_length for word in words
                )
                words = words[:limit]
            if cls.hints:
                # Hints follow the length-ordered candidates: they widen
                # the pool (e.g. constants a concatenation must hit) but
                # must not displace fresh short words, or refinement
                # exclusions would ladder through ever-longer hints.
                hinted = [
                    hint
                    for hint in sorted(cls.hints, key=lambda h: (len(h), h))
                    if hint not in words
                    and (dfa is None or dfa.accepts_word(hint))
                ]
                words = words + hinted
            words = [word for word in words if word not in cls.excluded]
            exhaustive = exhaustive and complete
            if not words:
                if complete:
                    return UNSAT, None, True  # finite language fully excluded
                return UNKNOWN, None, False
            candidate_lists.append(words)

        budget = self.solver.combo_budget
        tried = 0
        order = free

        # Early pruning: a check whose variables are all decided by DFS
        # level i can be evaluated right after that level instead of at
        # the leaf — this collapses infeasible subtrees immediately.
        checks_by_level = self._schedule_checks(order)

        def assign(index: int, model: Model) -> Optional[Model]:
            nonlocal tried
            if time.monotonic() > deadline:
                return None
            if index == len(order):
                return self._settle(model, defined)
            for word in candidate_lists[index]:
                tried += 1
                if tried > budget:
                    return None
                trial = model.copy()
                for member in order[index].members:
                    trial.set(member, word)
                if all(
                    _holds(check, trial)
                    for check in checks_by_level.get(index, ())
                ):
                    result = assign(index + 1, trial)
                    if result is not None:
                        return result
            return None

        base = Model()
        for cls in list(self.classes.values()):
            if cls.const is not None:
                for member in cls.members:
                    base.set(member, cls.const)
            elif cls.undef:
                for member in cls.members:
                    base.set(member, UNDEF)

        found = assign(0, base)
        self.solver._candidates_tried += tried
        if found is not None:
            return SAT, found, False
        if tried > budget or time.monotonic() > deadline:
            return UNKNOWN, None, False
        # The DFS covered the whole candidate product; the round is only
        # *definitive* if every candidate list was a complete enumeration.
        return (UNSAT, None, True) if exhaustive else (UNKNOWN, None, False)

    def _schedule_checks(
        self, order: List[_Class]
    ) -> Dict[int, List[Formula]]:
        """Map DFS level → checks fully determined once that level assigns.

        Checks touching defined/deferred classes stay at the leaf (handled
        by :meth:`_settle`); checks over free/constant classes run as soon
        as their last free class is assigned."""
        level_of: Dict[StrVar, int] = {}
        for i, cls in enumerate(order):
            level_of[cls.rep] = i
        scheduled: Dict[int, List[Formula]] = {}
        for check in self.checks:
            level = -1
            early = True
            for var in _formula_vars(check):
                rep = self._find(var)
                cls = self._class(rep)
                if cls.const is not None or cls.undef:
                    continue
                if rep in level_of:
                    level = max(level, level_of[rep])
                else:
                    early = False  # defined or deferred: leaf-time only
                    break
            if early:
                # Constant-only checks (level -1) run at the first level.
                scheduled.setdefault(max(level, 0), []).append(check)
        return scheduled

    # -- settling: defined classes + split constraints -------------------------

    def _settle(self, model: Model, defined: List[_Class]) -> Optional[Model]:
        """Complete a partial assignment: compute defined classes, solve
        split constraints (with backtracking over splits), then verify
        every literal."""
        return self._settle_rec(model, list(defined), list(self.splits), 0)

    def _settle_rec(
        self,
        model: Model,
        pending_defined: List[_Class],
        pending_splits: List[Tuple[StrVar, Tuple[Term, ...]]],
        depth: int,
    ) -> Optional[Model]:
        if depth > 16:  # backtracking safety valve
            return None
        # Fixpoint: compute defined classes whose parts are all known.
        # A defined class whose *own* value arrived first (via an outer
        # split) flips direction: its definition becomes a further split
        # of that value.
        progress = True
        pending_defined = list(pending_defined)
        pending_splits = list(pending_splits)
        while progress:
            progress = False
            for cls in list(pending_defined):
                if cls.rep in model:
                    pending_defined.remove(cls)
                    pending_splits.append((cls.rep, cls.definition))
                    progress = True
                    continue
                term = _to_term(cls.definition)
                if not self._evaluable(term, model):
                    continue
                if not self._apply_class_value(cls, term, model):
                    return None
                pending_defined.remove(cls)
                progress = True

        if not pending_splits:
            for cls in pending_defined:
                # Unresolvable dependencies: fall back to defaults ("").
                if not self._apply_class_value(
                    cls, _to_term(cls.definition), model
                ):
                    return None
            return self._verify(model)

        # Solve the first split whose target word is already determined.
        for i, (target, parts) in enumerate(pending_splits):
            if not self._evaluable(target, model) and target not in model:
                continue
            target_cls = self._class(target)
            if target_cls.const is not None:
                value = target_cls.const
            elif target in model:
                value = model[target]
            else:
                continue
            if value is UNDEF:
                return None
            remaining = pending_splits[:i] + pending_splits[i + 1:]
            emitted = 0
            for assignment in self._enumerate_splits(value, parts, model):
                emitted += 1
                if emitted > self.solver.split_cap:
                    break
                trial = model.copy()
                for rep, word in assignment.items():
                    for member in self._class(rep).members:
                        trial.set(member, word)
                result = self._settle_rec(
                    trial, pending_defined, remaining, depth + 1
                )
                if result is not None:
                    return result
            return None

        # No split target is determined (cyclic structure): give leftover
        # parts their defaults and verify.
        return self._verify(model)

    def _evaluable(self, term: Term, model: Model) -> bool:
        if isinstance(term, StrVar):
            cls = self._class(term)
            return term in model or cls.const is not None or cls.undef
        if isinstance(term, Concat):
            return all(self._evaluable(p, model) for p in term.parts)
        return True

    def _apply_class_value(
        self, cls: _Class, term: Term, model: Model
    ) -> bool:
        try:
            value = model.eval_term(term)
        except EvalError:
            return False
        if value in cls.excluded:
            return False
        for regex in cls.pos_regexes:
            if not dfa_for(regex).accepts_word(value):
                return False
        for regex in cls.neg_regexes:
            if dfa_for(regex).accepts_word(value):
                return False
        for member in cls.members:
            model.set(member, value)
        return True

    def _enumerate_splits(
        self, value: str, parts: Tuple[Term, ...], model: Model
    ) -> Iterator[Dict[StrVar, str]]:
        """All ways to write ``value`` as the concatenation of ``parts``,
        respecting constants, prior assignments, per-class automata and
        exclusions.  Yields {class-rep: substring} assignments."""

        def part_dfa(rep: StrVar) -> Optional[object]:
            if rep not in self._split_dfa_cache:
                self._split_dfa_cache[rep] = self._automaton_for(
                    self._class(rep)
                )
            return self._split_dfa_cache[rep]

        def rec(
            pos: int, idx: int, chosen: Dict[StrVar, str]
        ) -> Iterator[Dict[StrVar, str]]:
            if idx == len(parts):
                if pos == len(value):
                    yield dict(chosen)
                return
            part = parts[idx]
            if isinstance(part, StrConst):
                if value.startswith(part.value, pos):
                    yield from rec(pos + len(part.value), idx + 1, chosen)
                return
            if isinstance(part, Undef):
                return
            rep = self._find(part)
            cls = self._class(rep)
            fixed: Optional[str] = None
            if rep in chosen:
                fixed = chosen[rep]
            elif cls.const is not None:
                fixed = cls.const
            elif rep in model:
                fixed = model[rep]
            if fixed is not None:
                if fixed is not UNDEF and value.startswith(fixed, pos):
                    yield from rec(pos + len(fixed), idx + 1, chosen)
                return
            dfa = part_dfa(rep)
            for end in range(pos, len(value) + 1):
                sub = value[pos:end]
                if sub in cls.excluded:
                    continue
                if dfa is not None and not dfa.accepts_word(sub):
                    continue
                chosen[rep] = sub
                yield from rec(end, idx + 1, chosen)
                del chosen[rep]

        yield from rec(0, 0, {})

    def _verify(self, model: Model) -> Optional[Model]:
        for literal in self.literals:
            if not _holds(literal, model):
                return None
        for check in self.checks:
            if not _holds(check, model):
                return None
        return model


def _union_options(regex, threshold: int):
    """The options of a wide top-level alternation, or ``None``.

    ``None`` means "compile eagerly": the (capture-erased, with group
    wrappers peeled — ``(?:a|b|...)`` is how wide alternations are
    usually written) node is not an alternation, or it has fewer than
    ``threshold`` options — narrow unions determinize cheaply and a
    single minimized DFA answers membership faster than a lazy tuple
    walk.
    """
    if threshold <= 0:
        return None
    erased = erase_captures(regex)
    while isinstance(erased, regex_ast.NonCapGroup):
        erased = erased.child
    if (
        isinstance(erased, regex_ast.Alternation)
        and len(erased.options) >= threshold
    ):
        return list(erased.options)
    return None


def _formula_vars(formula: Formula) -> Iterator[StrVar]:
    """All string variables occurring in a formula."""
    if isinstance(formula, Not):
        yield from _formula_vars(formula.operand)
    elif isinstance(formula, (And, Or)):
        for op in formula.operands:
            yield from _formula_vars(op)
    elif isinstance(formula, Eq):
        yield from _term_vars(formula.left)
        yield from _term_vars(formula.right)
    elif isinstance(formula, InRe):
        yield from _term_vars(formula.term)


def _term_vars(term: Term) -> Iterator[StrVar]:
    if isinstance(term, StrVar):
        yield term
    elif isinstance(term, Concat):
        for part in term.parts:
            yield from _term_vars(part)


def _min_length(atoms: Sequence[Term]) -> int:
    """A lower bound on the length of a concatenation's value."""
    return sum(
        len(t.value) for t in atoms if isinstance(t, StrConst)
    )


def _harvest_consts(formula: Formula, out: set) -> None:
    """Collect string literals occurring anywhere in a formula."""
    if isinstance(formula, Not):
        _harvest_consts(formula.operand, out)
    elif isinstance(formula, (And, Or)):
        for op in formula.operands:
            _harvest_consts(op, out)
    elif isinstance(formula, Eq):
        for term in (formula.left, formula.right):
            _harvest_term_consts(term, out)
    elif isinstance(formula, InRe):
        _harvest_term_consts(formula.term, out)


def _harvest_term_consts(term: Term, out: set) -> None:
    if isinstance(term, StrConst) and term.value:
        out.add(term.value)
    elif isinstance(term, Concat):
        for part in term.parts:
            _harvest_term_consts(part, out)


def _substrings(value: str, cap: int = 512) -> set:
    """All substrings of ``value`` (bounded) — split-generation hints."""
    out = {""}
    for start in range(len(value)):
        for end in range(start + 1, len(value) + 1):
            out.add(value[start:end])
            if len(out) >= cap:
                return out
    return out


def _polarity(literal: Formula) -> Tuple[bool, Formula]:
    if isinstance(literal, Not):
        return False, literal.operand
    return True, literal


def _const_value(term: Term) -> Value:
    if isinstance(term, StrConst):
        return term.value
    if isinstance(term, Undef):
        return UNDEF
    raise TypeError(f"not a constant: {term!r}")


def _to_term(parts: Iterable[Term]) -> Term:
    parts = tuple(parts)
    if len(parts) == 1:
        return parts[0]
    return Concat(parts)


def _holds(formula: Formula, model: Model) -> bool:
    """Evaluate a (NNF) formula under a total assignment."""
    if isinstance(formula, BoolLit):
        return formula.value
    if isinstance(formula, Not):
        return not _holds(formula.operand, model)
    if isinstance(formula, And):
        return all(_holds(op, model) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_holds(op, model) for op in formula.operands)
    if isinstance(formula, Eq):
        try:
            return model.eval_term(formula.left) == model.eval_term(
                formula.right
            )
        except EvalError:
            return False
    if isinstance(formula, InRe):
        try:
            value = model.eval_term(formula.term)
        except EvalError:
            return False
        if value is UNDEF:
            return False
        return dfa_for(formula.regex).accepts_word(value)
    raise TypeError(f"cannot evaluate {formula!r}")


class Solver:
    """The public solver object (drop-in for the paper's use of Z3).

    Parameters bound the search: ``round_limits`` are per-class candidate
    counts for iterative deepening, ``combo_budget`` caps assignments per
    core, and ``timeout`` caps wall-clock time per query.
    """

    def __init__(
        self,
        round_limits: Sequence[int] = (12, 80, 600),
        combo_budget: int = 60_000,
        max_cores: int = 4_000,
        max_word_length: int = 48,
        split_cap: int = 512,
        timeout: float = 20.0,
        lazy_union_min_options: int = 4,
        stats: Optional[SolverStats] = None,
    ):
        self.round_limits = list(round_limits)
        self.combo_budget = combo_budget
        self.max_cores = max_cores
        self.max_word_length = max_word_length
        self.split_cap = split_cap
        self.timeout = timeout
        #: Alternations with at least this many options enter per-class
        #: automata as lazy unions (0 disables the lazy-union path).
        self.lazy_union_min_options = lazy_union_min_options
        self.stats = stats
        self._candidates_tried = 0

    def default_words(self, limit: int) -> List[str]:
        """Candidates for wholly unconstrained variables."""
        alphabet = ["", "a", "b", "0", "1", " ", "x", "ab", "a0", "-"]
        words = alphabet + ["a" * length for length in range(2, 6)]
        return words[:limit] if limit < len(words) else words

    def solve(self, formula: Formula) -> SolverResult:
        """Decide ``formula``; returns SAT with a model, UNSAT, or UNKNOWN.

        Iterative deepening over candidate limits is the *outer* loop: at
        each limit every conjunctive core gets a (cheap) chance before any
        core receives a bigger budget — a single hard core cannot starve
        the others."""
        start = time.perf_counter()
        deadline = time.monotonic() + self.timeout
        self._candidates_tried = 0
        nnf = to_nnf(formula)
        cores_tried = 0
        saw_unknown = False
        status = UNSAT
        model = None
        for limit in self.round_limits:
            saw_unknown = False
            round_cores = 0
            for literals in _enumerate_cores(nnf):
                round_cores += 1
                cores_tried += 1
                if round_cores > self.max_cores:
                    saw_unknown = True
                    break
                core_status, core_model = _Core(literals, self).solve(
                    deadline, limit
                )
                if core_status == SAT:
                    status, model = SAT, core_model
                    break
                if core_status == UNKNOWN:
                    saw_unknown = True
                if time.monotonic() > deadline:
                    saw_unknown = True
                    break
            if status == SAT:
                break
            if not saw_unknown:
                status = UNSAT  # every core definitively refuted
                break
            if time.monotonic() > deadline:
                break
        if status != SAT and saw_unknown:
            status = UNKNOWN
        if self.stats is not None:
            self.stats.record(
                QueryRecord(
                    seconds=time.perf_counter() - start,
                    status=status,
                    cores_tried=cores_tried,
                    candidates_tried=self._candidates_tried,
                )
            )
        return SolverResult(status, model)


def _enumerate_cores(nnf: Formula) -> Iterator[List[Formula]]:
    """Lazily enumerate conjunctive cores (DNF branches) of an NNF formula."""
    if isinstance(nnf, And):
        def product(operands: Tuple[Formula, ...]) -> Iterator[List[Formula]]:
            if not operands:
                yield []
                return
            for head in _enumerate_cores(operands[0]):
                for tail in product(operands[1:]):
                    yield head + tail

        yield from product(nnf.operands)
    elif isinstance(nnf, Or):
        for option in nnf.operands:
            yield from _enumerate_cores(option)
    elif isinstance(nnf, BoolLit):
        if nnf.value:
            yield []
    else:
        yield [nnf]
