"""From-scratch string constraint solver (offline stand-in for Z3).

See :mod:`repro.solver.core` for the algorithm.  The public surface is
:class:`Solver` (``solve(formula) -> SolverResult``) plus the status
constants ``SAT``/``UNSAT``/``UNKNOWN`` and the :class:`Model` type.
"""

from repro.solver.core import SAT, Solver, SolverResult, UNKNOWN, UNSAT
from repro.solver.model import EvalError, Model
from repro.solver.stats import GLOBAL_STATS, QueryRecord, SolverStats

__all__ = [
    "EvalError",
    "GLOBAL_STATS",
    "Model",
    "QueryRecord",
    "SAT",
    "Solver",
    "SolverResult",
    "SolverStats",
    "UNKNOWN",
    "UNSAT",
]
