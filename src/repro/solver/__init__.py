"""From-scratch string constraint solver (offline stand-in for Z3).

See :mod:`repro.solver.core` for the algorithm.  The public surface is
:class:`Solver` (``solve(formula) -> SolverResult``) plus the status
constants ``SAT``/``UNSAT``/``UNKNOWN`` and the :class:`Model` type.

:mod:`repro.solver.backends` layers the pluggable backend API on top:
``make_backend("native" | "smtlib:z3" | "portfolio:..." | "cached:...")``
resolves a spec string into anything with the same ``solve`` protocol.
(It is not imported here to keep this package import-light; import it
directly.)
"""

from repro.solver.core import SAT, Solver, SolverResult, UNKNOWN, UNSAT
from repro.solver.model import EvalError, Model
from repro.solver.stats import (
    BackendTally,
    GLOBAL_STATS,
    QueryRecord,
    SolverStats,
)

__all__ = [
    "BackendTally",
    "EvalError",
    "GLOBAL_STATS",
    "Model",
    "QueryRecord",
    "SAT",
    "Solver",
    "SolverResult",
    "SolverStats",
    "UNKNOWN",
    "UNSAT",
]
