"""Incremental SMT-LIB session backend: one live solver, many queries.

The ``smtlib:`` backend pays a full subprocess spawn — interpreter
start, theory setup, script parse — for *every* query, which dominates
the solver wall-clock of a DSE run long before the string theory does.
This backend keeps one solver process alive across queries and speaks
the incremental SMT-LIB dialogue instead:

- at spawn, the shared prelude (``set-option``/``set-logic``) is sent
  once (:func:`repro.constraints.printer.smtlib_prelude`);
- each query is a *delta*: declarations for newly seen symbols at the
  ground level, then ``(push 1)`` / ``(assert ...)`` / ``(check-sat)``
  (:func:`repro.constraints.printer.to_smtlib_incremental`); a
  ``(get-value ...)`` follows *only after a ``sat`` verdict* — some
  solvers abort the whole process on a model query in any other state
  (cvc5, unlike ``z3 -in``), which would discard the verdict and kill
  the session — and ``(pop 1)`` closes the scope;
- every ``reset_every`` queries a ``(reset)`` clears the solver's
  accumulated declarations and learned state, bounding its memory, and
  the prelude is re-sent;
- answers are synchronized with an ``(echo ...)`` marker after each
  query, so one slow answer can never be attributed to the next query.

Soundness is exactly the ``smtlib:`` argument: queries render in
*guarded* mode (the exact ⊥-aware encoding, so ``unsat`` is sound), SAT
models are re-validated natively before being trusted, and every
failure mode — missing binary, timeout, crash, unprintable formula,
garbage output — degrades to UNKNOWN.  A crashed or wedged process is
killed and restarted once per query (the query itself answers UNKNOWN;
the next query finds a fresh session).  Lifecycle counters (spawns,
restarts, resets, per-session query counts, process lifetime) land in
:class:`~repro.solver.stats.SolverStats.session_tallies`.
"""

from __future__ import annotations

import os
import queue
import shlex
import shutil
import subprocess
import threading
from time import monotonic, perf_counter
from typing import List, Optional

from repro import faults, obs
from repro.constraints.formulas import Formula, to_nnf
from repro.faults.breaker import get_breaker
from repro.constraints.printer import (
    smtlib_prelude,
    smtlib_query_symbols,
    to_smtlib_incremental,
)
from repro.solver.core import SAT, SolverResult, UNKNOWN, UNSAT, _holds
from repro.solver.stats import SolverStats

from repro.solver.backends.base import SolverBackend
from repro.solver.backends.smtlib import build_model, parse_solver_output

#: Sentinel queued by the reader thread when the solver closes stdout.
_EOF = object()


def _z3_argv(command: List[str], timeout: float) -> List[str]:
    # ``-t`` is z3's *per-check* soft timeout (ms) — unlike ``-T``, it
    # does not kill the process, so the session survives a hard query.
    return command + ["-smt2", "-in", f"-t:{max(1, int(timeout * 1000))}"]


def _cvc_argv(command: List[str], timeout: float) -> List[str]:
    return command + [
        "--lang", "smt2",
        "--strings-exp",
        "--incremental",
        f"--tlimit-per={max(1000, int(timeout * 1000))}",
    ]


def _generic_argv(command: List[str], timeout: float) -> List[str]:
    return list(command)


_ARGV_TEMPLATES = {
    "z3": _z3_argv,
    "cvc5": _cvc_argv,
    "cvc4": _cvc_argv,
}


def probe_solver_command(command: str) -> Optional[str]:
    """``None`` when ``command``'s binary resolves on PATH, else the
    "not installed" diagnostic — shared by the private and the pooled
    session form so the probe and its message cannot drift apart."""
    argv = shlex.split(command)
    if argv and shutil.which(argv[0]) is not None:
        return None
    binary = argv[0] if argv else command
    return f"solver binary {binary!r} not installed"


class SessionBackend(SolverBackend):
    """``session:<command>`` — a persistent incremental SMT-LIB solver."""

    def __init__(
        self,
        command: str = "z3",
        *,
        timeout: float = 5.0,
        reset_every: int = 512,
        stats: Optional[SolverStats] = None,
    ):
        super().__init__(stats)
        self.command = command or "z3"
        self.timeout = timeout
        self.reset_every = max(1, int(reset_every))
        self.name = f"session:{self.command}"
        self._argv_prefix = shlex.split(self.command)
        self._available: Optional[bool] = None
        #: Why the last query degraded to UNKNOWN (diagnostics only).
        self.last_error: Optional[str] = None
        #: Per-command circuit breaker (process-global; shared with the
        #: pooled form).  The raw session backend only *feeds* it —
        #: crashes/spawn failures count as failures, a completed round
        #: trip as success; the gating (short-circuit to UNKNOWN while
        #: open) lives in ``PooledSessionBackend``/the router, so a
        #: directly-held session keeps its crash-restart semantics.
        self.breaker = get_breaker(self.name)
        # -- live-session state ------------------------------------------
        self._proc: Optional[subprocess.Popen] = None
        self._lines: Optional["queue.Queue"] = None
        self._declared: set = set()
        self._since_reset = 0
        self._spawned_at = 0.0
        self._seq = 0
        # -- lifecycle counters (also mirrored into stats) ----------------
        self.spawns = 0
        self.restarts = 0
        self.resets = 0
        self.queries = 0

    @property
    def available(self) -> bool:
        """Whether the solver binary resolves on PATH (probed once)."""
        if self._available is None:
            self._available = probe_solver_command(self.command) is None
        return self._available

    # -- solving -------------------------------------------------------------

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        result = self._solve(formula)
        self._tally(result.status, perf_counter() - started)
        return result

    def _solve(self, formula: Formula) -> SolverResult:
        self.last_error = None
        if not self.available:
            return self._unknown(probe_solver_command(self.command))
        if self._proc is None or self._proc.poll() is not None:
            if self._proc is not None:
                # Died between queries (crashed after answering, OOM-killed,
                # ...): a replacement spawn is a restart, not a first spawn.
                self.restarts += 1
                self._srecord(restarts=1)
                obs.event(
                    "session:restart",
                    session=self.name,
                    reason="died between queries",
                )
            if not self._respawn():
                return SolverResult(UNKNOWN)  # last_error already set
        if self._since_reset >= self.reset_every and not self._reset():
            return self._crash("session reset failed")
        try:
            script = to_smtlib_incremental(
                formula, self._declared, guarded=True, close_scope=False
            )
        except TypeError as exc:
            # Lookaheads/backreferences/anchors have no classical
            # SMT-LIB form; the native solver owns those queries.  The
            # session stays alive — nothing was sent.
            return self._unknown(f"unprintable formula: {exc}")
        # Phase 1: assert + check-sat (scope left open for get-value).
        output = self._round_trip(script)
        if output is None:
            return SolverResult(UNKNOWN)  # crash path set last_error
        self._breaker_feed(ok=True)
        self.queries += 1
        self._since_reset += 1
        self._srecord(queries=1)
        status, _ = parse_solver_output(output)
        if status != SAT:
            self._close_scope()
            if status == UNSAT:
                # Sound thanks to the guarded (exact) encoding.
                return SolverResult(UNSAT)
            return self._unknown(f"solver answered {status!r}")
        # Phase 2: the model, asked for only now that the solver is in
        # sat state (a get-value after unsat aborts some solvers).
        symbols = smtlib_query_symbols(formula)
        values = {}
        if symbols:
            output = self._round_trip(
                "(get-value (" + " ".join(symbols) + "))"
            )
            if output is None:
                return SolverResult(UNKNOWN)  # crashed mid-model
            _, values = parse_solver_output(output)
        self._close_scope()
        model = build_model(formula, values)
        try:
            validated = _holds(to_nnf(formula), model)
        except Exception as exc:  # defensive: never crash on bad output
            return self._unknown(f"model evaluation failed: {exc}")
        if not validated:
            return self._unknown("solver model failed native re-validation")
        return SolverResult(SAT, model)

    # -- the incremental dialogue --------------------------------------------

    def _round_trip(self, script: str) -> Optional[str]:
        """Send one command batch, read lines until a fresh echo marker."""
        self._seq += 1
        marker = f"repro-sync-{self._seq}"
        wedged = False
        rule = faults.fire("session:query", command=self.command)
        if rule is not None:
            if rule.action == "kill" and self._proc is not None:
                # Solver dies mid-query: the write below hits a broken
                # pipe, or the reader sees EOF — the crash path either way.
                try:
                    self._proc.kill()
                except OSError:
                    pass
            elif rule.action == "wedge":
                # Swallow the script: the solver never sees it, so the
                # read loop waits out the full timeout — a wedged solver.
                wedged = True
        try:
            if not wedged:
                self._proc.stdin.write(script + f'\n(echo "{marker}")\n')
                self._proc.stdin.flush()
        except (OSError, ValueError):
            return self._crash_none("session stdin closed")
        deadline = monotonic() + self.timeout + 1.0
        chunks: List[str] = []
        while True:
            remaining = deadline - monotonic()
            if remaining <= 0:
                return self._crash_none(
                    f"session timed out after {self.timeout}s"
                )
            try:
                line = self._lines.get(timeout=remaining)
            except queue.Empty:
                return self._crash_none(
                    f"session timed out after {self.timeout}s"
                )
            if line is _EOF:
                return self._crash_none("session process exited")
            stripped = line.strip()
            # z3 echoes the bare string; SMT-LIB-conformant solvers
            # (cvc5/cvc4) echo the *literal*, quotes included.
            if stripped == marker or stripped == f'"{marker}"':
                return "".join(chunks)
            chunks.append(line)

    def _close_scope(self) -> None:
        """Retract the query scope; the verdict in hand stays valid.

        A failed write means the process died *after* answering — keep
        the answer, kill the carcass, and let the next query respawn
        (counted as a restart there, not here).
        """
        if self._proc is None:
            return
        try:
            self._proc.stdin.write("(pop 1)\n")
            self._proc.stdin.flush()
        except (OSError, ValueError):
            self._kill()

    def _reset(self) -> bool:
        """Issue ``(reset)`` + prelude; bounds solver-side memory."""
        try:
            self._proc.stdin.write(
                "(reset)\n" + smtlib_prelude(get_values=True) + "\n"
            )
            self._proc.stdin.flush()
        except (OSError, ValueError):
            return False
        self._declared.clear()
        self._since_reset = 0
        self.resets += 1
        self._srecord(resets=1)
        obs.event("session:reset", session=self.name)
        return True

    # -- process lifecycle ---------------------------------------------------

    def _spawn(self) -> None:
        spawn_started = perf_counter()
        rule = faults.fire("session:spawn", command=self.command)
        if rule is not None and rule.action in ("error", "kill"):
            raise OSError("fault injected at session:spawn")
        template = _ARGV_TEMPLATES.get(
            os.path.basename(self._argv_prefix[0]), _generic_argv
        )
        argv = template(list(self._argv_prefix), self.timeout)
        self._proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            bufsize=1,
        )
        lines: "queue.Queue" = queue.Queue()
        self._lines = lines

        def read(stream=self._proc.stdout):
            try:
                for line in iter(stream.readline, ""):
                    lines.put(line)
            except ValueError:  # stream closed mid-read during kill
                pass
            lines.put(_EOF)

        threading.Thread(
            target=read, name=f"session-{self.command}", daemon=True
        ).start()
        self._proc.stdin.write(smtlib_prelude(get_values=True) + "\n")
        self._proc.stdin.flush()
        self._declared.clear()
        self._since_reset = 0
        self._spawned_at = monotonic()
        self.spawns += 1
        self._srecord(spawns=1)
        if obs.enabled():
            obs.complete_span(
                "session:spawn",
                perf_counter() - spawn_started,
                session=self.name,
            )

    def _respawn(self) -> bool:
        """Spawn (or re-spawn) the process; False + last_error on failure."""
        self._kill()
        try:
            self._spawn()
        except OSError as exc:
            self.last_error = (
                f"could not start {self._argv_prefix[0]!r}: {exc}"
            )
            self._proc = None
            self._breaker_feed(ok=False)
            return False
        return True

    def _kill(self) -> None:
        proc, self._proc = self._proc, None
        if proc is None:
            return
        self._srecord(seconds=monotonic() - self._spawned_at)
        try:
            proc.kill()
            proc.wait(timeout=5.0)
        except (OSError, subprocess.TimeoutExpired):
            pass
        for stream in (proc.stdin, proc.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass

    def close(self) -> None:
        """End the session process (idempotent; sessions also die with
        the owning process — they hold only daemon threads and pipes)."""
        self._kill()

    def _crash(self, reason: str) -> SolverResult:
        """Kill the wedged/dead process, restart once, answer UNKNOWN.

        The *next* query finds a fresh session; this one is not retried
        (its solver may have died mid-answer — replaying it against a
        cold process would double its latency with no soundness gain).
        """
        self._kill()
        self.restarts += 1
        self._srecord(restarts=1)
        self._breaker_feed(ok=False)
        obs.event("session:restart", session=self.name, reason=reason)
        self._respawn()  # best effort; failure leaves last_error set
        return self._unknown(reason)

    def _crash_none(self, reason: str) -> None:
        self._crash(reason)
        return None

    def _breaker_feed(self, ok: bool) -> None:
        """Feed the per-command breaker (and point its transition
        recorder at this solve's stats, so trips land in the right
        run's ``breaker_tallies``)."""
        breaker = self.breaker
        if breaker is None:
            return
        breaker.recorder = (
            self.stats.record_breaker if self.stats is not None else None
        )
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def _unknown(self, reason: str) -> SolverResult:
        self.last_error = reason
        return SolverResult(UNKNOWN)

    def _srecord(self, **delta) -> None:
        if self.stats is not None:
            self.stats.record_session(self.name, **delta)

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self._kill()
        except Exception:
            pass
