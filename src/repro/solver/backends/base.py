"""The backend protocol and its error types.

A *backend* is anything with a ``name`` and a
``solve(formula) -> SolverResult`` method.  The abstract base class here
additionally provides the per-backend tally plumbing: a backend carries
an optional :class:`~repro.solver.stats.SolverStats` sink and records
one outcome/latency tally per query under its own name, so reports can
break solver traffic down by backend.

Consumers that build a backend *before* they know their stats collector
(the DSE engine creates its result object first) call
:meth:`SolverBackend.bind_stats` afterwards; binding is recursive
through composite backends (portfolio members, cached inners) and never
overwrites a sink that was set explicitly.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro import obs
from repro.constraints.formulas import Formula
from repro.solver.core import SolverResult
from repro.solver.stats import SolverStats


class BackendError(ValueError):
    """A backend spec could not be resolved (unknown scheme, bad option)."""


class BackendDisagreement(RuntimeError):
    """Two backends returned contradictory definitive answers.

    This is loud by design: SAT vs UNSAT on the same formula means one
    backend is unsound (or the encoding between them is broken), and
    silently picking either answer would poison everything downstream.

    The exception is structured so even a ``raise``-mode crash is
    actionable: ``members`` names both disagreeing backends,
    ``statuses`` their verdicts (aligned with ``members``), and
    ``fingerprint`` is the query's canonical fingerprint — the
    reproducible key the query cache and the conformance triage
    pipeline both dedupe on.
    """

    def __init__(
        self,
        message: str,
        *,
        members: Sequence[str] = (),
        statuses: Sequence[str] = (),
        fingerprint: Optional[str] = None,
    ):
        super().__init__(message)
        self.members = tuple(members)
        self.statuses = tuple(statuses)
        self.fingerprint = fingerprint

    def payload(self) -> dict:
        """JSON-shaped detail for artifacts / job payloads / events."""
        return {
            "members": list(self.members),
            "statuses": list(self.statuses),
            "fingerprint": self.fingerprint,
        }


class SolverBackend(abc.ABC):
    """Protocol base for solver backends.

    Subclasses set :attr:`name` (the spec-ish display name) and
    implement :meth:`solve`.  ``stats`` is the optional tally sink.
    """

    name: str = "?"

    def __init__(self, stats: Optional[SolverStats] = None):
        self.stats = stats

    @abc.abstractmethod
    def solve(self, formula: Formula) -> SolverResult:
        """Decide ``formula``: SAT (with model), UNSAT, or UNKNOWN."""

    def solve_refined(self, formula: Formula) -> SolverResult:
        """Decide a CEGAR-*refined* query (Algorithm 1, iterations > 0).

        The refinement loop calls this instead of :meth:`solve` from the
        second iteration on, letting backends treat the refined stream
        specially — the router re-classifies and migrates it to the
        incremental session, the cache decorator keys each refined
        query's fingerprint.  The default is simply :meth:`solve`:
        answering a refined query is never allowed to differ in
        soundness, only in dispatch.
        """
        return self.solve(formula)

    def bind_stats(self, stats: SolverStats) -> None:
        """Attach a tally sink if none was set at construction."""
        if self.stats is None:
            self.stats = stats

    def _tally(self, status: str, seconds: float) -> None:
        if self.stats is not None:
            self.stats.record_backend(self.name, status, seconds)
        if obs.enabled():
            # Piggyback on the already-measured duration: the span is
            # reconstructed after the fact, so a disabled tracer costs
            # this one branch and no clock reads.
            obs.complete_span(
                "backend:" + self.name, seconds, status=status
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
