"""The backend spec registry: strings in, backends out.

Spec grammar (one line, no spaces)::

    spec     ::= scheme [":" argument] ["?" key "=" value ("&" ...)*]
    scheme   ::= "native" | "smtlib" | "session" | "portfolio"
               | "route" | "cached" | <registered>

Examples::

    native                         the built-in bounded solver
    native?timeout=2               with a per-query wall budget
    smtlib:z3                      z3 subprocess over SMT-LIB (default cmd)
    smtlib:cvc5?timeout=10         cvc5, 10s budget
    session:z3                     live incremental z3 sessions, leased
                                   from the process-wide SessionPool
    session:z3?reset_every=128     with a (reset) cadence
    session:z3?pooled=0            a private (unpooled) session process
    portfolio:native+smtlib:z3     race members; '+' separates them
    portfolio:auto                 native + a session per installed binary
    route:z3                       per-query feature routing (see router.py)
    cached:native                  memoize definitive answers
    cached:portfolio:native+smtlib nesting composes left-to-right

``make_backend`` also accepts an existing backend object (returned
unchanged) and ``None`` (the native default), so every consumer can
take "a spec" without caring which form it got.  The ``query_cache``
keyword is a directory path threaded down to every ``cached:`` level of
a composite spec: its :class:`~repro.solver.backends.cached.QueryCache`
then persists definitive answers on disk across invocations;
``query_cache_max`` caps that store with age-based GC.
"""

from __future__ import annotations

import re
import shutil
import warnings
from typing import Callable, Dict, List, Optional, Tuple

from repro.solver.stats import SolverStats

from repro.solver.backends.base import BackendError
from repro.solver.backends.cached import CachedBackend, QueryCache
from repro.solver.backends.native import NativeBackend
from repro.solver.backends.pool import PooledSessionBackend
from repro.solver.backends.portfolio import PortfolioBackend
from repro.solver.backends.router import RouterBackend
from repro.solver.backends.session import SessionBackend
from repro.solver.backends.smtlib import SmtLibBackend

#: A scheme factory: (rest-of-spec, default timeout, stats sink,
#: query-cache dir) → backend.
BackendFactory = Callable[..., object]

_REGISTRY: Dict[str, BackendFactory] = {}

_SCHEME_RE = re.compile(r"^([A-Za-z0-9_-]+)(.*)$", re.S)


def register_backend(scheme: str, factory: BackendFactory) -> None:
    """Register a new spec scheme.

    ``factory(rest, timeout=..., stats=..., query_cache=...)`` receives
    everything after the scheme name (starting with ``:`` or ``?`` when
    present) and must return an object with
    ``solve(formula) -> SolverResult``.
    """
    _REGISTRY[scheme] = factory


def registered_backends() -> List[str]:
    return sorted(_REGISTRY)


def make_backend(
    spec: Optional[object] = None,
    *,
    timeout: Optional[float] = None,
    stats: Optional[SolverStats] = None,
    query_cache: Optional[str] = None,
    query_cache_max: Optional[int] = None,
    on_disagreement: Optional[str] = None,
    disagreement_sink=None,
):
    """Resolve ``spec`` into a solver backend.

    ``timeout`` is a *default* per-query budget, threaded down into
    every constructed backend that does not set its own ``?timeout=``
    option.  ``stats`` is the per-backend tally sink, shared by every
    backend in a composite spec.  ``query_cache`` is the directory of
    the persistent query store, picked up by every ``cached:`` level of
    the spec (and ignored by specs without one); ``query_cache_max``
    caps that store's entry count with age-based GC.  ``on_disagreement``
    (``"raise"``/``"collect"``) and ``disagreement_sink`` are threaded
    to every ``portfolio`` level of the spec the same way — there is no
    spec syntax for portfolio-level options (a trailing ``?...`` binds
    to the last member), so collect mode is keyword-only.
    """
    if spec is None or spec == "":
        spec = "native"
    if not isinstance(spec, str):
        if not hasattr(spec, "solve"):
            raise BackendError(
                f"not a backend spec or solver object: {spec!r}"
            )
        # A prebuilt backend still gets the caller's tally sink (bind
        # never overwrites one that was set explicitly at construction).
        if stats is not None:
            binder = getattr(spec, "bind_stats", None)
            if callable(binder):
                binder(stats)
        return spec
    match = _SCHEME_RE.match(spec.strip())
    if not match:
        raise BackendError(f"malformed backend spec {spec!r}")
    scheme, rest = match.group(1), match.group(2)
    factory = _REGISTRY.get(scheme)
    if factory is None:
        raise BackendError(
            f"unknown solver backend {scheme!r}; registered schemes: "
            + ", ".join(registered_backends())
        )
    # Optional extras are offered only to factories whose signatures
    # accept them: factories registered against older, narrower
    # contracts (``factory(rest, timeout=..., stats=...)``) keep
    # working and simply are not offered what they cannot consume.
    extras = {
        "query_cache": query_cache,
        "query_cache_max": query_cache_max,
        "on_disagreement": on_disagreement,
        "disagreement_sink": disagreement_sink,
    }
    kwargs = {
        key: value
        for key, value in extras.items()
        if value is not None and _accepts_keyword(factory, key)
    }
    return factory(rest, timeout=timeout, stats=stats, **kwargs)


def _accepts_keyword(factory: BackendFactory, keyword: str) -> bool:
    import inspect

    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins/C callables: assume legacy
        return False
    return keyword in parameters or any(
        p.kind == p.VAR_KEYWORD for p in parameters.values()
    )


# -- spec-string helpers ------------------------------------------------------


def _split_rest(rest: str) -> Tuple[str, Dict[str, object]]:
    """Split ``":body?k=v&..."`` into (body, options)."""
    if rest.startswith(":"):
        rest = rest[1:]
    body, _, query = rest.partition("?")
    return body, _parse_options(query)


def _parse_options(query: str) -> Dict[str, object]:
    options: Dict[str, object] = {}
    for item in query.split("&") if query else ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise BackendError(
                f"malformed backend option {item!r} (expected key=value)"
            )
        options[key] = _coerce(value)
    return options


def _coerce(value: str) -> object:
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def _require_numeric_options(scheme: str, options: Dict[str, object]) -> None:
    """All spec-expressible solver options are numbers; catch a
    ``?timeout=abc`` typo at spec-resolution time instead of letting it
    crash deep inside a solve call."""
    for key, value in options.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BackendError(
                f"{scheme} option {key!r} expects a number, got {value!r}"
            )


# -- built-in schemes ---------------------------------------------------------


def _native_factory(rest, *, timeout=None, stats=None, query_cache=None):
    body, options = _split_rest(rest)
    if body:
        raise BackendError(
            f"native backend takes no argument (got {body!r})"
        )
    _require_numeric_options("native", options)
    if timeout is not None:
        options.setdefault("timeout", timeout)
    return NativeBackend(stats=stats, **options)


def _smtlib_factory(rest, *, timeout=None, stats=None, query_cache=None):
    command, options = _split_rest(rest)
    unknown = set(options) - {"timeout"}
    if unknown:
        raise BackendError(
            f"smtlib backend does not accept option(s) {sorted(unknown)}"
        )
    _require_numeric_options("smtlib", options)
    if timeout is not None:
        options.setdefault("timeout", timeout)
    return SmtLibBackend(command or "z3", stats=stats, **options)


def _session_factory(rest, *, timeout=None, stats=None, query_cache=None):
    command, options = _split_rest(rest)
    unknown = set(options) - {"timeout", "reset_every", "pooled"}
    if unknown:
        raise BackendError(
            f"session backend does not accept option(s) {sorted(unknown)}"
        )
    _require_numeric_options("session", options)
    if timeout is not None:
        options.setdefault("timeout", timeout)
    # Pooled by default: sessions are leased from the process-wide
    # SessionPool, so spawns amortize across jobs and backend
    # instances.  ``?pooled=0`` restores a private per-backend process
    # (benchmarks use it as the spawn-per-job baseline).
    if options.pop("pooled", 1):
        return PooledSessionBackend(command or "z3", stats=stats, **options)
    return SessionBackend(command or "z3", stats=stats, **options)


def detect_solver_binaries() -> List[str]:
    """The known SMT string-solver binaries resolvable on PATH."""
    return [name for name in ("z3", "cvc5", "cvc4") if shutil.which(name)]


def _portfolio_factory(
    rest, *, timeout=None, stats=None, query_cache=None,
    query_cache_max=None, on_disagreement=None, disagreement_sink=None,
):
    # Members are full specs (each may carry its own ``?options``), so
    # the body is split on '+' only; there are no portfolio-level query
    # options — the shared default ``timeout`` flows into every member.
    body = rest[1:] if rest.startswith(":") else rest
    if body == "auto":
        # Auto-detect installed solver binaries; each one races the
        # native solver through an incremental session (the fast path).
        member_specs = ["native"] + [
            f"session:{binary}" for binary in detect_solver_binaries()
        ]
        if len(member_specs) == 1:
            warnings.warn(
                "portfolio:auto found no SMT solver binary on PATH "
                "(looked for z3, cvc5, cvc4); degrading to native alone",
                stacklevel=2,
            )
            return make_backend(
                "native", timeout=timeout, stats=stats
            )
    else:
        member_specs = [m for m in body.split("+") if m]
    if not member_specs:
        raise BackendError(
            "portfolio needs members, e.g. portfolio:native+smtlib"
        )
    members = [
        make_backend(
            member,
            timeout=timeout,
            stats=stats,
            query_cache=query_cache,
            query_cache_max=query_cache_max,
            on_disagreement=on_disagreement,
            disagreement_sink=disagreement_sink,
        )
        for member in member_specs
    ]
    return PortfolioBackend(
        members,
        stats=stats,
        on_disagreement=on_disagreement or "raise",
        disagreement_sink=disagreement_sink,
    )


def _route_factory(
    rest, *, timeout=None, stats=None, query_cache=None,
    on_disagreement=None, disagreement_sink=None,
):
    command, options = _split_rest(rest)
    unknown = set(options) - {"timeout", "reset_every"}
    if unknown:
        raise BackendError(
            f"route backend does not accept option(s) {sorted(unknown)}"
        )
    _require_numeric_options("route", options)
    if timeout is not None:
        options.setdefault("timeout", timeout)
    command = command or "z3"
    session_options = dict(options)
    native_timeout = options.get("timeout")
    native_options = (
        {} if native_timeout is None else {"timeout": native_timeout}
    )

    def native():
        return NativeBackend(stats=stats, **native_options)

    def session():
        # Pooled: the router's session target and the portfolio's
        # session member lease from the same process-wide pool, so a
        # routed batch holds a handful of live processes total.
        return PooledSessionBackend(command, stats=stats, **session_options)

    # The portfolio gets its own member instances: its abandoned
    # stragglers may still run when the router dispatches the next
    # query straight to `native`/`session`, which are not re-entrant.
    return RouterBackend(
        native(),
        session(),
        PortfolioBackend(
            [native(), session()],
            stats=stats,
            on_disagreement=on_disagreement or "raise",
            disagreement_sink=disagreement_sink,
        ),
        stats=stats,
    )


def _cached_factory(
    rest, *, timeout=None, stats=None, query_cache=None,
    query_cache_max=None, on_disagreement=None, disagreement_sink=None,
):
    if not rest.startswith(":") or len(rest) == 1:
        raise BackendError(
            "cached needs an inner backend, e.g. cached:native"
        )
    inner = make_backend(
        rest[1:],
        timeout=timeout,
        stats=stats,
        query_cache=query_cache,
        query_cache_max=query_cache_max,
        on_disagreement=on_disagreement,
        disagreement_sink=disagreement_sink,
    )
    return CachedBackend(
        inner,
        cache=QueryCache(
            store_path=query_cache, store_max_entries=query_cache_max
        )
        if query_cache
        else None,
        tally_stats=stats,
        stats=stats,
    )


register_backend("native", _native_factory)
register_backend("smtlib", _smtlib_factory)
register_backend("session", _session_factory)
register_backend("portfolio", _portfolio_factory)
register_backend("route", _route_factory)
register_backend("cached", _cached_factory)
