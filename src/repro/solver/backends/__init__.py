"""Pluggable solver backends.

The paper dispatches its capturing-language constraints to Z3 over the
SMT-LIB string theory; this reproduction ships its own bounded native
solver.  This package makes the choice a first-class, *pluggable* API:

- :class:`SolverBackend` — the protocol every backend satisfies
  (``name``, ``solve(formula) -> SolverResult``, per-backend tallies);
- :func:`make_backend` — resolve a string *spec* into a backend:

  ========================   ==============================================
  ``native``                 the built-in bounded solver
  ``native?timeout=2``       same, with options
  ``smtlib:z3``              external SMT-LIB solver subprocess (z3/cvc5);
                             degrades to UNKNOWN when no binary exists
  ``session:z3``             live incremental solver processes leased from
                             the process-wide :class:`SessionPool` (push/pop
                             per query; spawns amortize across jobs);
                             ``?pooled=0`` for a private process
  ``portfolio:native+smtlib``  race members, first definitive answer wins
  ``portfolio:auto``         native + a session per installed binary
  ``route:z3``               per-query feature routing (captures→native,
                             classical→session, mixed→portfolio)
  ``cached:<inner>``         memoize definitive answers of any inner spec
                             (persistently, with a ``query_cache`` dir)
  ========================   ==============================================

- :func:`register_backend` — add new schemes at runtime.

Soundness across backends follows the layering argument of Algorithm 1:
any backend may answer UNKNOWN, but SAT must come with a model that
validates and UNSAT must be definitive, so definitive answers from *any*
registered backend are interchangeable.
"""

from repro.solver.backends.base import (
    BackendDisagreement,
    BackendError,
    SolverBackend,
)
from repro.solver.backends.cached import (
    CachedBackend,
    QueryCache,
    QueryDiskStore,
)
from repro.solver.backends.native import NativeBackend
from repro.solver.backends.pool import (
    PooledSessionBackend,
    SessionPool,
    get_session_pool,
    reset_session_pool,
)
from repro.solver.backends.portfolio import PortfolioBackend
from repro.solver.backends.registry import (
    detect_solver_binaries,
    make_backend,
    register_backend,
    registered_backends,
)
from repro.solver.backends.router import RouterBackend, classify_formula
from repro.solver.backends.session import SessionBackend
from repro.solver.backends.smtlib import SmtLibBackend

__all__ = [
    "BackendDisagreement",
    "BackendError",
    "CachedBackend",
    "NativeBackend",
    "PooledSessionBackend",
    "PortfolioBackend",
    "QueryCache",
    "QueryDiskStore",
    "RouterBackend",
    "SessionBackend",
    "SessionPool",
    "SmtLibBackend",
    "SolverBackend",
    "classify_formula",
    "detect_solver_binaries",
    "get_session_pool",
    "make_backend",
    "register_backend",
    "registered_backends",
]
