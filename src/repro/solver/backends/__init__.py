"""Pluggable solver backends.

The paper dispatches its capturing-language constraints to Z3 over the
SMT-LIB string theory; this reproduction ships its own bounded native
solver.  This package makes the choice a first-class, *pluggable* API:

- :class:`SolverBackend` — the protocol every backend satisfies
  (``name``, ``solve(formula) -> SolverResult``, per-backend tallies);
- :func:`make_backend` — resolve a string *spec* into a backend:

  ========================   ==============================================
  ``native``                 the built-in bounded solver
  ``native?timeout=2``       same, with options
  ``smtlib:z3``              external SMT-LIB solver subprocess (z3/cvc5);
                             degrades to UNKNOWN when no binary exists
  ``portfolio:native+smtlib``  race members, first definitive answer wins
  ``cached:<inner>``         memoize definitive answers of any inner spec
  ========================   ==============================================

- :func:`register_backend` — add new schemes at runtime.

Soundness across backends follows the layering argument of Algorithm 1:
any backend may answer UNKNOWN, but SAT must come with a model that
validates and UNSAT must be definitive, so definitive answers from *any*
registered backend are interchangeable.
"""

from repro.solver.backends.base import (
    BackendDisagreement,
    BackendError,
    SolverBackend,
)
from repro.solver.backends.cached import CachedBackend
from repro.solver.backends.native import NativeBackend
from repro.solver.backends.portfolio import PortfolioBackend
from repro.solver.backends.registry import (
    make_backend,
    register_backend,
    registered_backends,
)
from repro.solver.backends.smtlib import SmtLibBackend

__all__ = [
    "BackendDisagreement",
    "BackendError",
    "CachedBackend",
    "NativeBackend",
    "PortfolioBackend",
    "SmtLibBackend",
    "SolverBackend",
    "make_backend",
    "register_backend",
    "registered_backends",
]
