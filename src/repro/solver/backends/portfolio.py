"""Portfolio backend: race member backends, first definitive answer wins.

The soundness argument mirrors the layering in Algorithm 1 (and the
abstract-interpretation framing of Tiraboschi et al.): every member is
individually sound — SAT comes with a validated model, UNSAT is
definitive, UNKNOWN is always allowed — so whichever member answers
first with a definitive verdict can be returned without consulting the
rest.  Two invariants are enforced:

- **UNKNOWN never masks a definitive answer** among the members racing
  a query: the race keeps waiting until either some participant is
  definitive or *every* participant has come back UNKNOWN (or failed).
  Participation is single-flight per member (see ``_inflight``): a
  member still busy with an abandoned straggler from an earlier query
  sits the new query out, so a consistently-slower member (e.g. a
  subprocess racing an in-process solver) contributes only to the
  queries it can keep up with — the portfolio's answer is then the
  best among the members that ran, never worse than them.
- **Disagreeing definitive answers never pick a silent winner.**  If
  two members observably return SAT and UNSAT for the same formula,
  that is a soundness bug somewhere.  Under the default
  ``on_disagreement="raise"`` a structured
  :class:`BackendDisagreement` (member names, statuses, canonical
  fingerprint) is raised.  Under ``on_disagreement="collect"`` the
  contradiction is *recorded* — a stats tally keyed by the member
  pair, a ``portfolio:disagreement`` event, and an optional
  ``disagreement_sink(formula, detail)`` callback (how the
  conformance triage pipeline captures artifacts) — and the race
  resolves with the answer from the member backed by the native
  solver, whose verdicts are validated/bounded by construction, so
  long fuzzing runs degrade gracefully instead of dying on the first
  find.  After the first definitive answer the race only waits
  ``agreement_grace`` seconds for stragglers — racing would be
  pointless if it always joined the slowest member — so a
  disagreement with a much slower member can go unobserved by
  construction; the grace window is the knob.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from time import monotonic, perf_counter
from typing import Optional, Sequence, Tuple

from repro import obs
from repro.constraints.formulas import Formula
from repro.constraints.printer import canonical_fingerprint
from repro.solver.core import SAT, SolverResult, UNKNOWN, UNSAT
from repro.solver.stats import SolverStats

from repro.solver.backends.base import (
    BackendDisagreement,
    BackendError,
    SolverBackend,
)

#: A definitive race outcome: the result plus the member that produced
#: it (needed to name both sides of a disagreement and to prefer the
#: native-backed member when resolving one).
_Pick = Tuple[SolverResult, object]


class PortfolioBackend(SolverBackend):
    """``portfolio:a+b+...`` — thread-race complementary backends."""

    def __init__(
        self,
        members: Sequence[object],
        *,
        timeout: Optional[float] = None,
        agreement_grace: float = 0.05,
        stats: Optional[SolverStats] = None,
        on_disagreement: str = "raise",
        disagreement_sink=None,
    ):
        super().__init__(stats)
        self.members = list(members)
        if not self.members:
            raise BackendError("portfolio needs at least one member")
        if on_disagreement not in ("raise", "collect"):
            raise BackendError(
                f"on_disagreement must be 'raise' or 'collect', "
                f"not {on_disagreement!r}"
            )
        self.timeout = timeout
        self.agreement_grace = agreement_grace
        self.on_disagreement = on_disagreement
        #: Optional ``sink(formula, detail)`` called (collect mode only)
        #: with the offending formula and the structured
        #: :class:`BackendDisagreement`; sink errors are swallowed — a
        #: broken recorder must not turn graceful degradation back into
        #: a crash.
        self.disagreement_sink = disagreement_sink
        self.name = "portfolio:" + "+".join(
            getattr(m, "name", type(m).__name__) for m in self.members
        )
        #: One long-lived executor per backend (not per query): a DSE
        #: run issues hundreds of queries and thread spawn-per-solve
        #: would dominate.
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Single-flight guard, one slot per member.  Member backends
        #: (like :class:`Solver` itself) are not re-entrant — a second
        #: concurrent ``solve`` would race their per-query state — so a
        #: member whose abandoned straggler from an earlier query is
        #: still running simply sits this query out.  That also bounds
        #: in-flight work to one task per member: stragglers can never
        #: accumulate and starve later queries.
        self._inflight: list = [None] * len(self.members)

    def bind_stats(self, stats: SolverStats) -> None:
        super().bind_stats(stats)
        for member in self.members:
            binder = getattr(member, "bind_stats", None)
            if callable(binder):
                binder(stats)

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        try:
            result = self._race(formula)
        except BackendDisagreement:
            self._tally("error", perf_counter() - started)
            raise
        self._tally(result.status, perf_counter() - started)
        return result

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self.members),
                thread_name_prefix="portfolio",
            )
        return self._pool

    def close(self) -> None:
        """Release the worker threads (idempotent; mostly for tests)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _race(self, formula: Formula) -> SolverResult:
        deadline = (
            monotonic() + self.timeout if self.timeout is not None else None
        )
        pool = self._ensure_pool()
        futures = {}
        # Contextvars do not cross into the executor's threads, so the
        # caller's open span is passed explicitly — member spans (and
        # the backends' own complete-spans beneath them) stay nested
        # under the query instead of floating as roots.
        parent = obs.current_span()
        for index, member in enumerate(self.members):
            straggler = self._inflight[index]
            if straggler is not None and not straggler.done():
                continue  # still busy with an abandoned earlier query
            future = pool.submit(
                self._member_solve, member, formula, parent
            )
            self._inflight[index] = future
            futures[future] = member
        if not futures:
            # Every member is busy with a straggler (only possible for
            # concurrent callers; a sequential caller always finds the
            # member that answered its previous query free).
            return SolverResult(UNKNOWN)
        # Stragglers are abandoned, not joined: they run out their own
        # timeouts on their member's slot and their late results are
        # discarded with the future.
        definitive = self._await_definitive(futures, deadline, formula)
        if definitive is None:
            return SolverResult(UNKNOWN)
        return definitive

    def _member_solve(self, member, formula: Formula, parent) -> SolverResult:
        """One member's leg of the race, on an executor thread.

        Losers are recorded exactly like winners: each leg gets its own
        span (abandoned stragglers simply finish late), so a trace shows
        what every member spent, not just the answer that was kept.  A
        *crashed* member (anything but a disagreement) still degrades
        the race to UNKNOWN, but no longer silently: the exception is
        recorded in the member's backend tally (``errors`` +
        ``last_error``) and on the leg span's ``error`` attribute, so
        crashes are diagnosable from payloads and traces.
        """
        name = getattr(member, "name", type(member).__name__)
        started = perf_counter()
        with obs.span(
            "portfolio:member", parent=parent, member=name
        ) as leg:
            try:
                result = member.solve(formula)
            except BackendDisagreement:
                leg.set(status="error", error="backend disagreement")
                raise
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                leg.set(status="error", error=detail)
                if self.stats is not None:
                    # Members tally their own successes; a crash never
                    # reached their tally path, so the portfolio books
                    # it for them — with the detail, not a bare count.
                    self.stats.record_backend(
                        name, "error", perf_counter() - started,
                        error=detail,
                    )
                obs.event(
                    "portfolio:member_crash",
                    portfolio=self.name,
                    member=name,
                    error=detail,
                )
                raise
            leg.set(status=result.status)
            return result

    def _await_definitive(
        self, futures, deadline: Optional[float], formula: Formula
    ) -> Optional[SolverResult]:
        pending = set(futures)
        while pending:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - monotonic())
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:  # overall portfolio timeout
                return None
            winner = self._pick_definitive(done, futures, formula)
            if winner is not None:
                # Grace window: let near-simultaneous members land so a
                # contradiction is caught rather than raced past.  A
                # collect-mode resolution during the grace scan can
                # override the answer (native member preference).
                done2, _ = wait(pending, timeout=self.agreement_grace)
                winner = self._pick_definitive(
                    done2, futures, formula, against=winner
                )
                obs.event(
                    "portfolio:winner",
                    portfolio=self.name,
                    member=getattr(
                        winner[1], "name", type(winner[1]).__name__
                    ),
                    status=winner[0].status,
                )
                return winner[0]
        return None

    def _pick_definitive(
        self, done, futures, formula: Formula,
        against: Optional[_Pick] = None,
    ) -> Optional[_Pick]:
        """Scan finished futures for a definitive ``(result, member)``.

        A contradiction against the current best is routed through
        :meth:`_resolve_disagreement` — which raises (default) or
        returns the resolved pair (collect mode).  With ``against``
        set (the grace-window scan) the earlier winner is the starting
        best, so the return value is never ``None``."""
        best = against
        for future in done:
            result = self._result_of(future)
            if result is None or result.status not in (SAT, UNSAT):
                continue
            if best is not None and result.status != best[0].status:
                best = self._resolve_disagreement(
                    formula, best, (result, futures[future])
                )
                continue
            if best is None:
                best = (result, futures[future])
        return best

    def _resolve_disagreement(
        self, formula: Formula, a: _Pick, b: _Pick
    ) -> _Pick:
        """Handle a SAT-vs-UNSAT contradiction between pairs ``a``/``b``.

        Raise mode: raise the structured :class:`BackendDisagreement`.
        Collect mode: tally the member pair, emit an event, feed the
        optional sink, and return the pair whose member is backed by
        the native solver (falling back to ``a``, the first answer).
        """
        a_name = getattr(a[1], "name", type(a[1]).__name__)
        b_name = getattr(b[1], "name", type(b[1]).__name__)
        try:
            fingerprint = canonical_fingerprint(formula)[0]
        except Exception:
            fingerprint = None  # never let fingerprinting mask the find
        detail = BackendDisagreement(
            f"{self.name}: members disagree on the same formula — "
            f"{a_name} says {a[0].status}, {b_name} says {b[0].status} "
            f"(fingerprint: {fingerprint!r})",
            members=(a_name, b_name),
            statuses=(str(a[0].status), str(b[0].status)),
            fingerprint=fingerprint,
        )
        if self.on_disagreement != "collect":
            raise detail
        if self.stats is not None:
            self.stats.record_disagreement(f"{a_name}|{b_name}")
        obs.event(
            "portfolio:disagreement",
            portfolio=self.name,
            **detail.payload(),
        )
        if self.disagreement_sink is not None:
            try:
                self.disagreement_sink(formula, detail)
            except Exception:
                pass  # a broken recorder must not re-crash the race
        if self._native_backed(b[1]) and not self._native_backed(a[1]):
            return b
        return a

    @staticmethod
    def _native_backed(member) -> bool:
        """Whether ``member`` is (or wraps) the built-in native solver.

        Decorators expose their inner backend as ``.solver`` (cached
        wrappers) — follow that chain rather than trusting names alone.
        """
        from repro.solver.backends.native import NativeBackend

        seen = set()
        while member is not None and id(member) not in seen:
            seen.add(id(member))
            if isinstance(member, NativeBackend):
                return True
            member = getattr(member, "solver", None)
        return False

    @staticmethod
    def _result_of(future: Future) -> Optional[SolverResult]:
        exc = future.exception()
        if exc is not None:
            if isinstance(exc, BackendDisagreement):
                raise exc  # nested portfolios stay loud
            return None  # a crashed member is just UNKNOWN
        return future.result()
