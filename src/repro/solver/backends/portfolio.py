"""Portfolio backend: race member backends, first definitive answer wins.

The soundness argument mirrors the layering in Algorithm 1 (and the
abstract-interpretation framing of Tiraboschi et al.): every member is
individually sound — SAT comes with a validated model, UNSAT is
definitive, UNKNOWN is always allowed — so whichever member answers
first with a definitive verdict can be returned without consulting the
rest.  Two invariants are enforced:

- **UNKNOWN never masks a definitive answer** among the members racing
  a query: the race keeps waiting until either some participant is
  definitive or *every* participant has come back UNKNOWN (or failed).
  Participation is single-flight per member (see ``_inflight``): a
  member still busy with an abandoned straggler from an earlier query
  sits the new query out, so a consistently-slower member (e.g. a
  subprocess racing an in-process solver) contributes only to the
  queries it can keep up with — the portfolio's answer is then the
  best among the members that ran, never worse than them.
- **Disagreeing definitive answers raise loudly.**  If two members
  observably return SAT and UNSAT for the same formula, that is a
  soundness bug somewhere and :class:`BackendDisagreement` is raised
  instead of silently picking a winner.  After the first definitive
  answer the race only waits ``agreement_grace`` seconds for
  stragglers — racing would be pointless if it always joined the
  slowest member — so a disagreement with a much slower member can go
  unobserved by construction; the grace window is the knob.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from time import monotonic, perf_counter
from typing import Optional, Sequence, Tuple

from repro import obs
from repro.constraints.formulas import Formula
from repro.solver.core import SAT, SolverResult, UNKNOWN, UNSAT
from repro.solver.stats import SolverStats

from repro.solver.backends.base import (
    BackendDisagreement,
    BackendError,
    SolverBackend,
)


class PortfolioBackend(SolverBackend):
    """``portfolio:a+b+...`` — thread-race complementary backends."""

    def __init__(
        self,
        members: Sequence[object],
        *,
        timeout: Optional[float] = None,
        agreement_grace: float = 0.05,
        stats: Optional[SolverStats] = None,
    ):
        super().__init__(stats)
        self.members = list(members)
        if not self.members:
            raise BackendError("portfolio needs at least one member")
        self.timeout = timeout
        self.agreement_grace = agreement_grace
        self.name = "portfolio:" + "+".join(
            getattr(m, "name", type(m).__name__) for m in self.members
        )
        #: One long-lived executor per backend (not per query): a DSE
        #: run issues hundreds of queries and thread spawn-per-solve
        #: would dominate.
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Single-flight guard, one slot per member.  Member backends
        #: (like :class:`Solver` itself) are not re-entrant — a second
        #: concurrent ``solve`` would race their per-query state — so a
        #: member whose abandoned straggler from an earlier query is
        #: still running simply sits this query out.  That also bounds
        #: in-flight work to one task per member: stragglers can never
        #: accumulate and starve later queries.
        self._inflight: list = [None] * len(self.members)

    def bind_stats(self, stats: SolverStats) -> None:
        super().bind_stats(stats)
        for member in self.members:
            binder = getattr(member, "bind_stats", None)
            if callable(binder):
                binder(stats)

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        try:
            result = self._race(formula)
        except BackendDisagreement:
            self._tally("error", perf_counter() - started)
            raise
        self._tally(result.status, perf_counter() - started)
        return result

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self.members),
                thread_name_prefix="portfolio",
            )
        return self._pool

    def close(self) -> None:
        """Release the worker threads (idempotent; mostly for tests)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _race(self, formula: Formula) -> SolverResult:
        deadline = (
            monotonic() + self.timeout if self.timeout is not None else None
        )
        pool = self._ensure_pool()
        futures = {}
        # Contextvars do not cross into the executor's threads, so the
        # caller's open span is passed explicitly — member spans (and
        # the backends' own complete-spans beneath them) stay nested
        # under the query instead of floating as roots.
        parent = obs.current_span()
        for index, member in enumerate(self.members):
            straggler = self._inflight[index]
            if straggler is not None and not straggler.done():
                continue  # still busy with an abandoned earlier query
            future = pool.submit(
                self._member_solve, member, formula, parent
            )
            self._inflight[index] = future
            futures[future] = member
        if not futures:
            # Every member is busy with a straggler (only possible for
            # concurrent callers; a sequential caller always finds the
            # member that answered its previous query free).
            return SolverResult(UNKNOWN)
        # Stragglers are abandoned, not joined: they run out their own
        # timeouts on their member's slot and their late results are
        # discarded with the future.
        definitive = self._await_definitive(futures, deadline)
        if definitive is None:
            return SolverResult(UNKNOWN)
        return definitive

    def _member_solve(self, member, formula: Formula, parent) -> SolverResult:
        """One member's leg of the race, on an executor thread.

        Losers are recorded exactly like winners: each leg gets its own
        span (abandoned stragglers simply finish late), so a trace shows
        what every member spent, not just the answer that was kept.  A
        *crashed* member (anything but a disagreement) still degrades
        the race to UNKNOWN, but no longer silently: the exception is
        recorded in the member's backend tally (``errors`` +
        ``last_error``) and on the leg span's ``error`` attribute, so
        crashes are diagnosable from payloads and traces.
        """
        name = getattr(member, "name", type(member).__name__)
        started = perf_counter()
        with obs.span(
            "portfolio:member", parent=parent, member=name
        ) as leg:
            try:
                result = member.solve(formula)
            except BackendDisagreement:
                leg.set(status="error", error="backend disagreement")
                raise
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                leg.set(status="error", error=detail)
                if self.stats is not None:
                    # Members tally their own successes; a crash never
                    # reached their tally path, so the portfolio books
                    # it for them — with the detail, not a bare count.
                    self.stats.record_backend(
                        name, "error", perf_counter() - started,
                        error=detail,
                    )
                obs.event(
                    "portfolio:member_crash",
                    portfolio=self.name,
                    member=name,
                    error=detail,
                )
                raise
            leg.set(status=result.status)
            return result

    def _await_definitive(
        self, futures, deadline: Optional[float]
    ) -> Optional[SolverResult]:
        pending = set(futures)
        while pending:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - monotonic())
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:  # overall portfolio timeout
                return None
            definitive = self._pick_definitive(done, futures)
            if definitive is not None:
                # Grace window: let near-simultaneous members land so a
                # contradiction is caught rather than raced past.
                done2, _ = wait(pending, timeout=self.agreement_grace)
                self._pick_definitive(done2, futures, against=definitive)
                return definitive
        return None

    def _pick_definitive(
        self, done, futures, against: Optional[SolverResult] = None
    ) -> Optional[SolverResult]:
        """Scan finished futures; raise on contradiction, return the
        first definitive result (respecting an earlier ``against``)."""
        best: Optional[Tuple[SolverResult, object]] = None
        if against is not None:
            best = (against, None)
        for future in done:
            result = self._result_of(future)
            if result is None or result.status not in (SAT, UNSAT):
                continue
            if best is not None and result.status != best[0].status:
                raise BackendDisagreement(
                    f"{self.name}: members disagree on the same formula — "
                    f"{best[0].status} vs {result.status} "
                    f"(from {getattr(futures[future], 'name', '?')})"
                )
            if best is None:
                best = (result, futures[future])
        if best is None or best[1] is None:
            return None
        obs.event(
            "portfolio:winner",
            portfolio=self.name,
            member=getattr(best[1], "name", type(best[1]).__name__),
            status=best[0].status,
        )
        return best[0]

    @staticmethod
    def _result_of(future: Future) -> Optional[SolverResult]:
        exc = future.exception()
        if exc is not None:
            if isinstance(exc, BackendDisagreement):
                raise exc  # nested portfolios stay loud
            return None  # a crashed member is just UNKNOWN
        return future.result()
