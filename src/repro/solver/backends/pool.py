"""Process-wide pool of live incremental solver sessions.

The ``session:`` backend (PR 4) amortizes subprocess spawns *within*
one backend instance — which in the batch service means within one job:
every job builds its own backend stack, so a batch of single-query
solve jobs still spawns one solver process per job, and the CEGAR
loop's refined-query stream re-pays the spawn whenever a fresh backend
is constructed.  This module moves session ownership up to the process:

- :class:`SessionPool` keeps a small number of live
  :class:`~repro.solver.backends.session.SessionBackend` processes per
  distinct ``(command, timeout, reset_every)`` key.  ``checkout`` hands
  a caller *exclusive* use of one session (spawning lazily up to
  ``max_per_key``); concurrent callers on other threads either receive
  distinct sessions or wait briefly on the pool's request queue — a
  session is never shared between two in-flight queries, so interleaved
  ``push``/``pop`` scopes cannot cross-talk.  A caller that waited
  longer than ``wait_timeout`` gets a private *overflow* session
  (closed on release) rather than an error: the pool bounds residency,
  not progress.
- :class:`PooledSessionBackend` is the drop-in ``session:`` backend
  over the pool: per query it checks a session out, solves, and returns
  it.  All session semantics (incremental deltas, guarded encoding,
  native SAT re-validation, restart-once-per-query) are exactly those
  of the leased :class:`SessionBackend` — the pool only changes who
  owns the process and for how long.

While leased, the session's lifecycle events (spawns, restarts, resets,
queries, lifetime) are recorded into the *caller's*
:class:`~repro.solver.stats.SolverStats`, alongside the pool's own
``checkouts``/``waits`` counters — so per-job payloads and batch
reports show exactly which share of the shared processes each job used,
and ``queries_per_spawn`` measures amortization across jobs, not just
within one.

The default pool is process-global (one per worker process in the batch
runner); sessions hold only daemon reader threads and pipes, and an
``atexit`` hook closes whatever is idle at interpreter shutdown.
"""

from __future__ import annotations

import atexit
import threading
from time import monotonic
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.constraints.formulas import Formula
from repro.faults.breaker import get_breaker
from repro.solver.core import SolverResult, UNKNOWN
from repro.solver.stats import SolverStats

from repro.solver.backends.base import SolverBackend
from repro.solver.backends.session import (
    SessionBackend,
    probe_solver_command,
)

_PoolKey = Tuple[str, float, int]


class SessionPool:
    """A keyed pool of live incremental solver sessions.

    ``max_per_key`` bounds how many concurrent processes one spec may
    hold (a single-threaded worker needs one; a router whose portfolio
    stragglers overlap the next direct query needs a second).
    ``wait_timeout`` bounds how long a checkout blocks on the request
    queue before falling back to a private overflow session.
    """

    def __init__(
        self,
        max_per_key: int = 4,
        wait_timeout: float = 1.0,
        idle_timeout: Optional[float] = None,
    ):
        self.max_per_key = max(1, int(max_per_key))
        self.wait_timeout = wait_timeout
        self.idle_timeout = idle_timeout
        self._cond = threading.Condition()
        self._idle: Dict[_PoolKey, List[SessionBackend]] = {}
        self._leased: Dict[_PoolKey, int] = {}
        self._closed = False
        self._reaper: Optional[threading.Thread] = None
        self._reaper_stop = threading.Event()
        # -- lifetime counters (pool-wide; per-caller shares land in the
        # caller's SolverStats via checkout) -----------------------------
        self.checkouts = 0
        self.waits = 0
        self.overflows = 0
        self.reaped = 0

    # -- leasing -------------------------------------------------------------

    def checkout(
        self,
        command: str,
        *,
        timeout: float = 5.0,
        reset_every: int = 512,
        stats: Optional[SolverStats] = None,
    ) -> "SessionLease":
        """Lease one live session for exclusive use (context manager).

        The leased session's stats sink is rebound to ``stats`` for the
        duration, so its lifecycle events are attributed to the caller.
        """
        key = (command, float(timeout), int(reset_every))
        name = f"session:{command}"
        waited = False
        overflow = False
        with self._cond:
            self.checkouts += 1
            deadline = None
            while True:
                idle = self._idle.get(key)
                if idle:
                    session = idle.pop()
                    break
                if self._leased.get(key, 0) < self.max_per_key:
                    session = None  # spawn outside the lock
                    break
                if deadline is None:
                    deadline = monotonic() + self.wait_timeout
                    waited = True
                    self.waits += 1
                remaining = deadline - monotonic()
                timed_out = remaining <= 0 or not self._cond.wait(
                    remaining
                )
                # A timed-out wait still loops once more: notify_all on
                # a condition shared across keys can wake this waiter
                # last, *after* a matching session was already parked —
                # only a confirmed-empty re-check declares overflow.
                if timed_out:
                    if self._idle.get(key) or (
                        self._leased.get(key, 0) < self.max_per_key
                    ):
                        continue
                    # Saturated past the grace period: a private session
                    # keeps this query moving; it is closed on release.
                    overflow = True
                    self.overflows += 1
                    session = None
                    break
            if not overflow:
                self._leased[key] = self._leased.get(key, 0) + 1
        if session is None:
            session = SessionBackend(
                command, timeout=timeout, reset_every=reset_every
            )
        session.stats = stats
        if stats is not None:
            stats.record_session(
                name, checkouts=1, waits=1 if waited else 0
            )
        obs.event(
            "session:lease",
            session=name,
            waited=waited,
            overflow=overflow,
        )
        return SessionLease(self, key, session, overflow)

    def _release(
        self, key: _PoolKey, session: SessionBackend, overflow: bool
    ) -> None:
        # The releasing caller's stats stay bound between leases (the
        # next checkout rebinds): process lifetime is recorded at kill
        # time, and a session closed by ``close()``/atexit attributes
        # its remaining lifetime to its last lessee instead of losing
        # it to an unbound sink.  An overflow session closes while its
        # only lessee's sink is still attached, for the same reason.
        if overflow:
            session.close()
            return
        with self._cond:
            self._leased[key] = max(0, self._leased.get(key, 0) - 1)
            if self._closed:
                # Released after close()/reset: re-pooling would strand
                # a live solver process in a dead pool forever.
                closing = session
            else:
                closing = None
                session._parked_at = monotonic()
                self._idle.setdefault(key, []).append(session)
            # All keys share this condition; waiters re-check and
            # re-wait, so waking every one of them is what keeps a
            # key-B waiter from swallowing a key-A release.
            self._cond.notify_all()
        if closing is not None:
            closing.close()

    # -- idle reaping --------------------------------------------------------

    def set_idle_timeout(self, seconds: Optional[float]) -> None:
        """Arm (or with ``None`` disarm) the idle-session reaper.

        With a timeout set, a background daemon thread periodically
        closes idle sessions parked longer than ``seconds`` — a quiet
        serve daemon stops pinning solver processes instead of holding
        them until interpreter exit.  Leased sessions are never touched;
        the next checkout after a reap simply spawns fresh.
        """
        with self._cond:
            self.idle_timeout = seconds
            if not seconds or self._closed or self._reaper is not None:
                return
            self._reaper = threading.Thread(
                target=self._reap_loop,
                name="repro-session-reaper",
                daemon=True,
            )
        self._reaper.start()

    def reap_idle(self, max_idle: Optional[float] = None) -> int:
        """Close idle sessions parked longer than ``max_idle`` seconds
        (default: the armed ``idle_timeout``); returns how many."""
        limit = self.idle_timeout if max_idle is None else max_idle
        if limit is None:
            return 0
        cutoff = monotonic() - limit
        stale: List[SessionBackend] = []
        with self._cond:
            for key in list(self._idle):
                kept: List[SessionBackend] = []
                for session in self._idle[key]:
                    if getattr(session, "_parked_at", 0.0) > cutoff:
                        kept.append(session)
                    else:
                        stale.append(session)
                if kept:
                    self._idle[key] = kept
                else:
                    del self._idle[key]
            self.reaped += len(stale)
        for session in stale:
            session.close()
        if stale:
            obs.event("session:reap", closed=len(stale))
        return len(stale)

    def _reap_loop(self) -> None:
        while not self._reaper_stop.is_set():
            timeout = self.idle_timeout
            if not timeout:
                return
            self._reaper_stop.wait(max(0.05, timeout / 4.0))
            if self._reaper_stop.is_set():
                return
            self.reap_idle()

    # -- lifecycle -----------------------------------------------------------

    def idle_count(self, command: Optional[str] = None) -> int:
        with self._cond:
            return sum(
                len(sessions)
                for key, sessions in self._idle.items()
                if command is None or key[0] == command
            )

    def close(self) -> None:
        """Close every idle session and mark the pool closed: a lease
        still in flight (e.g. an abandoned portfolio straggler) closes
        its session on release instead of re-pooling it."""
        self._reaper_stop.set()
        with self._cond:
            idle, self._idle = self._idle, {}
            self._leased.clear()
            self._closed = True
        for sessions in idle.values():
            for session in sessions:
                session.close()


class SessionLease:
    """Exclusive use of one pooled session, released on ``__exit__``."""

    def __init__(
        self,
        pool: SessionPool,
        key: _PoolKey,
        session: SessionBackend,
        overflow: bool,
    ):
        self.pool = pool
        self.key = key
        self.session = session
        self.overflow = overflow

    def __enter__(self) -> SessionBackend:
        return self.session

    def __exit__(self, *exc) -> None:
        self.pool._release(self.key, self.session, self.overflow)


#: The process-global pool (one per worker process in the batch runner).
_GLOBAL_POOL: Optional[SessionPool] = None
_GLOBAL_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _close_global_pool() -> None:
    with _GLOBAL_LOCK:
        pool = _GLOBAL_POOL
    if pool is not None:
        pool.close()


def get_session_pool() -> SessionPool:
    global _GLOBAL_POOL, _ATEXIT_REGISTERED
    with _GLOBAL_LOCK:
        if _GLOBAL_POOL is None:
            _GLOBAL_POOL = SessionPool()
            if not _ATEXIT_REGISTERED:
                # One hook for whichever pool is current at exit —
                # re-registering per reset would pin every dead pool
                # (and its idle sessions) for the process's life.
                atexit.register(_close_global_pool)
                _ATEXIT_REGISTERED = True
        return _GLOBAL_POOL


def reset_session_pool() -> None:
    """Close the global pool's sessions and start fresh (tests)."""
    global _GLOBAL_POOL
    with _GLOBAL_LOCK:
        pool, _GLOBAL_POOL = _GLOBAL_POOL, None
    if pool is not None:
        pool.close()


class PooledSessionBackend(SolverBackend):
    """``session:<command>`` over the shared pool (the default form).

    Mirrors the :class:`SessionBackend` surface (``command`` /
    ``timeout`` / ``reset_every`` / ``available`` / ``last_error``) but
    owns no process: each query leases one from the pool, so a worker's
    jobs — and the CEGAR loop's refined queries across backend
    instances — amortize the same spawns.  ``close()`` is a no-op by
    design: the pool outlives any one backend, which is the point.
    """

    def __init__(
        self,
        command: str = "z3",
        *,
        timeout: float = 5.0,
        reset_every: int = 512,
        stats: Optional[SolverStats] = None,
        pool: Optional[SessionPool] = None,
    ):
        super().__init__(stats)
        self.command = command or "z3"
        self.timeout = timeout
        self.reset_every = max(1, int(reset_every))
        self.name = f"session:{self.command}"
        self._pool = pool
        self._available: Optional[bool] = None
        self.last_error: Optional[str] = None
        #: Per-command circuit breaker (process-global, shared with the
        #: raw sessions that feed it).  This is the *gate*: while open,
        #: queries short-circuit to UNKNOWN without touching the pool,
        #: and the router's fallback answers natively instead.
        self.breaker = get_breaker(self.name)

    @property
    def pool(self) -> SessionPool:
        return self._pool if self._pool is not None else get_session_pool()

    @property
    def available(self) -> bool:
        """Whether the solver binary resolves on PATH (probed once)."""
        if self._available is None:
            self._available = probe_solver_command(self.command) is None
        return self._available

    @property
    def circuit_open(self) -> bool:
        """Non-consuming breaker peek (the router's divert signal)."""
        return self.breaker.peek_open()

    def solve(self, formula: Formula) -> SolverResult:
        if not self.available:
            # Match SessionBackend: no process is ever touched, so no
            # checkout either — the pool stays empty on binary-less
            # machines and the router's native fallback takes over.
            self.last_error = probe_solver_command(self.command)
            return SolverResult(UNKNOWN)
        if not self.breaker.allow():
            # Open breaker (and no probe slot): the command has been
            # failing repeatedly — short-circuit to UNKNOWN for the
            # cool-down window instead of paying spawn-and-fail again.
            self.last_error = f"circuit open for {self.command!r}"
            if self.stats is not None:
                self.stats.record_breaker(self.name, "short_circuit")
            return SolverResult(UNKNOWN)
        with self.pool.checkout(
            self.command,
            timeout=self.timeout,
            reset_every=self.reset_every,
            stats=self.stats,
        ) as session:
            result = session.solve(formula)
            self.last_error = session.last_error
        return result

    def close(self) -> None:
        """No-op: pooled sessions outlive the backend (see class doc)."""
