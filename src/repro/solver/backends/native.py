"""The built-in bounded string solver as a backend."""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.constraints.formulas import Formula
from repro.solver.core import Solver, SolverResult
from repro.solver.stats import SolverStats

from repro.solver.backends.base import BackendError, SolverBackend

#: Options accepted for the underlying solver.  All but
#: ``round_limits`` (a sequence — only expressible structurally, e.g.
#: through ``default_solver_factory``) can also appear in a spec query
#: string like ``native?timeout=2``.
_SOLVER_OPTIONS = {
    "timeout",
    "round_limits",
    "combo_budget",
    "max_cores",
    "max_word_length",
    "split_cap",
    "lazy_union_min_options",
}


class NativeBackend(SolverBackend):
    """Wraps :class:`repro.solver.core.Solver` behind the backend API.

    The wrapped solver keeps ``stats=None`` on purpose: per-query
    :class:`~repro.solver.stats.QueryRecord` accounting stays with the
    CEGAR loop (which records one aggregate per refinement run), while
    this wrapper records the per-backend tallies.
    """

    name = "native"

    def __init__(self, stats: Optional[SolverStats] = None, **options):
        super().__init__(stats)
        unknown = set(options) - _SOLVER_OPTIONS
        if unknown:
            raise BackendError(
                f"native backend does not accept option(s) "
                f"{sorted(unknown)}; choose from {sorted(_SOLVER_OPTIONS)}"
            )
        self._solver = Solver(**options)

    @property
    def timeout(self) -> float:
        return self._solver.timeout

    @property
    def solver(self) -> Solver:
        """The underlying native solver (for tests and introspection)."""
        return self._solver

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        result = self._solver.solve(formula)
        self._tally(result.status, perf_counter() - started)
        return result
