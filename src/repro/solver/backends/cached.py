"""``cached:<inner>`` — the solver query cache as a backend decorator.

The paper's evaluation re-decides the same string queries thousands of
times: regex literals are heavily duplicated across npm packages
(Table 5: 9.5M occurrences vs 306k unique), so batch analysis keeps
producing structurally identical membership problems.  This module
memoizes *definitive* solver answers across queries, engine runs, and —
through the batch runner — across jobs, for **any** inner backend.

Keying is by :func:`repro.constraints.printer.canonical_fingerprint`:
variables are α-renamed in first-occurrence order, so two translations of
the same regex (which draw fresh variable names from a global counter)
map to the same entry.  Models are stored under canonical names and
translated back through the bijection on a hit.

Soundness rules:

- only ``SAT`` (with its model) and ``UNSAT`` are cached — both are
  definitive for every backend in this package by construction (an
  SMT-LIB subprocess SAT is re-validated natively before it is
  returned, and its UNSAT comes from the exact guarded encoding);
- ``UNKNOWN`` is *never* cached: it depends on the budget/timeout of the
  producing backend, so replaying it for another query (or another
  backend configuration) could turn a solvable query into a permanent
  unknown.

(Historically this lived in ``repro.service.cache``, which now
re-exports from here; the *decorator* :class:`CachedBackend` is what
the ``cached:<inner>`` spec resolves to.)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.constraints.formulas import Formula
from repro.constraints.printer import canonical_fingerprint
from repro.constraints.terms import StrVar, Value
from repro.solver.core import Solver, SolverResult, UNKNOWN
from repro.solver.model import Model
from repro.solver.stats import SolverStats


@dataclass(frozen=True)
class CachedResult:
    """One cache entry: a definitive status plus the model's assignment
    restricted to the formula's variables, under canonical names."""

    status: str
    assignment: Optional[Tuple[Tuple[str, Value], ...]] = None


class QueryCache:
    """An LRU map fingerprint → :class:`CachedResult` with counters.

    Process-local.  In the batch runner each worker process keeps one
    instance alive across all jobs it executes (see ``runner.py``), which
    is where cross-job sharing happens.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(self, key: str) -> Optional[CachedResult]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, entry: CachedResult) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = entry

    def clear(self) -> None:
        self._entries.clear()

    def counters(self) -> dict:
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class SharedQueryCache:
    """A cross-process cache client over ``multiprocessing.Manager``
    proxies — the same get/put protocol as :class:`QueryCache`, so
    :class:`CachedSolver` accepts either.

    Entries live in the manager server process and are visible to every
    worker; hit/miss counters are process-local (each worker reports its
    own, the batch report sums them).  Eviction is FIFO-ish: when full,
    the oldest inserted key goes.  Build one via :meth:`create` and ship
    it to workers through the pool initializer.
    """

    def __init__(self, store, lock, maxsize: int = 4096):
        self._store = store
        self._lock = lock
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def create(cls, manager, maxsize: int = 4096) -> "SharedQueryCache":
        return cls(manager.dict(), manager.Lock(), maxsize)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(self, key: str) -> Optional[CachedResult]:
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: CachedResult) -> None:
        with self._lock:
            if key not in self._store and len(self._store) >= self.maxsize:
                oldest = next(iter(self._store.keys()), None)
                if oldest is not None:
                    del self._store[oldest]
                    self.evictions += 1
            self._store[key] = entry

    def counters(self) -> dict:
        return {
            "size": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class CachedSolver:
    """Drop-in solver wrapper that memoizes definitive answers.

    Satisfies the solver protocol the engine and CEGAR loop rely on
    (``solve(formula) -> SolverResult``); per-instance ``hits``/``misses``
    counters let each consumer report its own share of a shared cache's
    traffic (e.g. one batch job among many on the same worker).

    The inner ``solver`` may be anything with that protocol — a raw
    :class:`Solver` or any backend from this package.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        cache: Optional[QueryCache] = None,
        stats: Optional[SolverStats] = None,
    ):
        self.solver = solver or Solver()
        self.cache = cache if cache is not None else QueryCache()
        self.stats = stats
        self.hits = 0
        self.misses = 0

    @property
    def timeout(self) -> float:
        return self.solver.timeout

    def solve(self, formula: Formula) -> SolverResult:
        key, renaming = canonical_fingerprint(formula)
        entry = self.cache.get(key)
        if entry is not None:
            self.hits += 1
            if self.stats is not None:
                self.stats.record_cache(hit=True)
            return self._replay(entry, renaming)
        self.misses += 1
        if self.stats is not None:
            self.stats.record_cache(hit=False)
        result = self.solver.solve(formula)
        if result.status != UNKNOWN:
            self.cache.put(key, self._normalize(result, renaming))
        return result

    # -- model translation through the variable bijection -------------------

    @staticmethod
    def _normalize(
        result: SolverResult, renaming: Dict[StrVar, str]
    ) -> CachedResult:
        """Restrict the model to the formula's variables and store it
        under canonical names (internal solver-fresh variables never
        escape to callers, so dropping them is safe)."""
        if result.model is None:
            return CachedResult(result.status, None)
        assignment = tuple(
            (canonical, result.model.assignment[var])
            for var, canonical in renaming.items()
            if var in result.model.assignment
        )
        return CachedResult(result.status, assignment)

    @staticmethod
    def _replay(
        entry: CachedResult, renaming: Dict[StrVar, str]
    ) -> SolverResult:
        if entry.assignment is None:
            return SolverResult(entry.status, None)
        inverse = {canonical: var for var, canonical in renaming.items()}
        model = Model(
            {
                inverse[name]: value
                for name, value in entry.assignment
                if name in inverse
            }
        )
        return SolverResult(entry.status, model)


class CachedBackend(CachedSolver):
    """Memoizing decorator over any inner backend (``cached:<inner>``).

    Adds the backend-API surface on top of :class:`CachedSolver`: a
    ``name`` derived from the inner backend, recursive ``bind_stats``,
    and per-backend outcome/latency tallies.  The tally sink is kept
    deliberately distinct from ``CachedSolver.stats`` (which records
    cache hit/miss events for consumers that track their own share of a
    shared cache).
    """

    def __init__(
        self,
        inner,
        cache: Optional[QueryCache] = None,
        maxsize: int = 4096,
        tally_stats: Optional[SolverStats] = None,
        stats: Optional[SolverStats] = None,
    ):
        super().__init__(
            inner,
            cache=cache if cache is not None else QueryCache(maxsize=maxsize),
            stats=stats if stats is not None else tally_stats,
        )
        self.tally_stats = tally_stats

    @property
    def name(self) -> str:
        return f"cached:{getattr(self.solver, 'name', 'native')}"

    def bind_stats(self, stats: SolverStats) -> None:
        if self.tally_stats is None:
            self.tally_stats = stats
        if self.stats is None:
            self.stats = stats  # hit/miss events reach cache_summary()
        binder = getattr(self.solver, "bind_stats", None)
        if callable(binder):
            binder(stats)

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        result = super().solve(formula)
        if self.tally_stats is not None:
            self.tally_stats.record_backend(
                self.name, result.status, perf_counter() - started
            )
        return result
