"""``cached:<inner>`` — the solver query cache as a backend decorator.

The paper's evaluation re-decides the same string queries thousands of
times: regex literals are heavily duplicated across npm packages
(Table 5: 9.5M occurrences vs 306k unique), so batch analysis keeps
producing structurally identical membership problems.  This module
memoizes *definitive* solver answers across queries, engine runs, and —
through the batch runner — across jobs, for **any** inner backend.

Keying is by :func:`repro.constraints.printer.canonical_fingerprint`:
variables are α-renamed in first-occurrence order, so two translations of
the same regex (which draw fresh variable names from a global counter)
map to the same entry.  Models are stored under canonical names and
translated back through the bijection on a hit.

Soundness rules:

- only ``SAT`` (with its model) and ``UNSAT`` are cached — both are
  definitive for every backend in this package by construction (an
  SMT-LIB subprocess SAT is re-validated natively before it is
  returned, and its UNSAT comes from the exact guarded encoding);
- ``UNKNOWN`` is *never* cached: it depends on the budget/timeout of the
  producing backend, so replaying it for another query (or another
  backend configuration) could turn a solvable query into a permanent
  unknown.

(Historically this lived in ``repro.service.cache``, which now
re-exports from here; the *decorator* :class:`CachedBackend` is what
the ``cached:<inner>`` spec resolves to.)
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro import faults, obs
from repro.constraints.formulas import Formula
from repro.constraints.printer import canonical_fingerprint
from repro.constraints.terms import StrVar, Value
from repro.solver.core import Solver, SolverResult, UNKNOWN
from repro.solver.model import Model
from repro.solver.stats import SolverStats

#: Bump when the on-disk entry layout changes; old entries are ignored.
QUERY_STORE_VERSION = 1
_MAGIC = "repro-query"

#: Every live store handle in this process, for the aggregate
#: corruption/failure counters surfaced by ``obs.snapshot()`` and the
#: daemon's ``health`` op (weak: a dropped cache must not be pinned by
#: its diagnostics).
_OPEN_STORES: "weakref.WeakSet" = weakref.WeakSet()


def query_store_counters() -> Dict[str, int]:
    """Aggregate counters over every live query store in this process.

    ``corrupt_evictions`` is the operator's signal that entries are
    being scribbled on (bad disk, version skew, a chaos plan): each one
    was a cache entry evicted by the defensive read path instead of
    served.
    """
    totals = {
        "open_stores": 0,
        "loads": 0,
        "stores": 0,
        "failures": 0,
        "evictions": 0,
        "corrupt_evictions": 0,
    }
    for store in list(_OPEN_STORES):
        totals["open_stores"] += 1
        totals["loads"] += store.loads
        totals["stores"] += store.stores
        totals["failures"] += store.failures
        totals["evictions"] += store.evictions
        totals["corrupt_evictions"] += store.corrupt_evictions
    return totals


@dataclass(frozen=True)
class CachedResult:
    """One cache entry: a definitive status plus the model's assignment
    restricted to the formula's variables, under canonical names."""

    status: str
    assignment: Optional[Tuple[Tuple[str, Value], ...]] = None


class QueryDiskStore:
    """Fingerprint-keyed directory of definitive solver answers.

    The query-cache sibling of
    :class:`repro.automata.cache.DfaDiskStore`: layout is
    ``<path>/v<QUERY_STORE_VERSION>/<sha256(fingerprint)>.qry`` (the
    canonical fingerprint is arbitrary-length text, so entries are named
    by its hash and carry the full fingerprint inside the blob, verified
    on load against hash collisions and foreign files).  Entries are
    written atomically (temp file + ``os.replace``) and read
    defensively: truncated, corrupted, or version-mismatched entries are
    evicted as misses, never errors — the store is a cache, a bad
    directory degrades to solving.

    ``max_entries`` caps the store with *age-based* GC: whenever the
    (approximately tracked) entry count passes the cap, the oldest
    mtimes are unlinked down to a low-water mark just under the cap
    (hysteresis: the next scan is a slack's worth of puts away, not
    one).  Age, not LRU — the store is shared by concurrent workers,
    and touching entry mtimes on every hit would turn reads into
    writes; old answers being re-proved once is the cheap failure
    mode.  Evictions land in the store's counters (``evictions``,
    surfaced as ``disk_evictions``).
    """

    def __init__(self, path: str, max_entries: Optional[int] = None):
        self.root = path
        self.path = os.path.join(path, f"v{QUERY_STORE_VERSION}")
        os.makedirs(self.path, exist_ok=True)
        self.max_entries = max_entries
        self.loads = 0
        self.stores = 0
        self.failures = 0
        self.evictions = 0
        #: Entries evicted by the defensive read path specifically —
        #: truncated/garbled/version-skewed blobs, as opposed to GC.
        self.corrupt_evictions = 0
        _OPEN_STORES.add(self)
        #: Entry-count estimate driving GC triggers: seeded by a scan
        #: (only when a cap makes the count matter — uncapped stores
        #: must not pay an O(entries) scan per construction), bumped
        #: per put.  Concurrent writers make it approximate; the GC
        #: pass itself recounts exactly.
        self._approx_count = 0 if max_entries is None else len(self)

    def _entry(self, fingerprint: str) -> str:
        digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
        return os.path.join(self.path, f"{digest}.qry")

    def get(self, fingerprint: str) -> Optional[CachedResult]:
        entry = self._entry(fingerprint)
        # Chaos hook: an installed fault plan may scribble over the
        # entry here, exercising the defensive read path below.
        faults.corrupt_file("query_store:get", entry, fingerprint=fingerprint)
        try:
            with open(entry, "rb") as handle:
                blob = pickle.load(handle)
            magic, version, stored_fp, status, assignment = blob
            if (
                magic != _MAGIC
                or version != QUERY_STORE_VERSION
                or stored_fp != fingerprint
            ):
                raise ValueError("mismatched query-store entry")
            result = CachedResult(
                str(status),
                None
                if assignment is None
                else tuple((str(n), v) for n, v in assignment),
            )
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, foreign file, stale format, hash
            # collision: drop and re-solve.
            self.failures += 1
            self.corrupt_evictions += 1
            try:
                os.unlink(entry)
            except OSError:
                pass
            return None
        self.loads += 1
        return result

    def put(self, fingerprint: str, entry: CachedResult) -> None:
        path = self._entry(fingerprint)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(
                    (
                        _MAGIC,
                        QUERY_STORE_VERSION,
                        fingerprint,
                        entry.status,
                        entry.assignment,
                    ),
                    handle,
                    protocol=4,
                )
            os.replace(tmp, path)  # atomic: readers never see partials
            self.stores += 1
            self._approx_count += 1
            if (
                self.max_entries is not None
                and self._approx_count > self.max_entries
            ):
                self.gc()
        except OSError:
            self.failures += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def gc(self) -> int:
        """Evict oldest-mtime entries past ``max_entries``; return count.

        Evicts down to a low-water mark *below* the cap (an eighth of
        slack), so a put-heavy store pays the directory scan once per
        slack's worth of writes instead of on every put at the cap.
        Defensive like every other store path: a concurrently deleted
        entry or an unreadable directory just ends the pass — the store
        degrades to being larger than asked, never to failure.
        """
        if self.max_entries is None:
            return 0
        try:
            aged = sorted(
                (
                    (entry.stat().st_mtime, entry.path)
                    for entry in os.scandir(self.path)
                    if entry.name.endswith(".qry")
                ),
            )
        except OSError:
            return 0
        self._approx_count = len(aged)
        if len(aged) <= self.max_entries:
            return 0
        # Keep at least one entry: a cap of 1 must still serve hits.
        low_water = max(
            1, self.max_entries - max(1, self.max_entries // 8)
        )
        evicted = 0
        for _, path in aged[: len(aged) - low_water]:
            try:
                os.unlink(path)
            except OSError:
                continue
            evicted += 1
        self.evictions += evicted
        self._approx_count -= evicted
        return evicted

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.path) if name.endswith(".qry")
            )
        except OSError:
            return 0


def _attached_store(
    current: Optional[QueryDiskStore],
    path: Optional[str],
    max_entries: Optional[int] = None,
) -> Optional[QueryDiskStore]:
    """The store handle for ``attach_store(path)`` on either cache tier.

    Re-attaching the same path keeps the existing handle (its counters
    survive across jobs in one process; an explicit ``max_entries``
    still takes effect on it); an unusable path degrades to memory-only
    caching, never to failure.  A non-string ``path`` is taken to *be*
    a store-shaped object (duck: ``get``/``put``/counters) and used
    directly — how cluster worker nodes wire a
    :class:`~repro.cluster.remotestore.RemoteQueryStore` read-through
    to the coordinator in place of a local directory.
    """
    if path is None:
        return None
    if not isinstance(path, str):
        return path
    if current is not None and current.root == path:
        if max_entries is not None and current.max_entries != max_entries:
            # A newly applied (or changed) cap needs a real count: the
            # handle may have skipped the seeding scan while uncapped.
            current.max_entries = max_entries
            current._approx_count = len(current)
        return current
    try:
        return QueryDiskStore(path, max_entries=max_entries)
    except OSError:
        return None


def _disk_counters(
    store: Optional[QueryDiskStore], disk_hits: int
) -> Dict[str, int]:
    """The shared disk-tier block of both caches' ``counters()``."""
    return {
        "disk_hits": disk_hits,
        "disk_loads": store.loads if store else 0,
        "disk_stores": store.stores if store else 0,
        "disk_failures": store.failures if store else 0,
        "disk_evictions": store.evictions if store else 0,
        "disk_corrupt_evictions": (
            store.corrupt_evictions if store else 0
        ),
    }


class QueryCache:
    """An LRU map fingerprint → :class:`CachedResult` with counters,
    optionally backed by a persistent :class:`QueryDiskStore`.

    Process-local.  In the batch runner each worker process keeps one
    instance alive across all jobs it executes (see ``runner.py``), which
    is where cross-job sharing happens; with a store attached
    (``attach_store``) definitive answers additionally persist across
    *invocations* — the warm second batch replays yesterday's solves
    from disk.  A memory miss consults the store; a disk hit is promoted
    into memory and counted as a hit (it avoided a solve).
    """

    def __init__(
        self,
        maxsize: int = 4096,
        store_path: Optional[str] = None,
        store_max_entries: Optional[int] = None,
    ):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        # Guards the LRU structure: the batch runner's inline mode can
        # execute jobs on several threads sharing this one instance
        # (``RunnerConfig.inline_concurrency``), and an OrderedDict
        # mid-``move_to_end`` is not safe to race.
        self._mutex = threading.Lock()
        self.store: Optional[QueryDiskStore] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        if store_path:
            self.attach_store(store_path, max_entries=store_max_entries)

    def attach_store(
        self, path: Optional[str], max_entries: Optional[int] = None
    ) -> None:
        """Attach (or with ``None`` detach) the on-disk store.

        ``max_entries`` caps the store with age-based GC (see
        :class:`QueryDiskStore`)."""
        self.store = _attached_store(self.store, path, max_entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(self, key: str) -> Optional[CachedResult]:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        if self.store is not None:
            entry = self.store.get(key)
            if entry is not None:
                with self._mutex:
                    self._insert(key, entry)
                    self.disk_hits += 1
                    self.hits += 1
                return entry
        with self._mutex:
            self.misses += 1
        return None

    def put(self, key: str, entry: CachedResult) -> None:
        with self._mutex:
            self._insert(key, entry)
        if self.store is not None:
            self.store.put(key, entry)

    def _insert(self, key: str, entry: CachedResult) -> None:
        """Memory-only insert with LRU eviction (no store write-through:
        disk-hit promotion must not rewrite the entry it just read).
        Callers hold ``_mutex``."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = entry

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def counters(self) -> dict:
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            **_disk_counters(self.store, self.disk_hits),
        }


class SharedQueryCache:
    """A cross-process cache client over ``multiprocessing.Manager``
    proxies — the same get/put protocol as :class:`QueryCache`, so
    :class:`CachedSolver` accepts either.

    Entries live in the manager server process and are visible to every
    worker; hit/miss counters are process-local (each worker reports its
    own, the batch report sums them).  Eviction is LRU: a hit re-inserts
    the key under the manager lock (the managed dict preserves insertion
    order, so the front of the iteration order is always the
    least-recently-*used* key, not merely the oldest-inserted one), and
    a full cache drops that front key.  A disk store may be attached per
    worker (``attach_store``): entries missing from the manager are
    pulled from disk and promoted, definitive answers are written
    through — atomic renames make concurrent workers safe.  Build one
    via :meth:`create` and ship it to workers through the pool
    initializer.
    """

    def __init__(self, store, lock, maxsize: int = 4096):
        self._store = store
        self._lock = lock
        self.maxsize = maxsize
        self.store: Optional[QueryDiskStore] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0

    @classmethod
    def create(cls, manager, maxsize: int = 4096) -> "SharedQueryCache":
        return cls(manager.dict(), manager.Lock(), maxsize)

    def attach_store(
        self, path: Optional[str], max_entries: Optional[int] = None
    ) -> None:
        """Attach (or with ``None`` detach) a per-process disk store."""
        self.store = _attached_store(self.store, path, max_entries)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(self, key: str) -> Optional[CachedResult]:
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                # LRU touch: move the key to the back of the insertion
                # order so eviction always drops the least-recently-used.
                del self._store[key]
                self._store[key] = entry
        if entry is None and self.store is not None:
            entry = self.store.get(key)
            if entry is not None:
                self.disk_hits += 1
                self._put_shared(key, entry)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: CachedResult) -> None:
        self._put_shared(key, entry)
        if self.store is not None:
            self.store.put(key, entry)

    def _put_shared(self, key: str, entry: CachedResult) -> None:
        with self._lock:
            if key not in self._store and len(self._store) >= self.maxsize:
                oldest = next(iter(self._store.keys()), None)
                if oldest is not None:
                    del self._store[oldest]
                    self.evictions += 1
            self._store[key] = entry

    def counters(self) -> dict:
        return {
            "size": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            **_disk_counters(self.store, self.disk_hits),
        }


class CachedSolver:
    """Drop-in solver wrapper that memoizes definitive answers.

    Satisfies the solver protocol the engine and CEGAR loop rely on
    (``solve(formula) -> SolverResult``); per-instance ``hits``/``misses``
    counters let each consumer report its own share of a shared cache's
    traffic (e.g. one batch job among many on the same worker).

    The inner ``solver`` may be anything with that protocol — a raw
    :class:`Solver` or any backend from this package.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        cache: Optional[QueryCache] = None,
        stats: Optional[SolverStats] = None,
    ):
        self.solver = solver or Solver()
        self.cache = cache if cache is not None else QueryCache()
        self.stats = stats
        self.hits = 0
        self.misses = 0

    @property
    def timeout(self) -> float:
        return self.solver.timeout

    def solve(self, formula: Formula) -> SolverResult:
        return self._solve_cached(formula, refined=False)

    def solve_refined(self, formula: Formula) -> SolverResult:
        """Cache-decorated dispatch of a CEGAR-*refined* query.

        Each refined query is keyed on its own canonical fingerprint —
        refinement streams share long prefixes across flips, so repeated
        prefixes replay from memory/disk instead of re-entering the
        solver — and a miss is forwarded to the inner backend's
        ``solve_refined`` (mid-loop re-routing for a router) when it has
        one.
        """
        return self._solve_cached(formula, refined=True)

    def _solve_cached(self, formula: Formula, refined: bool) -> SolverResult:
        key, renaming = canonical_fingerprint(formula)
        entry = self.cache.get(key)
        if entry is not None:
            self.hits += 1
            if self.stats is not None:
                self.stats.record_cache(hit=True)
            obs.annotate(cache="hit")
            return self._replay(entry, renaming)
        self.misses += 1
        if self.stats is not None:
            self.stats.record_cache(hit=False)
        obs.annotate(cache="miss")
        inner = getattr(self.solver, "solve_refined", None) if refined else None
        result = inner(formula) if callable(inner) else self.solver.solve(
            formula
        )
        if result.status != UNKNOWN:
            self.cache.put(key, self._normalize(result, renaming))
        return result

    # -- model translation through the variable bijection -------------------

    @staticmethod
    def _normalize(
        result: SolverResult, renaming: Dict[StrVar, str]
    ) -> CachedResult:
        """Restrict the model to the formula's variables and store it
        under canonical names (internal solver-fresh variables never
        escape to callers, so dropping them is safe)."""
        if result.model is None:
            return CachedResult(result.status, None)
        assignment = tuple(
            (canonical, result.model.assignment[var])
            for var, canonical in renaming.items()
            if var in result.model.assignment
        )
        return CachedResult(result.status, assignment)

    @staticmethod
    def _replay(
        entry: CachedResult, renaming: Dict[StrVar, str]
    ) -> SolverResult:
        if entry.assignment is None:
            return SolverResult(entry.status, None)
        inverse = {canonical: var for var, canonical in renaming.items()}
        model = Model(
            {
                inverse[name]: value
                for name, value in entry.assignment
                if name in inverse
            }
        )
        return SolverResult(entry.status, model)


class CachedBackend(CachedSolver):
    """Memoizing decorator over any inner backend (``cached:<inner>``).

    Adds the backend-API surface on top of :class:`CachedSolver`: a
    ``name`` derived from the inner backend, recursive ``bind_stats``,
    and per-backend outcome/latency tallies.  The tally sink is kept
    deliberately distinct from ``CachedSolver.stats`` (which records
    cache hit/miss events for consumers that track their own share of a
    shared cache).
    """

    def __init__(
        self,
        inner,
        cache: Optional[QueryCache] = None,
        maxsize: int = 4096,
        tally_stats: Optional[SolverStats] = None,
        stats: Optional[SolverStats] = None,
    ):
        super().__init__(
            inner,
            cache=cache if cache is not None else QueryCache(maxsize=maxsize),
            stats=stats if stats is not None else tally_stats,
        )
        self.tally_stats = tally_stats

    @property
    def name(self) -> str:
        return f"cached:{getattr(self.solver, 'name', 'native')}"

    def bind_stats(self, stats: SolverStats) -> None:
        if self.tally_stats is None:
            self.tally_stats = stats
        if self.stats is None:
            self.stats = stats  # hit/miss events reach cache_summary()
        binder = getattr(self.solver, "bind_stats", None)
        if callable(binder):
            binder(stats)

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        result = super().solve(formula)
        self._backend_tally(result.status, perf_counter() - started)
        return result

    def solve_refined(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        result = super().solve_refined(formula)
        self._backend_tally(result.status, perf_counter() - started)
        return result

    def _backend_tally(self, status: str, seconds: float) -> None:
        # Not a SolverBackend subclass, so the base ``_tally`` span
        # plumbing is replicated here.
        if self.tally_stats is not None:
            self.tally_stats.record_backend(self.name, status, seconds)
        if obs.enabled():
            obs.complete_span(
                "backend:" + self.name, seconds, status=status
            )
