"""Feature-based query routing: send each formula to the backend that
is actually good at it.

The paper's Table 5 observation — most regexes are classical, but the
hard minority (captures, backreferences, lookaheads) is what breaks
classical solvers — becomes a dispatch policy here.  Instead of one
backend for a whole run, ``route:`` inspects every query's formula
features and picks per query (cf. the configurable sensitivity knobs of
JSAI: the routing policy is a first-class, benchmarkable trade-off):

================  ========================================================
``captures``      a regex with capture groups or backreferences — only
                  the native solver models those; external solvers would
                  degrade to UNKNOWN after paying rendering costs
``classical``     every regex atom is in the classical SMT-LIB fragment —
                  the incremental ``session:`` backend decides these
                  without a per-query subprocess spawn
``mixed``         anything else (lookaheads, anchors, word boundaries) —
                  raced by a portfolio, since neither side dominates
``unroutable``    a formula the classifier cannot walk — defensively
                  handed to native, which accepts every formula
================  ========================================================

When the session's solver binary is not installed, classical queries
fall back to native instead (recorded as ``classical->native``), so a
``route:`` spec works — fully, not degraded to UNKNOWN — on machines
with no SMT solver at all.

Per-route decision counts land in
:class:`~repro.solver.stats.SolverStats.route_tallies`; each target
also keeps its ordinary per-backend tally under its own name, so the
backend table shows the traffic split the router produced.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Set, Type

from repro.regex import ast as regex_ast
from repro.constraints.formulas import (
    And,
    BoolLit,
    Eq,
    Formula,
    Implies,
    InRe,
    Not,
    Or,
)
from repro.solver.core import SolverResult, UNKNOWN
from repro.solver.stats import SolverStats

from repro.solver.backends.base import SolverBackend

#: Regex constructs the classical SMT-LIB fragment can express (capture
#: groups print transparently, but their *meaning* — capture extraction,
#: backreference consistency — only the native solver models, so
#: ``Group`` routes to native rather than riding along classically).
_CLASSICAL_NODES = (
    regex_ast.Empty,
    regex_ast.CharMatch,
    regex_ast.Concat,
    regex_ast.Alternation,
    regex_ast.Quantifier,
    regex_ast.NonCapGroup,
)

CAPTURES = "captures"
CLASSICAL = "classical"
MIXED = "mixed"
UNROUTABLE = "unroutable"


def classify_formula(formula: Formula) -> str:
    """The routing feature class of ``formula`` (see module docstring)."""
    try:
        features: Set[str] = set()
        _walk_formula(formula, features)
    except TypeError:
        return UNROUTABLE
    if CAPTURES in features:
        return CAPTURES
    if MIXED in features:
        return MIXED
    return CLASSICAL


def _walk_formula(formula: Formula, features: Set[str]) -> None:
    if isinstance(formula, (BoolLit, Eq)):
        return
    if isinstance(formula, Not):
        _walk_formula(formula.operand, features)
    elif isinstance(formula, (And, Or)):
        for op in formula.operands:
            _walk_formula(op, features)
    elif isinstance(formula, Implies):
        _walk_formula(formula.antecedent, features)
        _walk_formula(formula.consequent, features)
    elif isinstance(formula, InRe):
        _walk_regex(formula.regex, features)
    else:
        raise TypeError(f"cannot classify {formula!r}")


def _walk_regex(node: regex_ast.Node, features: Set[str]) -> None:
    if isinstance(node, (regex_ast.Group, regex_ast.Backreference)):
        features.add(CAPTURES)
        child = getattr(node, "child", None)
        if child is not None:
            _walk_regex(child, features)
    elif isinstance(node, _CLASSICAL_NODES):
        for attr in ("child",):
            child = getattr(node, attr, None)
            if child is not None:
                _walk_regex(child, features)
        for attr in ("parts", "options"):
            children = getattr(node, attr, None)
            if children is not None:
                for child in children:
                    _walk_regex(child, features)
    elif isinstance(
        node,
        (
            regex_ast.Lookahead,
            regex_ast.Anchor,
            regex_ast.WordBoundary,
        ),
    ):
        features.add(MIXED)
        child = getattr(node, "child", None)
        if child is not None:
            _walk_regex(child, features)
    else:
        raise TypeError(f"cannot classify regex node {node!r}")


class RouterBackend(SolverBackend):
    """``route:<command>`` — per-query feature dispatch over three targets.

    ``native``, ``session``, and ``portfolio`` are ordinary backends
    (the registry builds the defaults; tests inject stubs).  The
    portfolio must own its *own* member instances rather than sharing
    ``native``/``session``: abandoned portfolio stragglers may still be
    running when the router dispatches the next query directly, and
    member backends are not re-entrant.
    """

    def __init__(
        self,
        native,
        session,
        portfolio,
        *,
        stats: Optional[SolverStats] = None,
    ):
        super().__init__(stats)
        self.native = native
        self.session = session
        self.portfolio = portfolio
        self.name = f"route:{getattr(session, 'command', '?')}"

    def bind_stats(self, stats: SolverStats) -> None:
        super().bind_stats(stats)
        for target in (self.native, self.session, self.portfolio):
            binder = getattr(target, "bind_stats", None)
            if callable(binder):
                binder(stats)

    def route(self, formula: Formula):
        """Pick ``(feature, target_name, backend)`` for one formula."""
        feature = classify_formula(formula)
        if feature == CLASSICAL:
            if getattr(self.session, "available", True):
                return feature, "session", self.session
            # No solver binary: classical queries still deserve a
            # definitive answer, which only native can give here.
            return feature, "native", self.native
        if feature == MIXED:
            return feature, "portfolio", self.portfolio
        # captures and unroutable formulas both belong to native.
        return feature, "native", self.native

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        feature, target_name, target = self.route(formula)
        if self.stats is not None:
            self.stats.record_route(feature, target_name)
        try:
            result = target.solve(formula)
        except Exception:
            self._tally("error", perf_counter() - started)
            raise
        self._tally(result.status, perf_counter() - started)
        return result

    def close(self) -> None:
        """Release target resources (session processes, portfolio pools)."""
        for target in (self.native, self.session, self.portfolio):
            closer = getattr(target, "close", None)
            if callable(closer):
                closer()
