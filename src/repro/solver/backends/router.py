"""Feature-based query routing: send each formula to the backend that
is actually good at it.

The paper's Table 5 observation — most regexes are classical, but the
hard minority (captures, backreferences, lookaheads) is what breaks
classical solvers — becomes a dispatch policy here.  Instead of one
backend for a whole run, ``route:`` inspects every query's formula
features and picks per query (cf. the configurable sensitivity knobs of
JSAI: the routing policy is a first-class, benchmarkable trade-off):

================  ========================================================
``captures``      a regex with capture groups or backreferences — only
                  the native solver models those; external solvers would
                  degrade to UNKNOWN after paying rendering costs
``classical``     every regex atom is in the classical SMT-LIB fragment —
                  the incremental ``session:`` backend decides these
                  without a per-query subprocess spawn
``mixed``         anything else (lookaheads, anchors, word boundaries) —
                  raced by a portfolio, since neither side dominates
``unroutable``    a formula the classifier cannot walk — defensively
                  handed to native, which accepts every formula
================  ========================================================

When the session's solver binary is not installed, classical queries
fall back to native instead (recorded as ``classical->native``), so a
``route:`` spec works — fully, not degraded to UNKNOWN — on machines
with no SMT solver at all.

The CEGAR loop's *refined* queries (Algorithm 1, iterations > 0) take a
second, more aggressive route (:meth:`RouterBackend.route_refined`):
refinements are classical material, and capture groups print
transparently, so a refined query whose only non-classical feature is
capture groups migrates *mid-loop* to the incremental session — with a
native fallback when the session answers UNKNOWN, so re-routing can
never make a refinement run less complete.  Refined decisions are
tallied under ``refined-<feature>-><target>``.

Per-route decision counts land in
:class:`~repro.solver.stats.SolverStats.route_tallies`; each target
also keeps its ordinary per-backend tally under its own name, so the
backend table shows the traffic split the router produced.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Set, Type

from repro import obs
from repro.regex import ast as regex_ast
from repro.constraints.formulas import (
    And,
    BoolLit,
    Eq,
    Formula,
    Implies,
    InRe,
    Not,
    Or,
)
from repro.solver.core import SolverResult, UNKNOWN
from repro.solver.stats import SolverStats

from repro.solver.backends.base import SolverBackend

#: Regex constructs the classical SMT-LIB fragment can express (capture
#: groups print transparently, but their *meaning* — capture extraction,
#: backreference consistency — only the native solver models, so
#: ``Group`` routes to native rather than riding along classically).
_CLASSICAL_NODES = (
    regex_ast.Empty,
    regex_ast.CharMatch,
    regex_ast.Concat,
    regex_ast.Alternation,
    regex_ast.Quantifier,
    regex_ast.NonCapGroup,
)

CAPTURES = "captures"
CLASSICAL = "classical"
MIXED = "mixed"
UNROUTABLE = "unroutable"
#: Sub-feature of CAPTURES tracked for the refined route: a capture
#: *group* prints transparently in classical SMT-LIB (its meaning lives
#: in separate word equations), but a *backreference* has no classical
#: form at all — only the mid-loop re-route cares about the difference.
BACKREFS = "backrefs"


def classify_formula(formula: Formula) -> str:
    """The routing feature class of ``formula`` (see module docstring)."""
    return _classify(formula)[0]


def _classify(formula: Formula):
    """``(feature_class, raw_feature_set)`` of one formula."""
    features: Set[str] = set()
    try:
        _walk_formula(formula, features)
    except TypeError:
        return UNROUTABLE, features
    if CAPTURES in features:
        return CAPTURES, features
    if MIXED in features:
        return MIXED, features
    return CLASSICAL, features


def _walk_formula(formula: Formula, features: Set[str]) -> None:
    if isinstance(formula, (BoolLit, Eq)):
        return
    if isinstance(formula, Not):
        _walk_formula(formula.operand, features)
    elif isinstance(formula, (And, Or)):
        for op in formula.operands:
            _walk_formula(op, features)
    elif isinstance(formula, Implies):
        _walk_formula(formula.antecedent, features)
        _walk_formula(formula.consequent, features)
    elif isinstance(formula, InRe):
        _walk_regex(formula.regex, features)
    else:
        raise TypeError(f"cannot classify {formula!r}")


def _walk_regex(node: regex_ast.Node, features: Set[str]) -> None:
    if isinstance(node, (regex_ast.Group, regex_ast.Backreference)):
        features.add(CAPTURES)
        if isinstance(node, regex_ast.Backreference):
            features.add(BACKREFS)
        child = getattr(node, "child", None)
        if child is not None:
            _walk_regex(child, features)
    elif isinstance(node, _CLASSICAL_NODES):
        for attr in ("child",):
            child = getattr(node, attr, None)
            if child is not None:
                _walk_regex(child, features)
        for attr in ("parts", "options"):
            children = getattr(node, attr, None)
            if children is not None:
                for child in children:
                    _walk_regex(child, features)
    elif isinstance(
        node,
        (
            regex_ast.Lookahead,
            regex_ast.Anchor,
            regex_ast.WordBoundary,
        ),
    ):
        features.add(MIXED)
        child = getattr(node, "child", None)
        if child is not None:
            _walk_regex(child, features)
    else:
        raise TypeError(f"cannot classify regex node {node!r}")


class RouterBackend(SolverBackend):
    """``route:<command>`` — per-query feature dispatch over three targets.

    ``native``, ``session``, and ``portfolio`` are ordinary backends
    (the registry builds the defaults; tests inject stubs).  The
    portfolio must own its *own* member instances rather than sharing
    ``native``/``session``: abandoned portfolio stragglers may still be
    running when the router dispatches the next query directly, and
    member backends are not re-entrant.
    """

    def __init__(
        self,
        native,
        session,
        portfolio,
        *,
        stats: Optional[SolverStats] = None,
    ):
        super().__init__(stats)
        self.native = native
        self.session = session
        self.portfolio = portfolio
        self.name = f"route:{getattr(session, 'command', '?')}"

    def bind_stats(self, stats: SolverStats) -> None:
        super().bind_stats(stats)
        for target in (self.native, self.session, self.portfolio):
            binder = getattr(target, "bind_stats", None)
            if callable(binder):
                binder(stats)

    def route(self, formula: Formula):
        """Pick ``(feature, target_name, backend)`` for one formula."""
        feature = classify_formula(formula)
        if feature == CLASSICAL:
            if getattr(self.session, "circuit_open", False):
                # The command's circuit breaker is open: its binary has
                # been failing repeatedly, so classical queries divert
                # to native for the cool-down window (the breaker's own
                # half-open probe re-admits the session).
                return feature, "native-breaker", self.native
            if getattr(self.session, "available", True):
                return feature, "session", self.session
            # No solver binary: classical queries still deserve a
            # definitive answer, which only native can give here.
            return feature, "native", self.native
        if feature == MIXED:
            return feature, "portfolio", self.portfolio
        # captures and unroutable formulas both belong to native.
        return feature, "native", self.native

    def route_refined(self, formula: Formula):
        """Pick ``(feature, target_name, backend)`` for a *refined* query.

        Algorithm 1's refinements are classical material — word pins and
        capture equalities over string constants — so after the first
        refinement the stream deserves the session even when the initial
        query routed native.  Concretely: a CAPTURES formula whose only
        non-classical feature is capture *groups* prints transparently
        (``dfa_for`` erases the same groups natively, and separate word
        equations carry their meaning), so the refined query migrates to
        the incremental session; backreferences and lookaheads still
        have no classical rendering and keep their initial route.
        """
        feature, features = _classify(formula)
        if feature == UNROUTABLE:
            return feature, "native", self.native
        if BACKREFS in features or (
            CAPTURES in features and MIXED in features
        ):
            # Unprintable no matter what rides along (a backreference,
            # or captures mixed with lookaheads): the initial route —
            # native, by the captures-beat-mixed precedence — stays.
            return feature, "native", self.native
        if MIXED in features:
            return feature, "portfolio", self.portfolio
        # Classical, or captures-only (printable): the session decides
        # the refined stream without a per-query subprocess spawn.
        if getattr(self.session, "circuit_open", False):
            return feature, "native-breaker", self.native
        if getattr(self.session, "available", True):
            return feature, "session", self.session
        return feature, "native", self.native

    def solve(self, formula: Formula) -> SolverResult:
        return self._dispatch(formula, refined=False)

    def solve_refined(self, formula: Formula) -> SolverResult:
        """Mid-loop re-routing of the CEGAR-refined query stream.

        Routes via :meth:`route_refined`; when the session answers
        UNKNOWN (hard query, degraded binary), the router falls back to
        native instead of returning UNKNOWN — an UNKNOWN mid-loop would
        abort the whole refinement run, which is strictly worse than
        paying one native solve.  The fallback is tallied as
        ``refined-<feature>->native-fallback``.
        """
        return self._dispatch(formula, refined=True)

    def _dispatch(self, formula: Formula, refined: bool) -> SolverResult:
        started = perf_counter()
        if refined:
            feature, target_name, target = self.route_refined(formula)
            route_label = f"refined-{feature}"
        else:
            feature, target_name, target = self.route(formula)
            route_label = feature
        if self.stats is not None:
            self.stats.record_route(route_label, target_name)
        if obs.enabled():
            # The enclosing CEGAR-iteration span (if any) carries the
            # decision; the event additionally marks it on the timeline.
            obs.annotate(route=route_label, target=target_name)
            obs.event(
                "route:decision", route=route_label, target=target_name
            )
        try:
            result = target.solve(formula)
            if (
                refined
                and result.status == UNKNOWN
                and target is self.session
            ):
                if self.stats is not None:
                    self.stats.record_route(route_label, "native-fallback")
                obs.event(
                    "route:fallback", route=route_label, target="native"
                )
                result = self.native.solve(formula)
            elif (
                not refined
                and result.status == UNKNOWN
                and target is self.session
                and str(getattr(target, "last_error", "")).startswith(
                    "circuit open"
                )
            ):
                # The breaker slammed shut between route() and solve()
                # (or a concurrent query lost the half-open probe
                # race): a classical query still deserves a definitive
                # answer, so it pays one native solve instead of
                # surfacing the short-circuit UNKNOWN.
                if self.stats is not None:
                    self.stats.record_route(route_label, "native-breaker")
                obs.event(
                    "route:fallback",
                    route=route_label,
                    target="native-breaker",
                )
                result = self.native.solve(formula)
        except Exception:
            self._tally("error", perf_counter() - started)
            raise
        self._tally(result.status, perf_counter() - started)
        return result

    def close(self) -> None:
        """Release target resources (session processes, portfolio pools)."""
        for target in (self.native, self.session, self.portfolio):
            closer = getattr(target, "close", None)
            if callable(closer):
                closer()
