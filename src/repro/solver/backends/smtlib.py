"""SMT-LIB subprocess backend: drive an external string solver (z3/cvc5).

This is the paper's actual dispatch target: ExpoSE hands the
capturing-language constraints to Z3's string theory.  The backend

1. renders the query with the existing SMT-LIB printer in *guarded*
   mode (``to_smtlib(..., guarded=True, get_values=True)`` — the exact
   ⊥-aware encoding, so an external ``unsat`` is sound),
2. runs the solver binary on a temp file with a wall-clock timeout,
3. parses ``sat``/``unsat``/``unknown`` plus the ``(get-value ...)``
   model back into our :class:`~repro.solver.model.Model`, mapping
   ``|v.def| = false`` to ⊥,
4. **re-validates** any SAT model against the formula with the native
   evaluator before trusting it — a model that does not check out
   degrades to UNKNOWN instead of poisoning DSE.

Every failure mode — missing binary, timeout, crash, a formula outside
the classical SMT-LIB regex fragment (lookaheads, backreferences), or
unparsable output — degrades to UNKNOWN, which is always sound here.
"""

from __future__ import annotations

import math
import os
import shlex
import shutil
import subprocess
import tempfile
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

from repro.constraints.formulas import Formula, to_nnf
from repro.constraints.printer import to_smtlib, _variables
from repro.constraints.terms import UNDEF
from repro.solver.core import SAT, SolverResult, UNKNOWN, UNSAT, _holds
from repro.solver.model import Model
from repro.solver.stats import SolverStats

from repro.solver.backends.base import SolverBackend


def _z3_argv(command: List[str], timeout: float) -> List[str]:
    return command + ["-smt2", f"-T:{max(1, math.ceil(timeout))}"]


def _cvc_argv(command: List[str], timeout: float) -> List[str]:
    return command + [
        "--lang", "smt2",
        "--strings-exp",
        f"--tlimit={max(1000, int(timeout * 1000))}",
    ]


#: Known solver command lines, keyed by executable basename.  Anything
#: else runs generically as ``<command> <script-file>``.
_ARGV_TEMPLATES = {
    "z3": _z3_argv,
    "cvc5": _cvc_argv,
    "cvc4": _cvc_argv,
}


class SmtLibBackend(SolverBackend):
    """``smtlib:<command>`` — an external SMT-LIB 2.6 string solver."""

    def __init__(
        self,
        command: str = "z3",
        *,
        timeout: float = 5.0,
        stats: Optional[SolverStats] = None,
    ):
        super().__init__(stats)
        self.command = command or "z3"
        self.timeout = timeout
        self.name = f"smtlib:{self.command}"
        self._argv_prefix = shlex.split(self.command)
        self._available: Optional[bool] = None
        #: Why the last query degraded to UNKNOWN (diagnostics only).
        self.last_error: Optional[str] = None

    @property
    def available(self) -> bool:
        """Whether the solver binary resolves on PATH.

        Probed once per backend instance: a DSE run asks hundreds of
        times on the hot solve path, and binaries do not appear
        mid-run.
        """
        if self._available is None:
            self._available = bool(self._argv_prefix) and (
                shutil.which(self._argv_prefix[0]) is not None
            )
        return self._available

    # -- solving -------------------------------------------------------------

    def solve(self, formula: Formula) -> SolverResult:
        started = perf_counter()
        result = self._solve(formula)
        self._tally(result.status, perf_counter() - started)
        return result

    def _solve(self, formula: Formula) -> SolverResult:
        self.last_error = None
        # Availability first: without a binary there is no point paying
        # for script rendering on every query of a DSE run.
        if not self.available:
            return self._unknown(
                f"solver binary {self._argv_prefix[0]!r} not installed"
            )
        try:
            script = to_smtlib(formula, guarded=True, get_values=True)
        except TypeError as exc:
            # Lookaheads/backreferences/anchors have no classical
            # SMT-LIB regex form; the native solver owns those queries.
            return self._unknown(f"unprintable formula: {exc}")
        output = self._run_subprocess(script)
        if output is None:
            return SolverResult(UNKNOWN)  # last_error already set
        status, values = parse_solver_output(output)
        if status == UNSAT:
            # Sound thanks to the guarded (exact) encoding: every native
            # model corresponds to an SMT model, so SMT-unsat ⟹ unsat.
            return SolverResult(UNSAT)
        if status != SAT:
            return self._unknown(f"solver answered {status!r}")
        model = build_model(formula, values)
        try:
            validated = _holds(to_nnf(formula), model)
        except Exception as exc:  # defensive: never crash on bad output
            return self._unknown(f"model evaluation failed: {exc}")
        if not validated:
            return self._unknown("solver model failed native re-validation")
        return SolverResult(SAT, model)

    def _run_subprocess(self, script: str) -> Optional[str]:
        template = _ARGV_TEMPLATES.get(
            os.path.basename(self._argv_prefix[0])
        )
        if template is not None:
            argv = template(list(self._argv_prefix), self.timeout)
        else:
            argv = list(self._argv_prefix)
        path = None
        try:
            fd, path = tempfile.mkstemp(suffix=".smt2", text=True)
            with os.fdopen(fd, "w") as handle:
                handle.write(script + "\n")
            completed = subprocess.run(
                argv + [path],
                capture_output=True,
                text=True,
                timeout=self.timeout + 1.0,
            )
        except subprocess.TimeoutExpired:
            self.last_error = f"timed out after {self.timeout}s"
            return None
        except OSError as exc:
            self.last_error = f"could not run {argv[0]!r}: {exc}"
            return None
        finally:
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        # Solvers exit nonzero on errors but may still have printed a
        # verdict (z3 does for get-value after unsat); parse regardless.
        return completed.stdout

    def _unknown(self, reason: str) -> SolverResult:
        self.last_error = reason
        return SolverResult(UNKNOWN)


# -- output parsing -----------------------------------------------------------


def parse_solver_output(text: str) -> Tuple[str, Dict[str, object]]:
    """Extract the verdict and the ``(get-value ...)`` bindings.

    Returns ``(status, {symbol: value})`` where values are strings or
    booleans.  Error s-expressions and unparsable trailing output are
    ignored — a missing model simply fails re-validation later.
    """
    status = UNKNOWN
    values: Dict[str, object] = {}
    for node in _read_sexprs(text):
        if isinstance(node, str):
            if node in (SAT, UNSAT, UNKNOWN) and not isinstance(node, _Str):
                status = str(node)
            continue
        # ((sym val) (sym val) ...) — one get-value answer.
        for pair in node:
            if (
                isinstance(pair, list)
                and len(pair) == 2
                and isinstance(pair[0], str)
            ):
                values[pair[0]] = pair[1]
    return status, values


def build_model(formula: Formula, values: Dict[str, object]) -> Model:
    """Reconstruct a :class:`Model` from parsed ``get-value`` bindings.

    ``|v.def| = false`` maps to ⊥; a variable with no binding defaults
    to the defined empty string (matching the native model's default).
    """
    model = Model()
    for var in _variables(formula):
        defined = values.get(var.name + ".def", True)
        if defined in ("false", False):
            model.set(var, UNDEF)
            continue
        value = values.get(var.name, "")
        model.set(var, value if isinstance(value, str) else "")
    return model


def unescape_smtlib_string(body: str) -> str:
    """Decode the inside of an SMT-LIB 2.6 string literal.

    Handles the ``""`` quote escape and both character-escape forms of
    the strings theory: ``\\u{XH...}`` and ``\\uXXXX``.  This is the
    round-trip inverse of the printer's ``_string_literal``.
    """
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == '"':
            # Only "" appears inside a literal's body.
            out.append('"')
            i += 2
            continue
        if ch == "\\" and body.startswith("\\u{", i):
            end = body.find("}", i + 3)
            if end != -1:
                hex_digits = body[i + 3:end]
                try:
                    out.append(chr(int(hex_digits, 16)))
                    i = end + 1
                    continue
                except ValueError:
                    pass
        if ch == "\\" and body.startswith("\\u", i) and len(body) >= i + 6:
            hex_digits = body[i + 2:i + 6]
            try:
                out.append(chr(int(hex_digits, 16)))
                i += 6
                continue
            except ValueError:
                pass
        out.append(ch)
        i += 1
    return "".join(out)


SExpr = Union[str, List["SExpr"]]


class _Str(str):
    """A token that came from a string literal (never punctuation)."""


def _read_sexprs(text: str) -> List[SExpr]:
    """Tolerant s-expression reader for solver stdout.

    Atoms are bare symbols, ``|piped symbols|`` (pipes stripped) and
    string literals (decoded).  Anything that fails to balance at the
    end is dropped.
    """
    tokens = _tokenize(text)
    out: List[SExpr] = []
    stack: List[List[SExpr]] = []
    for token in tokens:
        if isinstance(token, _Str):
            if stack:
                stack[-1].append(token)
            else:
                out.append(token)
        elif token == "(":
            stack.append([])
        elif token == ")":
            if not stack:
                continue  # stray close: skip
            done = stack.pop()
            if stack:
                stack[-1].append(done)
            else:
                out.append(done)
        else:
            if stack:
                stack[-1].append(token)
            else:
                out.append(token)
    return out


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == '"':
            j = i + 1
            body: List[str] = []
            while j < n:
                if text[j] == '"':
                    if j + 1 < n and text[j + 1] == '"':
                        body.append('""')
                        j += 2
                        continue
                    break
                body.append(text[j])
                j += 1
            tokens.append(_Str(unescape_smtlib_string("".join(body))))
            i = j + 1
        elif ch == "|":
            j = text.find("|", i + 1)
            if j == -1:
                break
            tokens.append(text[i + 1:j])
            i = j + 1
        elif ch == ";":
            # comment to end of line
            j = text.find("\n", i)
            i = n if j == -1 else j + 1
        elif ch.isspace():
            i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in '()|";':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens
