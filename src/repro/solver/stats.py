"""Instrumentation counters for the solver and the CEGAR loop.

The paper's Table 8 and §7.4 report per-query and per-package solver
times, broken down by whether the query modelled capture groups and
whether refinement was needed.  This module provides the collector those
experiments read from.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import metrics as _metrics


@dataclass
class QueryRecord:
    """One solver query (one ``Solve(P)`` call in Algorithm 1's loop)."""

    seconds: float
    status: str
    cores_tried: int = 0
    candidates_tried: int = 0
    had_regex: bool = False
    had_captures: bool = False
    refinements: int = 0
    hit_refinement_limit: bool = False


@dataclass
class BackendTally:
    """Outcome/latency counters for one solver backend (by spec name)."""

    queries: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    errors: int = 0
    seconds: float = 0.0
    #: Most recent error detail (``"ExcType: message"``) — populated by
    #: crash-capturing callers (the portfolio's member wrapper) so a
    #: crashed backend is diagnosable from the tallies, not just a bare
    #: ``errors`` count.
    last_error: Optional[str] = None

    @property
    def definitive(self) -> int:
        return self.sat + self.unsat

    @property
    def definitive_rate(self) -> float:
        return self.definitive / self.queries if self.queries else 0.0

    def add(self, status: str, seconds: float,
            error: Optional[str] = None) -> None:
        self.queries += 1
        self.seconds += seconds
        if status == "sat":
            self.sat += 1
        elif status == "unsat":
            self.unsat += 1
        elif status == "error":
            self.errors += 1
        else:
            self.unknown += 1
        if error is not None:
            self.last_error = error

    def as_dict(self) -> dict:
        shaped = {
            "queries": self.queries,
            "sat": self.sat,
            "unsat": self.unsat,
            "unknown": self.unknown,
            "errors": self.errors,
            "seconds": self.seconds,
            "definitive_rate": self.definitive_rate,
        }
        if self.last_error is not None:
            # Only when an error was captured: the common clean-path
            # payload keeps its pre-existing shape exactly.
            shaped["last_error"] = self.last_error
        return shaped

    def merge_dict(self, other: dict) -> None:
        """Fold a JSON-shaped tally (``as_dict`` output) into this one."""
        self.queries += other.get("queries", 0)
        self.sat += other.get("sat", 0)
        self.unsat += other.get("unsat", 0)
        self.unknown += other.get("unknown", 0)
        self.errors += other.get("errors", 0)
        self.seconds += other.get("seconds", 0.0)
        if other.get("last_error") is not None:
            self.last_error = other["last_error"]


@dataclass
class SessionTally:
    """Lifecycle counters for one incremental solver session (by name).

    ``seconds`` is cumulative subprocess lifetime: each spawn's clock is
    added when the process ends (crash, reset-kill, or close).  The
    amortization claim of the session backend is ``queries_per_spawn``:
    a healthy session answers many queries per subprocess spawn, where
    the one-shot ``smtlib:`` backend is pinned at 1.
    """

    spawns: int = 0
    restarts: int = 0
    resets: int = 0
    queries: int = 0
    seconds: float = 0.0
    #: Pool traffic (populated by ``repro.solver.backends.pool``): how
    #: many times this session spec was leased from the shared pool,
    #: and how many of those leases had to block on the request queue.
    checkouts: int = 0
    waits: int = 0

    @property
    def queries_per_spawn(self) -> float:
        return self.queries / self.spawns if self.spawns else 0.0

    def add(
        self,
        spawns: int = 0,
        restarts: int = 0,
        resets: int = 0,
        queries: int = 0,
        seconds: float = 0.0,
        checkouts: int = 0,
        waits: int = 0,
    ) -> None:
        self.spawns += spawns
        self.restarts += restarts
        self.resets += resets
        self.queries += queries
        self.seconds += seconds
        self.checkouts += checkouts
        self.waits += waits

    def as_dict(self) -> dict:
        return {
            "spawns": self.spawns,
            "restarts": self.restarts,
            "resets": self.resets,
            "queries": self.queries,
            "seconds": self.seconds,
            "checkouts": self.checkouts,
            "waits": self.waits,
            "queries_per_spawn": self.queries_per_spawn,
        }

    def merge_dict(self, other: dict) -> None:
        """Fold a JSON-shaped tally (``as_dict`` output) into this one."""
        self.add(
            spawns=other.get("spawns", 0),
            restarts=other.get("restarts", 0),
            resets=other.get("resets", 0),
            queries=other.get("queries", 0),
            seconds=other.get("seconds", 0.0),
            checkouts=other.get("checkouts", 0),
            waits=other.get("waits", 0),
        )


@dataclass
class SolverStats:
    """Aggregated statistics across queries (reset per experiment)."""

    queries: List[QueryRecord] = field(default_factory=list)
    #: Solver query cache counters (populated when solving through a
    #: :class:`repro.service.cache.CachedSolver`).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-backend outcome/latency tallies, keyed by backend name
    #: (populated when solving through ``repro.solver.backends``).
    backend_tallies: Dict[str, BackendTally] = field(default_factory=dict)
    #: Incremental-session lifecycle counters, keyed by session backend
    #: name (populated by ``repro.solver.backends.session``).
    session_tallies: Dict[str, SessionTally] = field(default_factory=dict)
    #: Routing decision counters, keyed by ``"<feature>-><target>"``
    #: (populated by ``repro.solver.backends.router``).
    route_tallies: Dict[str, int] = field(default_factory=dict)
    #: Circuit-breaker transition counters, keyed by
    #: ``"<command>:<event>"`` (``open`` / ``close`` / ``reopen`` /
    #: ``probe`` / ``short_circuit`` — populated by
    #: ``repro.faults.breaker`` through the session backends).
    breaker_tallies: Dict[str, int] = field(default_factory=dict)
    #: Soundness trip-wire counters, keyed by the disagreeing member
    #: pair (``"<member-a>|<member-b>"``) — populated by collect-mode
    #: portfolios and the conformance oracle when two sound-by-
    #: construction deciders return contradictory definitive answers.
    #: Empty on every honest run.
    disagreement_tallies: Dict[str, int] = field(default_factory=dict)
    #: Automata compilation-cache counters (this run's share of the
    #: process-global interner; populated by the engine and the service
    #: jobs from :func:`repro.automata.automata_cache_counters` deltas).
    automata_hits: int = 0
    automata_misses: int = 0
    automata_disk_hits: int = 0
    automata_disk_stores: int = 0
    #: Ring-buffer cap on ``queries``: daemon-length runs record
    #: millions of :class:`QueryRecord`\ s, so past the cap the oldest
    #: records are dropped (and counted in ``dropped_query_records``)
    #: instead of leaking memory.  ``None`` keeps every record.
    max_query_records: Optional[int] = None
    dropped_query_records: int = 0
    #: Backend tallies are the one path mutated from worker threads (a
    #: portfolio's members — including abandoned stragglers finishing
    #: late — all share this object), so they get their own lock.
    _tally_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, record: QueryRecord) -> None:
        with self._tally_lock:
            self.queries.append(record)
            if (
                self.max_query_records is not None
                and len(self.queries) > self.max_query_records
            ):
                overflow = len(self.queries) - self.max_query_records
                del self.queries[:overflow]
                self.dropped_query_records += overflow
        _metrics.count(
            "solver_queries_total",
            status=record.status,
            refined=str(record.refinements > 0).lower(),
        )
        _metrics.observe("solver_query_seconds", record.seconds)

    def record_cache(self, hit: bool) -> None:
        # Cached backends race as portfolio members on worker threads
        # and share this object, so the counters take the tally lock
        # exactly like ``record_backend`` does.
        with self._tally_lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        _metrics.count(
            "query_cache_lookups_total",
            outcome="hit" if hit else "miss",
        )

    def record_backend(self, name: str, status: str, seconds: float,
                       error: Optional[str] = None) -> None:
        with self._tally_lock:
            tally = self.backend_tallies.get(name)
            if tally is None:
                tally = self.backend_tallies[name] = BackendTally()
            tally.add(status, seconds, error=error)
        _metrics.count("backend_queries_total", backend=name, status=status)
        _metrics.observe("backend_seconds", seconds, backend=name)

    def record_session(self, name: str, **delta: float) -> None:
        """Fold session lifecycle counters for backend ``name``.

        Keyword counters are those of :meth:`SessionTally.add`
        (``spawns``, ``restarts``, ``resets``, ``queries``, ``seconds``).
        Sessions share the tally lock with backend tallies: a session
        racing inside a portfolio reports from a worker thread.
        """
        with self._tally_lock:
            tally = self.session_tallies.get(name)
            if tally is None:
                tally = self.session_tallies[name] = SessionTally()
            tally.add(**delta)
        if _metrics.enabled():
            for kind, amount in delta.items():
                if amount and kind != "seconds":
                    _metrics.count(
                        "session_events_total",
                        amount,
                        session=name,
                        kind=kind,
                    )

    def record_route(self, feature: str, target: str) -> None:
        """Count one routing decision ``feature -> target``."""
        key = f"{feature}->{target}"
        with self._tally_lock:
            self.route_tallies[key] = self.route_tallies.get(key, 0) + 1
        _metrics.count("route_decisions_total", route=feature, target=target)

    def record_breaker(self, name: str, event: str) -> None:
        """Count one circuit-breaker event for session command ``name``
        (``open`` / ``close`` / ``reopen`` / ``probe`` /
        ``short_circuit``).  The breaker itself mirrors transitions into
        obs metrics; this is the per-run bucketing for payloads."""
        key = f"{name}:{event}"
        with self._tally_lock:
            self.breaker_tallies[key] = self.breaker_tallies.get(key, 0) + 1

    def record_disagreement(self, pair: str) -> None:
        """Count one backend disagreement for member pair ``pair``
        (``"<member-a>|<member-b>"``).  Disagreements surface from
        worker threads (a portfolio's grace window) and from the
        conformance oracle, so they share the tally lock."""
        with self._tally_lock:
            self.disagreement_tallies[pair] = (
                self.disagreement_tallies.get(pair, 0) + 1
            )
        _metrics.count("backend_disagreements_total", pair=pair)

    def record_automata(self, delta: Dict[str, int]) -> None:
        """Fold a compilation-cache counters delta into this collector.

        Deliberately does *not* mirror into ``repro.obs.metrics``: the
        interner feeds the registry directly at lookup time, and this
        method only re-buckets those same global counters per run.
        """
        with self._tally_lock:
            self.automata_hits += delta.get("hits", 0)
            self.automata_misses += delta.get("misses", 0)
            self.automata_disk_hits += delta.get("disk_hits", 0)
            self.automata_disk_stores += delta.get("disk_stores", 0)

    def automata_summary(self) -> dict:
        """JSON-shaped compilation-cache counters (for payloads/reports)."""
        lookups = (
            self.automata_hits + self.automata_disk_hits
            + self.automata_misses
        )
        return {
            "hits": self.automata_hits,
            "misses": self.automata_misses,
            "disk_hits": self.automata_disk_hits,
            "disk_stores": self.automata_disk_stores,
            "hit_rate": (
                (self.automata_hits + self.automata_disk_hits) / lookups
                if lookups
                else 0.0
            ),
        }

    def backend_summary(self) -> Dict[str, dict]:
        """JSON-shaped per-backend tallies (for job payloads/reports)."""
        with self._tally_lock:
            return {
                name: tally.as_dict()
                for name, tally in sorted(self.backend_tallies.items())
            }

    def session_summary(self) -> Dict[str, dict]:
        """JSON-shaped per-session tallies (for job payloads/reports)."""
        with self._tally_lock:
            return {
                name: tally.as_dict()
                for name, tally in sorted(self.session_tallies.items())
            }

    def route_summary(self) -> Dict[str, int]:
        """JSON-shaped routing decision counts (for payloads/reports)."""
        with self._tally_lock:
            return dict(sorted(self.route_tallies.items()))

    def breaker_summary(self) -> Dict[str, int]:
        """JSON-shaped breaker transition counts (for payloads/reports);
        empty on the no-trip fast path."""
        with self._tally_lock:
            return dict(sorted(self.breaker_tallies.items()))

    def disagreement_summary(self) -> Dict[str, int]:
        """JSON-shaped disagreement counts per member pair (for
        payloads and the report's Soundness table); empty on every
        honest run."""
        with self._tally_lock:
            return dict(sorted(self.disagreement_tallies.items()))

    def cache_summary(self) -> dict:
        """Hit/miss counters of the solver query cache, if one was used."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "lookups": lookups,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
        }

    # -- Table 8 aggregates --------------------------------------------------

    def total_time(self) -> float:
        return sum(q.seconds for q in self.queries)

    def _subset(self, predicate) -> List[QueryRecord]:
        return [q for q in self.queries if predicate(q)]

    def summary(self) -> dict:
        def agg(records: List[QueryRecord]) -> dict:
            if not records:
                return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0}
            times = [r.seconds for r in records]
            return {
                "count": len(records),
                "min": min(times),
                "max": max(times),
                "mean": sum(times) / len(times),
            }

        return {
            "all": agg(self.queries),
            "with_captures": agg(self._subset(lambda q: q.had_captures)),
            "with_refinement": agg(self._subset(lambda q: q.refinements > 0)),
            "hit_limit": agg(self._subset(lambda q: q.hit_refinement_limit)),
        }

    def refinement_summary(self) -> dict:
        """The §7.4 numbers: how often refinement ran and how hard it was."""
        regex_queries = self._subset(lambda q: q.had_regex)
        capture_queries = self._subset(lambda q: q.had_captures)
        refined = self._subset(lambda q: q.refinements > 0)
        limited = self._subset(lambda q: q.hit_refinement_limit)
        mean_refinements = (
            sum(q.refinements for q in refined) / len(refined)
            if refined
            else 0.0
        )
        return {
            "total_queries": len(self.queries),
            "dropped_records": self.dropped_query_records,
            "regex_queries": len(regex_queries),
            "capture_queries": len(capture_queries),
            "refined_queries": len(refined),
            "limit_queries": len(limited),
            "mean_refinements": mean_refinements,
        }


#: Global default collector (experiments may substitute their own).
GLOBAL_STATS = SolverStats()


@contextmanager
def timed():
    """Context manager yielding a closure that reports elapsed seconds."""
    start = time.perf_counter()
    box = {}

    def elapsed() -> float:
        return box.get("elapsed", time.perf_counter() - start)

    yield elapsed
    box["elapsed"] = time.perf_counter() - start
