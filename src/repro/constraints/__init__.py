"""String-constraint language emitted by the capturing-language model."""

from repro.constraints.formulas import (
    And,
    BoolLit,
    Eq,
    FALSE,
    Formula,
    Implies,
    InRe,
    Not,
    Or,
    TRUE,
    conj,
    disj,
    eq_str,
    formula_size,
    implies,
    is_defined,
    is_undef,
    neg,
    to_nnf,
)
from repro.constraints.terms import (
    Concat,
    StrConst,
    StrVar,
    Term,
    UNDEF,
    Undef,
    concat,
    flatten,
    fresh_var,
    variables_of,
)

__all__ = [
    "And", "BoolLit", "Concat", "Eq", "FALSE", "Formula", "Implies", "InRe",
    "Not", "Or", "StrConst", "StrVar", "TRUE", "Term", "UNDEF", "Undef",
    "concat", "conj", "disj", "eq_str", "flatten", "formula_size", "fresh_var",
    "implies", "is_defined", "is_undef", "neg", "to_nnf", "variables_of",
]
