"""String terms for the constraint language.

The capturing-language model (§4) speaks about words and capture values.
Words are ordinary strings; capture variables additionally admit the
*undefined* value ⊥ (``UNDEF``), which the paper distinguishes from the
empty string ε.  Terms are:

- :class:`StrVar` — a string variable (possibly ⊥-valued for captures);
- :class:`StrConst` — a literal string;
- :class:`Undef` — the ⊥ constant;
- :class:`Concat` — concatenation ``t1 ++ t2 ++ ...``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Tuple, Union

#: The runtime representation of ⊥ in models and evaluation.
UNDEF = None

Value = Union[str, type(UNDEF)]


class Term:
    """Base class for string terms."""

    __slots__ = ()

    def __add__(self, other: "Term") -> "Term":
        return concat(self, other)


@dataclass(frozen=True)
class StrVar(Term):
    """A string variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class StrConst(Term):
    """A string literal."""

    value: str

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Undef(Term):
    """The undefined capture value ⊥ (distinct from the empty string)."""

    def __repr__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class Concat(Term):
    """Concatenation of two or more terms."""

    parts: Tuple[Term, ...]

    def __post_init__(self) -> None:
        assert len(self.parts) >= 2

    def __repr__(self) -> str:
        return " ++ ".join(map(repr, self.parts))


_var_counter = itertools.count()


def fresh_var(prefix: str = "s") -> StrVar:
    """A globally fresh string variable (used for model segment vars)."""
    return StrVar(f"{prefix}!{next(_var_counter)}")


def concat(*terms: Term) -> Term:
    """Smart constructor: flatten nested concats, fold adjacent constants."""
    flat: list[Term] = []
    for term in terms:
        if isinstance(term, Concat):
            flat.extend(term.parts)
        else:
            flat.append(term)
    folded: list[Term] = []
    for term in flat:
        if isinstance(term, StrConst) and term.value == "":
            continue
        if (
            folded
            and isinstance(term, StrConst)
            and isinstance(folded[-1], StrConst)
        ):
            folded[-1] = StrConst(folded[-1].value + term.value)
        else:
            folded.append(term)
    if not folded:
        return StrConst("")
    if len(folded) == 1:
        return folded[0]
    return Concat(tuple(folded))


def variables_of(term: Term) -> frozenset[StrVar]:
    if isinstance(term, StrVar):
        return frozenset((term,))
    if isinstance(term, Concat):
        out: set[StrVar] = set()
        for part in term.parts:
            out |= variables_of(part)
        return frozenset(out)
    return frozenset()


def flatten(term: Term) -> Tuple[Term, ...]:
    """The concat-atoms of a term: vars and consts in order."""
    if isinstance(term, Concat):
        return term.parts
    return (term,)
