"""SMT-LIB 2.6-style rendering of constraint formulas.

The paper's pipeline hands Z3 problems in the SMT-LIB string theory;
this printer renders our formulas in that concrete syntax (``str.++``,
``str.in_re``, ``re.union``...) so users can inspect queries, diff them
against other solvers, or export them.  ⊥-valued capture variables are
encoded with the standard option pattern: a Boolean ``|v.def|`` guard
plus a String ``v``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Set, Tuple

from repro.regex import ast as regex_ast
from repro.constraints.formulas import (
    And,
    BoolLit,
    Eq,
    Formula,
    Implies,
    InRe,
    Not,
    Or,
)
from repro.constraints.terms import Concat, StrConst, StrVar, Term, Undef


def to_smtlib(
    formula: Formula,
    declare: bool = True,
    *,
    guarded: bool = False,
    get_values: bool = False,
) -> str:
    """Render ``formula`` as an SMT-LIB script (declarations + assert).

    With ``guarded=True`` the rendering is *exact* with respect to our
    ⊥-semantics: every atom whose native truth requires its variables to
    be defined (memberships, equalities against constants/concatenations)
    carries the corresponding ``|v.def|`` guards, so each native model
    maps to an SMT model and a backend's ``unsat`` answer stays sound.
    (The unguarded form is more readable and matches the historical
    ``smtlib`` CLI output; it is only safe for inspection, not for
    trusting ``unsat``.)

    ``get_values=True`` appends ``(get-value ...)`` over every declared
    symbol so a subprocess backend can parse a model back.
    """
    body = _formula(formula, guarded)
    if not declare:
        return body
    variables = sorted(_variables(formula), key=lambda v: v.name)
    lines: List[str] = []
    if get_values:
        lines.append("(set-option :produce-models true)")
    lines.append("(set-logic QF_S)")
    symbols: List[str] = []
    for var in variables:
        symbols.append(_symbol(var.name))
        symbols.append(_symbol(var.name + ".def"))
        lines.append(f"(declare-const {_symbol(var.name)} String)")
        lines.append(f"(declare-const {_symbol(var.name + '.def')} Bool)")
    lines.append(f"(assert {body})")
    lines.append("(check-sat)")
    if get_values and symbols:
        lines.append("(get-value (" + " ".join(symbols) + "))")
    return "\n".join(lines)


def smtlib_prelude(get_values: bool = False) -> str:
    """The once-per-session prelude of an incremental SMT-LIB dialogue.

    An incremental session (``(push)``/``(pop)`` over one live solver
    process) sets options and the logic exactly once; every query after
    that is a delta rendered by :func:`to_smtlib_incremental`.  Re-emit
    this after a ``(reset)``, which clears options along with assertions.
    """
    lines: List[str] = []
    if get_values:
        lines.append("(set-option :produce-models true)")
    lines.append("(set-logic QF_S)")
    return "\n".join(lines)


def to_smtlib_incremental(
    formula: Formula,
    declared: Set[str],
    *,
    guarded: bool = False,
    get_values: bool = False,
    close_scope: bool = True,
) -> str:
    """Render ``formula`` as one incremental query over a shared prelude.

    Only the *delta* is emitted: declarations for symbols not yet in
    ``declared`` (updated in place) go at the solver's ground level so
    they persist across queries, while the assertion itself lives inside
    a ``(push 1)`` scope closed by a trailing ``(pop 1)``.
    ``get_values=True`` asks for this query's symbols only — previously
    declared symbols stay out of the answer.  ``close_scope=False``
    leaves the scope open (no ``(pop 1)``) for callers that interleave
    their own commands — e.g. a ``(get-value ...)`` sent only after a
    ``sat`` verdict, since some solvers abort on model queries in other
    states — and close the scope themselves (see
    :func:`smtlib_query_symbols` for the matching symbol list).

    Raises the same :class:`TypeError` as :func:`to_smtlib` on formulas
    outside the classical fragment, *before* mutating ``declared``.
    """
    body = _formula(formula, guarded)
    variables = sorted(_variables(formula), key=lambda v: v.name)
    lines: List[str] = []
    symbols: List[str] = []
    for var in variables:
        for name, sort in ((var.name, "String"), (var.name + ".def", "Bool")):
            symbol = _symbol(name)
            symbols.append(symbol)
            if symbol not in declared:
                declared.add(symbol)
                lines.append(f"(declare-const {symbol} {sort})")
    lines.append("(push 1)")
    lines.append(f"(assert {body})")
    lines.append("(check-sat)")
    if get_values and symbols:
        lines.append("(get-value (" + " ".join(symbols) + "))")
    if close_scope:
        lines.append("(pop 1)")
    return "\n".join(lines)


def smtlib_query_symbols(formula: Formula) -> List[str]:
    """The declared symbols of ``formula``'s query, in rendering order
    (each variable's String symbol followed by its ``.def`` guard) —
    what a ``(get-value ...)`` for this query should ask for."""
    symbols: List[str] = []
    for var in sorted(_variables(formula), key=lambda v: v.name):
        symbols.append(_symbol(var.name))
        symbols.append(_symbol(var.name + ".def"))
    return symbols


def _formula(formula: Formula, guarded: bool = False) -> str:
    if isinstance(formula, BoolLit):
        return "true" if formula.value else "false"
    if isinstance(formula, Not):
        return f"(not {_formula(formula.operand, guarded)})"
    if isinstance(formula, And):
        return "(and " + " ".join(
            _formula(op, guarded) for op in formula.operands
        ) + ")"
    if isinstance(formula, Or):
        return "(or " + " ".join(
            _formula(op, guarded) for op in formula.operands
        ) + ")"
    if isinstance(formula, Implies):
        return (
            f"(=> {_formula(formula.antecedent, guarded)} "
            f"{_formula(formula.consequent, guarded)})"
        )
    if isinstance(formula, Eq):
        return _equality(formula.left, formula.right, guarded)
    if isinstance(formula, InRe):
        atom = f"(str.in_re {_term(formula.term)} {_regex(formula.regex)})"
        if guarded:
            # t ∈ L(R) is false when any variable of t is ⊥.
            return _with_def_guards(atom, _term_variables(formula.term))
        return atom
    raise TypeError(f"cannot print {formula!r}")


def _equality(left: Term, right: Term, guarded: bool = False) -> str:
    # ⊥-aware equality: x = ⊥ becomes (not |x.def|); x = y over possibly-⊥
    # variables compares both the definedness guards and the payloads.
    if isinstance(right, Undef):
        left, right = right, left
    if isinstance(left, Undef):
        if isinstance(right, StrVar):
            return f"(not {_symbol(right.name + '.def')})"
        if isinstance(right, Undef):
            return "true"
        return "false"  # a constant/concat is never ⊥
    if isinstance(left, StrVar) and isinstance(right, StrVar):
        ldef = _symbol(left.name + ".def")
        rdef = _symbol(right.name + ".def")
        return (
            f"(and (= {ldef} {rdef}) (= {_term(left)} {_term(right)}))"
        )
    atom = f"(= {_term(left)} {_term(right)})"
    if guarded:
        # Against a constant or concatenation, equality natively holds
        # only when every participating variable is a defined string.
        return _with_def_guards(
            atom, _term_variables(left) + _term_variables(right)
        )
    return atom


def _with_def_guards(atom: str, variables: List[StrVar]) -> str:
    guards: List[str] = []
    seen: Set[str] = set()
    for var in variables:
        symbol = _symbol(var.name + ".def")
        if symbol not in seen:
            seen.add(symbol)
            guards.append(symbol)
    if not guards:
        return atom
    return "(and " + " ".join(guards) + f" {atom})"


def _term_variables(term: Term) -> List[StrVar]:
    if isinstance(term, StrVar):
        return [term]
    if isinstance(term, Concat):
        out: List[StrVar] = []
        for part in term.parts:
            out.extend(_term_variables(part))
        return out
    return []


def _term(term: Term) -> str:
    if isinstance(term, StrVar):
        return _symbol(term.name)
    if isinstance(term, StrConst):
        return _string_literal(term.value)
    if isinstance(term, Concat):
        return "(str.++ " + " ".join(_term(p) for p in term.parts) + ")"
    if isinstance(term, Undef):
        raise TypeError("⊥ can only appear in equalities")
    raise TypeError(f"cannot print term {term!r}")


def _regex(node: regex_ast.Node) -> str:
    if isinstance(node, regex_ast.Empty):
        return '(str.to_re "")'
    if isinstance(node, regex_ast.CharMatch):
        return _charset_regex(node)
    if isinstance(node, regex_ast.Concat):
        return "(re.++ " + " ".join(_regex(p) for p in node.parts) + ")"
    if isinstance(node, regex_ast.Alternation):
        return "(re.union " + " ".join(_regex(o) for o in node.options) + ")"
    if isinstance(node, regex_ast.Quantifier):
        inner = _regex(node.child)
        low, high = node.min, node.max
        if (low, high) == (0, None):
            return f"(re.* {inner})"
        if (low, high) == (1, None):
            return f"(re.+ {inner})"
        if (low, high) == (0, 1):
            return f"(re.opt {inner})"
        if high is None:
            return f"(re.++ ((_ re.loop {low} {low}) {inner}) (re.* {inner}))"
        return f"((_ re.loop {low} {high}) {inner})"
    if isinstance(node, (regex_ast.Group, regex_ast.NonCapGroup)):
        return _regex(node.child)
    raise TypeError(
        f"{type(node).__name__} has no classical SMT-LIB regex form"
    )


def _charset_regex(node: regex_ast.CharMatch) -> str:
    intervals = node.charset.intervals
    if not intervals:
        return "re.none"
    if len(intervals) == 1 and intervals[0] == (0, 0x10FFFF):
        return "re.allchar"
    parts = []
    for lo, hi in intervals:
        if lo == hi:
            parts.append(f"(str.to_re {_string_literal(chr(lo))})")
        else:
            parts.append(
                f"(re.range {_string_literal(chr(lo))} "
                f"{_string_literal(chr(hi))})"
            )
    if len(parts) == 1:
        return parts[0]
    return "(re.union " + " ".join(parts) + ")"


def _string_literal(value: str) -> str:
    # SMT-LIB 2.6 string literals: `""` is the only quote escape, and
    # `\u{...}` / `\uXXXX` are the character escapes of the strings
    # theory.  A raw backslash would make a following `u` ambiguous, so
    # backslashes are themselves `\u{5c}`-escaped, as are control and
    # non-ASCII characters.
    out = ['"']
    for ch in value:
        if ch == '"':
            out.append('""')
        elif ch == "\\":
            out.append("\\u{5c}")
        elif 0x20 <= ord(ch) < 0x7F:
            out.append(ch)
        else:
            out.append(f"\\u{{{ord(ch):x}}}")
    out.append('"')
    return "".join(out)


def _symbol(name: str) -> str:
    if all(c.isalnum() or c in "_.$" for c in name):
        return name
    return "|" + name.replace("|", "_") + "|"


# -- canonical fingerprinting -------------------------------------------------
#
# The batch service's solver query cache keys entries on a *canonical*
# rendering of the formula: variables are α-renamed to ?0, ?1, ... in
# first-occurrence order (model translation draws fresh names from a
# global counter, so two structurally identical queries never share
# variable names), and regexes are printed from their character-set
# intervals rather than their surface syntax.  Two formulas with equal
# fingerprints are identical up to a variable bijection, so they have the
# same satisfiability and their models transfer through the renaming.


def canonical_fingerprint(
    formula: Formula,
) -> Tuple[str, Dict[StrVar, str]]:
    """Render ``formula`` canonically; return ``(text, renaming)``.

    ``renaming`` maps every variable of the formula to its canonical
    name.  The rendering is injective on formulas-modulo-renaming: only
    language-preserving regex normalisations are applied (non-capturing
    groups are transparent, greedy/lazy is erased — neither changes
    ``L(R)``; see :func:`canonical_regex`).
    """
    names: Dict[StrVar, str] = {}
    out: List[str] = []
    _canon_formula(formula, names, out)
    return "".join(out), names


def _canon_formula(
    formula: Formula, names: Dict[StrVar, str], out: List[str]
) -> None:
    if isinstance(formula, BoolLit):
        out.append("T" if formula.value else "F")
    elif isinstance(formula, Not):
        out.append("(!")
        _canon_formula(formula.operand, names, out)
        out.append(")")
    elif isinstance(formula, And):
        out.append("(&")
        for op in formula.operands:
            _canon_formula(op, names, out)
        out.append(")")
    elif isinstance(formula, Or):
        out.append("(|")
        for op in formula.operands:
            _canon_formula(op, names, out)
        out.append(")")
    elif isinstance(formula, Implies):
        out.append("(>")
        _canon_formula(formula.antecedent, names, out)
        _canon_formula(formula.consequent, names, out)
        out.append(")")
    elif isinstance(formula, Eq):
        out.append("(=")
        _canon_term(formula.left, names, out)
        _canon_term(formula.right, names, out)
        out.append(")")
    elif isinstance(formula, InRe):
        out.append("(∈")
        _canon_term(formula.term, names, out)
        out.append(canonical_regex(formula.regex))
        out.append(")")
    else:
        raise TypeError(f"cannot fingerprint {formula!r}")


def _canon_term(
    term: Term, names: Dict[StrVar, str], out: List[str]
) -> None:
    if isinstance(term, StrVar):
        name = names.get(term)
        if name is None:
            name = f"?{len(names)}"
            names[term] = name
        out.append(name)
    elif isinstance(term, StrConst):
        out.append(repr(term.value))
    elif isinstance(term, Undef):
        out.append("⊥")
    elif isinstance(term, Concat):
        out.append("(++")
        for part in term.parts:
            _canon_term(part, names, out)
        out.append(")")
    else:
        raise TypeError(f"cannot fingerprint term {term!r}")


@lru_cache(maxsize=4096)
def canonical_regex(node: regex_ast.Node) -> str:
    """Canonical text of a regex AST under language equivalence.

    Character matchers print their interval sets (so ``\\d`` and
    ``[0-9]`` coincide); non-capturing groups are transparent and
    laziness is erased because neither changes the denoted language —
    which is all the membership atoms consume.  Capture groups keep
    their index: a backreference's meaning depends on the group
    structure, so erasing it would conflate regexes with different
    languages (e.g. ``((a)b)\\2`` vs ``(a)(b)\\2``).
    """
    if isinstance(node, regex_ast.Empty):
        return "ε"
    if isinstance(node, regex_ast.CharMatch):
        ranges = ",".join(
            f"{lo:x}" if lo == hi else f"{lo:x}-{hi:x}"
            for lo, hi in node.charset.intervals
        )
        return f"[{ranges}]"
    if isinstance(node, regex_ast.Concat):
        return "(." + "".join(canonical_regex(p) for p in node.parts) + ")"
    if isinstance(node, regex_ast.Alternation):
        return "(|" + "".join(canonical_regex(o) for o in node.options) + ")"
    if isinstance(node, regex_ast.Quantifier):
        high = "∞" if node.max is None else str(node.max)
        return f"(q{node.min},{high}{canonical_regex(node.child)})"
    if isinstance(node, regex_ast.Group):
        return f"(g{node.index}{canonical_regex(node.child)})"
    if isinstance(node, regex_ast.NonCapGroup):
        return canonical_regex(node.child)
    if isinstance(node, regex_ast.Lookahead):
        tag = "la!" if node.negative else "la"
        return f"({tag}{canonical_regex(node.child)})"
    if isinstance(node, regex_ast.Backreference):
        return f"(\\{node.index})"
    if isinstance(node, regex_ast.Anchor):
        return f"(^{node.kind})"
    if isinstance(node, regex_ast.WordBoundary):
        return "(b!)" if node.negated else "(b)"
    raise TypeError(f"cannot fingerprint regex node {node!r}")


def _variables(formula: Formula) -> Set[StrVar]:
    out: Set[StrVar] = set()

    def visit_term(term: Term) -> None:
        if isinstance(term, StrVar):
            out.add(term)
        elif isinstance(term, Concat):
            for part in term.parts:
                visit_term(part)

    def visit(f: Formula) -> None:
        if isinstance(f, Not):
            visit(f.operand)
        elif isinstance(f, (And, Or)):
            for op in f.operands:
                visit(op)
        elif isinstance(f, Implies):
            visit(f.antecedent)
            visit(f.consequent)
        elif isinstance(f, Eq):
            visit_term(f.left)
            visit_term(f.right)
        elif isinstance(f, InRe):
            visit_term(f.term)

    visit(formula)
    return out
