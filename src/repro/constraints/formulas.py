"""Boolean formulas over string atoms.

Atoms are (dis)equalities between terms and (non-)membership of a term in
a classical regular language (given as a purely regular regex AST node,
compiled to automata on demand).  Structure is And/Or/Not/Implies.

The paper's models (Tables 2–3) and the CEGAR refinements (Algorithm 1)
are all expressible in this language, which corresponds to the fragment
of SMT string theories the paper sends to Z3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.regex import ast as regex_ast
from repro.constraints.terms import StrConst, Term, Undef


class Formula:
    """Base class for formulas."""

    __slots__ = ()


@dataclass(frozen=True)
class BoolLit(Formula):
    value: bool

    def __repr__(self) -> str:
        return "⊤" if self.value else "⊥b"


TRUE = BoolLit(True)
FALSE = BoolLit(False)


@dataclass(frozen=True)
class Eq(Formula):
    """``left = right`` — equal values, with ⊥ = ⊥ being true."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"({self.left!r} = {self.right!r})"


@dataclass(frozen=True)
class InRe(Formula):
    """``term ∈ L(regex)`` for a purely regular ``regex`` AST node."""

    term: Term
    regex: regex_ast.Node

    def __repr__(self) -> str:
        from repro.regex.unparse import unparse

        return f"({self.term!r} ∈ L({unparse(self.regex)}))"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


@dataclass(frozen=True)
class And(Formula):
    operands: Tuple[Formula, ...]

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    operands: Tuple[Formula, ...]

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.operands)) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def __repr__(self) -> str:
        return f"({self.antecedent!r} ⟹ {self.consequent!r})"


# -- smart constructors ------------------------------------------------------


def conj(operands: Iterable[Formula]) -> Formula:
    flat: list[Formula] = []
    for op in operands:
        if isinstance(op, And):
            flat.extend(op.operands)
        elif op == TRUE:
            continue
        elif op == FALSE:
            return FALSE
        else:
            flat.append(op)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(operands: Iterable[Formula]) -> Formula:
    flat: list[Formula] = []
    for op in operands:
        if isinstance(op, Or):
            flat.extend(op.operands)
        elif op == FALSE:
            continue
        elif op == TRUE:
            return TRUE
        else:
            flat.append(op)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(operand: Formula) -> Formula:
    if isinstance(operand, BoolLit):
        return BoolLit(not operand.value)
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    if antecedent == TRUE:
        return consequent
    if antecedent == FALSE or consequent == TRUE:
        return TRUE
    return Implies(antecedent, consequent)


def is_undef(term: Term) -> Formula:
    return Eq(term, Undef())


def is_defined(term: Term) -> Formula:
    return Not(Eq(term, Undef()))


def eq_str(term: Term, value: str) -> Formula:
    return Eq(term, StrConst(value))


def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form; negations end up only on atoms."""
    if isinstance(formula, BoolLit):
        return BoolLit(formula.value != negate)
    if isinstance(formula, (Eq, InRe)):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return to_nnf(formula.operand, not negate)
    if isinstance(formula, And):
        parts = tuple(to_nnf(op, negate) for op in formula.operands)
        return disj(parts) if negate else conj(parts)
    if isinstance(formula, Or):
        parts = tuple(to_nnf(op, negate) for op in formula.operands)
        return conj(parts) if negate else disj(parts)
    if isinstance(formula, Implies):
        # a ⟹ b  ≡  ¬a ∨ b
        return to_nnf(
            disj((neg(formula.antecedent), formula.consequent)), negate
        )
    raise TypeError(f"unknown formula {formula!r}")


def formula_size(formula: Formula) -> int:
    """Node count — used for solver budgeting and stats."""
    if isinstance(formula, (BoolLit, Eq, InRe)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.operand)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(op) for op in formula.operands)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.antecedent) + formula_size(
            formula.consequent
        )
    raise TypeError(f"unknown formula {formula!r}")
