"""Implementations of ``python -m repro serve``, ``worker``, ``submit``.

Kept out of :mod:`repro.__main__` so the parser stays import-light;
the command functions receive the parsed ``argparse`` namespace.

``serve`` brings up the daemon of :mod:`repro.serve.server` on a unix
socket (``--socket``) or TCP port (``--port``) and runs until
SIGTERM/SIGINT, then drains gracefully and exits 0.  With ``--cluster``
the same listener also acts as the fleet coordinator for worker nodes.

``worker`` runs one :class:`~repro.cluster.worker.WorkerNode`: it joins
a ``--cluster`` daemon (``--join ADDR``), executes leased jobs on its
own local runner, and heartbeats until SIGTERM.

``submit`` is the matching client: job files in, streamed results out.
A ``.json`` argument is read as one job-spec object (or a list of
them); anything else is treated as a mini-JS program and wrapped in an
``analyze`` job spec — so ``repro submit --socket S prog.js`` is the
daemon-shaped twin of ``repro batch prog.js``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import List


def _job_specs_from_args(args) -> List[dict]:
    specs: List[dict] = []
    for path in args.files:
        if path.endswith(".json"):
            with open(path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                loaded = [loaded]
            if not isinstance(loaded, list):
                raise ValueError(
                    f"{path}: expected a job-spec object or list"
                )
            specs.extend(loaded)
        else:
            with open(path) as handle:
                source = handle.read()
            specs.append(
                {
                    "kind": "analyze",
                    "job_id": "",
                    "source": source,
                    "path": path,
                    "level": args.level,
                    "max_tests": args.max_tests,
                    "time_budget": args.time_budget,
                    "backend": args.backend,
                }
            )
    return specs


def run_serve(args) -> int:
    import asyncio

    from repro.obs.export import ObsRun
    from repro.serve.server import ServeConfig, ServeServer
    from repro.service.runner import BatchRunner, RunnerConfig

    if not args.socket and not args.port:
        print("serve: provide --socket PATH or --port N", file=sys.stderr)
        return 2
    obs_run = None
    if args.trace or args.metrics_json or args.slow_query_ms:
        obs_run = ObsRun.start(
            trace=args.trace,
            trace_format=args.trace_format,
            metrics_json=args.metrics_json,
            slow_query_ms=args.slow_query_ms,
        )
    inline_concurrency = 1
    if args.workers == 0 and args.max_inflight:
        # An inline daemon overlaps jobs on executor threads; size the
        # executor to the requested in-flight bound.
        inline_concurrency = args.max_inflight
    fault_plan = None
    if getattr(args, "fault_plan", None):
        with open(args.fault_plan) as handle:
            fault_plan = json.load(handle)
    cluster = bool(getattr(args, "cluster", False))
    retry_max = getattr(args, "retry_max", 0)
    if cluster and retry_max == 0:
        # A fleet without retries would turn every revoked lease (node
        # death, partition) into a client-visible crash; floor it so
        # re-dispatch works out of the box.  ``--retry-max`` still wins
        # when set explicitly.
        retry_max = 2
    runner = BatchRunner(
        RunnerConfig(
            workers=args.workers,
            inline_concurrency=inline_concurrency,
            job_timeout=args.job_timeout,
            use_cache=not args.no_cache,
            cache_size=args.cache_size,
            shared_cache=args.shared_cache,
            automata_cache=args.automata_cache,
            query_cache=args.query_cache,
            query_cache_max=args.query_cache_max,
            session_idle_s=args.session_idle_s,
            retry_max=retry_max,
            retry_backoff_s=getattr(args, "retry_backoff_s", 0.25),
            quarantine_after=getattr(args, "quarantine_after", None),
            fault_plan=fault_plan,
        )
    )
    server = ServeServer(
        runner,
        ServeConfig(
            socket=args.socket,
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            max_inflight=args.max_inflight,
            single_flight=not args.no_single_flight,
            cluster=cluster,
            heartbeat_s=getattr(args, "heartbeat_s", 2.0),
            heartbeat_miss=getattr(args, "heartbeat_miss", 3),
        ),
        obs_run=obs_run,
    )

    async def main() -> None:
        task = asyncio.ensure_future(server.run(install_signals=True))
        while server.address is None and not task.done():
            await asyncio.sleep(0.01)
        if server.address is not None:
            where = (
                server.address[1]
                if server.address[0] == "unix"
                else f"{server.address[1]}:{server.address[2]}"
            )
            mode = " cluster" if cluster else ""
            print(
                f"serving{mode} on {where} "
                f"(workers={args.workers}, max_queue={args.max_queue})",
                flush=True,
            )
        await task

    try:
        asyncio.run(main())
    except BaseException:
        if obs_run is not None:
            obs_run.abort()
        raise
    if obs_run is not None:
        summary = obs_run.finish()
        if summary.metrics_path:
            print(f"metrics: {summary.metrics_path}")
    print("drained, exiting")
    return 0


def run_worker(args) -> int:
    import signal

    from repro.cluster.worker import WorkerConfig, WorkerNode
    from repro.service.runner import BatchRunner, RunnerConfig

    fault_plan = None
    if getattr(args, "fault_plan", None):
        with open(args.fault_plan) as handle:
            fault_plan = json.load(handle)
    inline_concurrency = (
        args.capacity if args.workers == 0 else 1
    )
    runner = BatchRunner(
        RunnerConfig(
            workers=args.workers,
            inline_concurrency=inline_concurrency,
            job_timeout=args.job_timeout,
            automata_cache=args.automata_cache,
            query_cache=args.query_cache,
            retry_max=0,  # the coordinator owns retries fleet-wide
            fault_plan=fault_plan,
        )
    )
    node = WorkerNode(
        runner,
        WorkerConfig(
            join=args.join,
            capacity=args.capacity,
            worker_id=args.worker_id,
            remote_cache=not args.no_remote_cache,
        ),
    )
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: node.stop())
        except (ValueError, OSError):
            pass  # non-main thread (tests drive run() directly)
    print(
        f"worker joining {args.join} "
        f"(capacity={args.capacity}, workers={args.workers})",
        flush=True,
    )
    node.run()
    snapshot = node.snapshot()
    print(
        f"worker stopped ({snapshot['jobs_done']} jobs done, "
        f"{snapshot['registrations']} registrations)",
        flush=True,
    )
    return 0


def run_submit(args) -> int:
    from repro.serve.client import Rejected, ServeClient
    from repro.service.report import BatchReport, format_batch_report

    if not args.socket and not args.port:
        print("submit: provide --socket PATH or --port N", file=sys.stderr)
        return 2
    with ServeClient(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        reconnect=True,
    ) as client:
        if args.stats:
            frame = client.stats()
            print(
                json.dumps(
                    {"server": frame["server"], "obs": frame["obs"]},
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        if getattr(args, "health", False):
            health = client.health()
            print(json.dumps(health, indent=2, sort_keys=True))
            return 0 if health.get("ready") else 1
        try:
            specs = _job_specs_from_args(args)
        except (OSError, ValueError) as exc:
            print(f"submit: {exc}", file=sys.stderr)
            return 2
        if not specs:
            print("submit: no jobs (give job .json or mini-JS files)",
                  file=sys.stderr)
            return 2
        started = time.monotonic()
        order = {}
        rejected = 0
        wait_budget = float(getattr(args, "wait_on_overload", 0.0) or 0.0)
        for index, spec in enumerate(specs):
            deadline = time.monotonic() + wait_budget
            while True:
                try:
                    ack = client.submit(spec)
                except Rejected as exc:
                    # Honor the daemon's retry_after hint (bounded by
                    # --wait-on-overload) instead of dropping the job
                    # on the first overload rejection.
                    remaining = deadline - time.monotonic()
                    if exc.reason == "overloaded" and remaining > 0:
                        time.sleep(
                            min(exc.retry_after or 0.5, max(0.05, remaining))
                        )
                        continue
                    rejected += 1
                    print(
                        f"rejected ({exc.reason}): job {index}",
                        file=sys.stderr,
                    )
                    break
                order[ack["id"]] = index
                break
        results = []
        for request_id, result, coalesced in client.iter_results():
            results.append(result)
            if args.stream:
                line = dict(result.to_spec())
                line["coalesced"] = coalesced
                print(json.dumps(line, sort_keys=True), flush=True)
        if not args.stream:
            report = BatchReport(
                results=results,
                wall_time=time.monotonic() - started,
                workers=0,
                jobs_submitted=len(specs),
                jobs_executed=len(results),
            )
            print(format_batch_report(report))
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(report.to_spec(), handle, indent=2)
                print(f"\nwrote {args.json}")
    if rejected:
        return 3
    return 0 if all(r.status == "ok" for r in results) else 1
