"""The serve daemon: one process, one pool, many streaming clients.

``python -m repro serve`` keeps a :class:`~repro.service.runner.BatchRunner`
pool warm and multiplexes any number of concurrent clients onto it over
a unix socket (or TCP port).  Per connection, an asyncio reader task
parses newline-delimited JSON requests and a writer task drains an
outbound queue — so one client's slow socket never blocks another's
results, and a connection's ack/result frames interleave in completion
order, which is the streaming contract.

Scheduling (admission bounds, per-client fairness, cross-client
single-flight) lives in :class:`~repro.serve.scheduler.JobScheduler`;
this module owns connection lifecycle and drain:

- a client disconnecting mid-job forfeits its queued jobs and its
  results (``JobScheduler.forget_client``) — in-flight work completes
  and the worker slot recycles, the orphaned result is dropped;
- SIGTERM/SIGINT triggers a graceful drain: stop accepting, reject new
  submits with ``draining``, flush every in-flight job's result to its
  waiters, close the pool gracefully (worker ``atexit`` hooks close
  pooled solver sessions), close this process's session pool, and
  checkpoint metrics — then exit 0.

With ``--cluster`` the same listener doubles as the fleet coordinator:
``register`` / ``heartbeat`` / ``done`` / ``cache_get`` / ``cache_put``
frames route to a :class:`~repro.cluster.coordinator.ClusterCoordinator`
and the scheduler prefers ready remote workers, falling through to the
local pool when none are healthy (degraded mode).  A worker connection
closing is reported to the coordinator, which revokes its epoch-tagged
leases so the scheduler re-dispatches them.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro import faults, obs
from repro.faults.breaker import breakers_snapshot
from repro.obs import metrics
from repro.obs.export import ObsRun
from repro.serve import protocol
from repro.serve.scheduler import JobScheduler, Overloaded
from repro.service.jobs import JobResult, job_from_spec
from repro.service.runner import BatchRunner
from repro.solver.backends import reset_session_pool
from repro.solver.backends.pool import get_session_pool


@dataclass
class ServeConfig:
    """Daemon knobs beyond the runner's own configuration."""

    socket: Optional[str] = None  # unix socket path
    host: str = "127.0.0.1"  # TCP fallback when no socket path
    port: Optional[int] = None
    max_queue: int = 128  # admission bound (queued, not in-flight)
    max_inflight: Optional[int] = None  # default: runner workers
    single_flight: bool = True
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    # -- cluster coordinator mode (``--cluster``) --------------------------
    cluster: bool = False
    heartbeat_s: float = 2.0  # heartbeat interval assigned to workers
    heartbeat_miss: int = 3  # missed beats before a node is dead


class _Connection:
    """One client: reader parses requests, writer drains the outbox."""

    def __init__(self, client_id: str, writer: asyncio.StreamWriter):
        self.client_id = client_id
        self.writer = writer
        self.outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.closing = False

    def send(self, frame: dict) -> None:
        if self.closing:
            return
        encoded = protocol.encode_frame(frame)
        if faults.enabled():
            # Chaos hook: drop or delay one outbound frame, exercising
            # the client's reconnect/timeout recovery paths.
            rule = faults.fire(
                "serve:frame", op=frame.get("op"), client=self.client_id
            )
            if rule is not None:
                if rule.action == "drop":
                    return
                if rule.action == "delay":
                    try:
                        asyncio.get_running_loop().call_later(
                            rule.delay_s or 0.5,
                            self.outbox.put_nowait,
                            encoded,
                        )
                        return
                    except RuntimeError:
                        pass  # off-loop caller: deliver undelayed
        self.outbox.put_nowait(encoded)

    def close(self) -> None:
        if not self.closing:
            self.closing = True
            self.outbox.put_nowait(None)  # writer-task sentinel


class ServeServer:
    """The daemon: asyncio front end over a persistent runner pool."""

    def __init__(
        self,
        runner: BatchRunner,
        config: Optional[ServeConfig] = None,
        obs_run: Optional[ObsRun] = None,
    ):
        self.runner = runner
        self.config = config or ServeConfig()
        self.obs_run = obs_run
        self.scheduler: Optional[JobScheduler] = None
        self.cluster = None  # ClusterCoordinator in --cluster mode
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._handler_tasks: "Set[asyncio.Task]" = set()
        self._client_ids = itertools.count(1)
        self._job_ids = itertools.count(1)
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._drained = False
        #: Where the daemon actually listens, set once the socket is
        #: bound — ``("unix", path)`` or ``("tcp", host, port)``.  With
        #: ``port=0`` this is how callers learn the assigned port.
        self.address: Optional[tuple] = None

    # -- lifecycle -----------------------------------------------------------

    async def _start(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if not self.runner.started:
            self.runner.start(obs_run=self.obs_run)
        if self.config.cluster:
            from repro.cluster.coordinator import (
                ClusterConfig,
                ClusterCoordinator,
            )

            self.cluster = ClusterCoordinator(
                self.loop,
                ClusterConfig(
                    heartbeat_s=self.config.heartbeat_s,
                    heartbeat_miss=self.config.heartbeat_miss,
                    query_cache=self.runner.config.query_cache,
                    automata_cache=self.runner.config.automata_cache,
                ),
            )
        self.scheduler = JobScheduler(
            self.runner,
            self.loop,
            max_queue=self.config.max_queue,
            max_inflight=self.config.max_inflight,
            single_flight=self.config.single_flight,
            cluster=self.cluster,
        )
        limit = self.config.max_frame_bytes
        if self.config.socket:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket, limit=limit
            )
            self.address = ("unix", self.config.socket)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port or 0,
                limit=limit,
            )
            bound = self._server.sockets[0].getsockname()
            self.address = ("tcp", bound[0], bound[1])

    async def _drain(self) -> None:
        """Stop accepting, flush in-flight work, release every resource."""
        if self._drained:
            return
        self._drained = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.scheduler.draining = True
        await self.scheduler.wait_idle()
        if self.cluster is not None:
            self.cluster.close()
        for connection in list(self._connections):
            connection.close()
        # Let every connection handler flush its outbox and finish —
        # leaving them pending would have the loop's shutdown cancel
        # them mid-write.
        if self._handler_tasks:
            await asyncio.wait(set(self._handler_tasks), timeout=10.0)
        self.runner.close(graceful=True)
        reset_session_pool()
        obs.checkpoint()

    async def run(self, install_signals: bool = True) -> None:
        """Serve until :meth:`request_shutdown`, then drain."""
        await self._start()
        if install_signals:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self.loop.add_signal_handler(
                        signum, self.request_shutdown
                    )
                except (NotImplementedError, RuntimeError):
                    pass
        self._ready.set()
        try:
            await self._shutdown.wait()
        finally:
            await self._drain()

    def request_shutdown(self) -> None:
        """Begin the graceful drain (signal handler / test hook)."""
        if self._shutdown is not None:
            self._shutdown.set()

    # -- background-thread harness (tests, and `submit` self-hosting) --------

    def start_background(self) -> "ServeServer":
        """Run the daemon on its own thread; returns once listening."""

        def main() -> None:
            asyncio.run(self.run(install_signals=False))

        self._thread = threading.Thread(
            target=main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serve daemon failed to start listening")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the background daemon and join its thread."""
        if self.loop is not None and self._shutdown is not None:
            try:
                self.loop.call_soon_threadsafe(self.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- stats ---------------------------------------------------------------

    def server_stats(self) -> dict:
        stats = self.scheduler.stats()
        stats["clients_connected"] = len(self._connections)
        stats["address"] = list(self.address) if self.address else None
        # Mirror the live gauges into the metrics registry (when one is
        # enabled) so ``--metrics-json`` checkpoints carry them too.
        metrics.gauge_set("serve_clients_connected", len(self._connections))
        metrics.gauge_set("serve_queue_depth", stats["queue_depth"])
        metrics.gauge_set("serve_in_flight", stats["in_flight"])
        metrics.gauge_set(
            "serve_singleflight_coalesced", stats["singleflight_coalesced"]
        )
        if self.cluster is not None:
            stats["cluster"] = self.cluster.stats()
        return stats

    def health(self) -> dict:
        """Liveness + readiness, for the wire ``health`` op.

        ``live`` means the event loop is answering at all (trivially
        true when this runs); ``ready`` means the daemon is accepting
        work and its pool has live workers — a draining daemon or one
        whose every worker died reports unready so a supervisor can
        rotate it out before clients pile up on timeouts.
        """
        pool = self.runner.pool_health()
        scheduler = self.scheduler.stats() if self.scheduler else {}
        workers_ok = (
            pool.get("mode") != "pool"
            or pool.get("workers_alive", 0) > 0
        )
        draining = bool(scheduler.get("draining"))
        # A coordinator with remote capacity is ready even if its own
        # pool died; one with zero healthy workers is exactly the
        # single-machine daemon and reports whatever the pool says.
        if self.cluster is not None and self.cluster.ready_workers() > 0:
            workers_ok = True
        health = {
            "live": True,
            "ready": bool(not draining and workers_ok),
            "draining": draining,
            "runner": pool,
            "queue_depth": scheduler.get("queue_depth", 0),
            "in_flight": scheduler.get("in_flight", 0),
            "retries": scheduler.get("retries", 0),
            "quarantined": scheduler.get("quarantined", 0),
            "session_pool": {"idle_sessions": get_session_pool().idle_count()},
            "breakers": breakers_snapshot(),
            "stores": obs.store_counters(),
        }
        if self.cluster is not None:
            health["cluster"] = self.cluster.snapshot()
        faults_snapshot = faults.snapshot()
        if faults_snapshot:
            health["faults"] = faults_snapshot
        return health

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(f"client-{next(self._client_ids)}", writer)
        self._connections.add(connection)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        writer_task = asyncio.ensure_future(self._write_loop(connection))
        try:
            await self._read_loop(reader, connection)
        finally:
            self._connections.discard(connection)
            if self.cluster is not None:
                # A worker's socket dying is the fastest failure
                # signal there is: revoke its leases immediately
                # rather than waiting out the heartbeat deadline.
                self.cluster.on_disconnect(connection)
            if self.scheduler is not None:
                self.scheduler.forget_client(connection.client_id)
            connection.close()
            await writer_task
            if task is not None:
                self._handler_tasks.discard(task)

    async def _write_loop(self, connection: _Connection) -> None:
        writer = connection.writer
        try:
            while True:
                frame = await connection.outbox.get()
                if frame is None:
                    break
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_loop(
        self, reader: asyncio.StreamReader, connection: _Connection
    ) -> None:
        while True:
            try:
                line = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as exc:
                if exc.partial.strip():
                    # A final frame without its newline: honor it.
                    self._handle_frame(connection, exc.partial)
                return
            except asyncio.LimitOverrunError:
                # Unrecoverable: the frame boundary is unknowable
                # without buffering the oversized line.  Error + close.
                connection.send(
                    protocol.error_frame(
                        "oversized-frame",
                        f"frame exceeds {self.config.max_frame_bytes} bytes",
                    )
                )
                return
            except (ConnectionError, OSError):
                return
            if not line.strip():
                continue
            self._handle_frame(connection, line)

    def _handle_frame(self, connection: _Connection, line: bytes) -> None:
        try:
            request = protocol.parse_request(protocol.decode_frame(line))
        except protocol.ProtocolError as exc:
            # Recoverable: the newline resynchronizes the stream.
            connection.send(protocol.error_frame(exc.code, exc.detail))
            return
        if request.op == "ping":
            connection.send(protocol.pong_frame(request.request_id))
        elif request.op == "stats":
            connection.send(
                protocol.stats_frame(
                    request.request_id, self.server_stats(), obs.snapshot()
                )
            )
        elif request.op == "health":
            connection.send(
                protocol.health_frame(request.request_id, self.health())
            )
        elif request.op in protocol.CLUSTER_OPS:
            self._handle_cluster(connection, request)
        else:
            self._handle_submit(connection, request)

    def _handle_cluster(
        self, connection: _Connection, request: protocol.Request
    ) -> None:
        if self.cluster is None:
            connection.send(
                protocol.error_frame(
                    "bad-request",
                    "cluster mode disabled (start with --cluster)",
                    request_id=request.request_id,
                )
            )
            return
        frame = request.frame or {}
        if request.op == "register":
            self.cluster.handle_register(connection, frame)
        elif request.op == "heartbeat":
            self.cluster.handle_heartbeat(connection, frame)
        elif request.op == "done":
            self.cluster.handle_done(connection, frame)
        elif request.op == "cache_get":
            self.cluster.handle_cache_get(connection, frame)
        elif request.op == "cache_put":
            self.cluster.handle_cache_put(connection, frame)

    def _handle_submit(
        self, connection: _Connection, request: protocol.Request
    ) -> None:
        spec = dict(request.job_spec)
        if not spec.get("job_id"):
            spec["job_id"] = f"job-{next(self._job_ids):05d}"
        try:
            job = job_from_spec(spec)
        except Exception as exc:
            connection.send(
                protocol.error_frame(
                    "bad-request",
                    f"{type(exc).__name__}: {exc}",
                    request_id=request.request_id,
                )
            )
            return
        request_id = request.request_id

        def deliver(result: JobResult, coalesced: bool) -> None:
            connection.send(
                protocol.result_frame(
                    request_id, result.to_spec(), coalesced
                )
            )

        try:
            coalesced = self.scheduler.submit(
                connection.client_id, job, deliver
            )
        except Overloaded as exc:
            connection.send(
                protocol.rejected_frame(
                    request_id,
                    job.job_id,
                    exc.reason,
                    queue_depth=self.scheduler.queue_depth,
                    max_queue=self.scheduler.max_queue,
                    retry_after=self.scheduler.retry_after_hint(),
                )
            )
            return
        connection.send(
            protocol.queued_frame(request_id, job.job_id, coalesced)
        )
